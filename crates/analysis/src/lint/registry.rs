//! The diagnostic registry: every lint the `mpix-analysis::lint` family
//! can emit, under a stable machine-readable `MPX0xx` code.
//!
//! Codes are append-only: a code, once published, keeps its meaning
//! forever (baselines and CI filters key on it), even if the producing
//! pass is rewritten. New lints take the next free number; retired lints
//! leave a hole.

use mpix_trace::Severity;

/// Default enforcement level for a lint (rustc-style).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LintLevel {
    /// Finding is dropped entirely.
    Allow,
    /// Finding surfaces as [`Severity::Warning`].
    Warn,
    /// Finding surfaces as [`Severity::Error`].
    Deny,
}

impl LintLevel {
    pub fn name(self) -> &'static str {
        match self {
            LintLevel::Allow => "allow",
            LintLevel::Warn => "warn",
            LintLevel::Deny => "deny",
        }
    }

    pub fn parse(s: &str) -> Option<LintLevel> {
        match s {
            "allow" => Some(LintLevel::Allow),
            "warn" => Some(LintLevel::Warn),
            "deny" => Some(LintLevel::Deny),
            _ => None,
        }
    }

    /// Severity a finding at this level surfaces with (`None` = dropped).
    pub fn severity(self) -> Option<Severity> {
        match self {
            LintLevel::Allow => None,
            LintLevel::Warn => Some(Severity::Warning),
            LintLevel::Deny => Some(Severity::Error),
        }
    }
}

/// One registered lint.
#[derive(Clone, Copy, Debug)]
pub struct LintDef {
    /// Stable code, `MPX` + 3 digits.
    pub code: &'static str,
    /// Short kebab-case name (what `--help` and docs call it).
    pub name: &'static str,
    /// Default enforcement level.
    pub default_level: LintLevel,
    /// One-line description of the proof obligation.
    pub description: &'static str,
}

/// Every lint, ordered by code. The single source of truth for docs,
/// `mpix-lint --help`, and `MPIX_LINT` validation.
pub const LINTS: &[LintDef] = &[
    LintDef {
        code: "MPX001",
        name: "uninitialized-field-read",
        default_level: LintLevel::Deny,
        description: "a cluster reads a field time-buffer no prior statement or \
                      declared initialization wrote",
    },
    LintDef {
        code: "MPX002",
        name: "statically-zero-divisor",
        default_level: LintLevel::Deny,
        description: "a reciprocal power's base is provably zero at every grid point",
    },
    LintDef {
        code: "MPX003",
        name: "nan-producing-op",
        default_level: LintLevel::Deny,
        description: "an elementary function is applied outside its domain (e.g. \
                      sqrt of a provably negative value) or to a non-finite constant",
    },
    LintDef {
        code: "MPX004",
        name: "dead-store",
        default_level: LintLevel::Warn,
        description: "a field store is overwritten by a later store to the same \
                      (field, time-buffer) with no intervening read",
    },
    LintDef {
        code: "MPX005",
        name: "unused-field",
        default_level: LintLevel::Warn,
        description: "a registered field is neither read nor written by any cluster",
    },
    LintDef {
        code: "MPX006",
        name: "out-of-domain-index",
        default_level: LintLevel::Deny,
        description: "a constant access offset exceeds the field's allocated halo \
                      or addresses a time buffer outside the rotation window",
    },
    LintDef {
        code: "MPX007",
        name: "uninitialized-temp-read",
        default_level: LintLevel::Deny,
        description: "bytecode reads a per-point temporary before any SetTemp \
                      defines it",
    },
    LintDef {
        code: "MPX008",
        name: "dead-temp-store",
        default_level: LintLevel::Warn,
        description: "bytecode writes a per-point temporary that no later op reads",
    },
    LintDef {
        code: "MPX010",
        name: "tag-window-violation",
        default_level: LintLevel::Deny,
        description: "the symbolic schedule needs more MPI tags than the reserved \
                      per-exchange window guarantees collision-free",
    },
    LintDef {
        code: "MPX011",
        name: "schedule-mismatch",
        default_level: LintLevel::Deny,
        description: "a symbolic send has no matching receive (tag or box length) \
                      in the paired position class — a deadlock for some P",
    },
    LintDef {
        code: "MPX012",
        name: "annulus-coverage-gap",
        default_level: LintLevel::Deny,
        description: "a halo-annulus segment whose cells are globally valid is \
                      never received — stale data for every P in the class",
    },
    LintDef {
        code: "MPX013",
        name: "provenance-violation",
        default_level: LintLevel::Deny,
        description: "a staged (Basic-mode) step forwards halo cells not proven \
                      received by an earlier step — corner propagation is broken",
    },
    LintDef {
        code: "MPX014",
        name: "unproven-topology-class",
        default_level: LintLevel::Warn,
        description: "the parametric prover does not model this topology (e.g. \
                      diagonal exchange above 3 dimensions); only sampled P are \
                      checked",
    },
    LintDef {
        code: "MPX015",
        name: "catastrophic-cancellation",
        default_level: LintLevel::Warn,
        description: "a sum of provably-bounded operands can cancel to near zero, \
                      amplifying incoming relative error by more than 2^10",
    },
    LintDef {
        code: "MPX016",
        name: "accumulation-amplification",
        default_level: LintLevel::Warn,
        description: "a stencil-tap accumulation chain's rounding-event count \
                      exceeds the affine-in-radius envelope the certificate \
                      budget assumes",
    },
    LintDef {
        code: "MPX017",
        name: "insufficient-storage-precision",
        default_level: LintLevel::Warn,
        description: "the certified per-step relative error of a stored field \
                      under the shipped f32 storage exceeds the acceptance \
                      threshold",
    },
    LintDef {
        code: "MPX018",
        name: "wire-demotion-unsafe",
        default_level: LintLevel::Allow,
        description: "demoting halo wire traffic to bf16/f16 would push a field's \
                      certified error past its interior rounding floor (advisory \
                      for ROADMAP item 4; opt-in via MPIX_LINT)",
    },
    LintDef {
        code: "MPX019",
        name: "cfl-unstable",
        default_level: LintLevel::Deny,
        description: "the time-update is provably von Neumann unstable for the \
                      bound dt/h coefficients — the solve diverges at every \
                      precision",
    },
];

/// Look up a lint by its `MPX0xx` code.
pub fn lint_by_code(code: &str) -> Option<&'static LintDef> {
    LINTS.iter().find(|l| l.code == code)
}

/// Look up a lint by its kebab-case name.
pub fn lint_by_name(name: &str) -> Option<&'static LintDef> {
    LINTS.iter().find(|l| l.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_sorted_and_unique() {
        for w in LINTS.windows(2) {
            assert!(w[0].code < w[1].code, "{} !< {}", w[0].code, w[1].code);
        }
        for l in LINTS {
            assert!(l.code.starts_with("MPX") && l.code.len() == 6, "{}", l.code);
        }
    }

    #[test]
    fn lookup_by_code_and_name() {
        assert_eq!(lint_by_code("MPX004").unwrap().name, "dead-store");
        assert_eq!(lint_by_name("dead-store").unwrap().code, "MPX004");
        assert!(lint_by_code("MPX999").is_none());
    }

    #[test]
    fn level_parse_roundtrips() {
        for lv in [LintLevel::Allow, LintLevel::Warn, LintLevel::Deny] {
            assert_eq!(LintLevel::parse(lv.name()), Some(lv));
        }
        assert_eq!(LintLevel::parse("forbid"), None);
        assert_eq!(LintLevel::Allow.severity(), None);
        assert_eq!(LintLevel::Deny.severity(), Some(Severity::Error));
    }
}
