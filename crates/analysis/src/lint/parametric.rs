//! The parametric-in-P communication-schedule prover (`MPX010`–`MPX014`).
//!
//! The concrete matcher ([`crate::comm_schedule`]) spins up a real
//! topology and checks the actual plans at *sampled* rank counts. This
//! module proves the same obligations **symbolically over every rank
//! count** `dims_create` can produce, by two observations about the
//! plan construction in `mpix_dmp::halo`:
//!
//! 1. A rank's schedule depends on its coordinates only through a
//!    per-dimension *position class*: [`PosClass::Solo`] (the dimension
//!    is undivided), [`PosClass::Lo`] (first of ≥ 2), [`PosClass::Mid`]
//!    (both neighbours), [`PosClass::Hi`] (last of ≥ 2). `4^nd` classes
//!    cover every rank of every topology.
//! 2. Every box bound the plan computes is an affine expression
//!    `c0 + c_h·halo + c_r·radius + c_l·n` ([`Aff`]) in the symbolic
//!    halo width, exchange radius and local extent. Comparisons are
//!    decided over the cone `halo ≥ radius ≥ 1, n ≥ radius` — the
//!    region [`crate::verify_operator`]'s "decomposition too fine"
//!    pre-check already enforces — so a discharged obligation holds for
//!    every P, not just the sampled ones.
//!
//! The proof obligations mirror the concrete matcher: unique
//! `(peer, tag)` pairs per step, every send paired with exactly one
//! matching receive in every *compatible* neighbour class (`MPX011`),
//! receive boxes tiling the globally-valid halo annulus exactly once
//! (`MPX012`), and staged sends forwarding only cells received in an
//! earlier step — the *basic* mode's corner-propagation provenance
//! (`MPX013`). Tag demands beyond the reserved 64-tag window are
//! `MPX010`; topologies the model does not cover degrade to `MPX014`
//! (the sampled-P concrete checks still run).
//!
//! `tests/lint_prover.rs` counter-asserts the prover against the
//! concrete matcher at P ∈ {2, 3, 5, 8, 32, 128, 512}: both clean, for
//! every mode.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use mpix_comm::CartComm;
use mpix_dmp::halo::HaloMode;
use mpix_ir::halo::HaloPlan;
use mpix_symbolic::Context;

use super::LintFinding;

/// Dimensionality ceiling of the class model. Above it the prover
/// reports `MPX014` instead of guessing (3-D is the paper's outermost
/// case; diagonal tag layouts overflow the tag window at 4-D anyway).
pub const MAX_PROVED_ND: usize = 3;

/// The executor reserves a 64-tag window per `(field, time offset)`
/// buffer (see [`crate::comm_schedule::check_tag_windows`]).
const TAG_WINDOW: u32 = 64;

/// A rank's position along one topology dimension — all the plan
/// construction ever observes about its coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PosClass {
    /// `dims[d] == 1`: no neighbours in this dimension.
    Solo,
    /// Coordinate 0 of ≥ 2: a high neighbour only.
    Lo,
    /// Interior: both neighbours.
    Mid,
    /// Last coordinate of ≥ 2: a low neighbour only.
    Hi,
}

impl PosClass {
    fn has_neighbor(self, side: i32) -> bool {
        match side.signum() {
            -1 => matches!(self, PosClass::Mid | PosClass::Hi),
            1 => matches!(self, PosClass::Lo | PosClass::Mid),
            _ => true,
        }
    }
}

/// Position classes of `rank` on the topology `dims` — the bridge the
/// prover↔matcher agreement tests walk across.
pub fn class_of(dims: &[usize], rank: usize) -> Vec<PosClass> {
    let coords = CartComm::coords_of(dims, rank);
    dims.iter()
        .zip(&coords)
        .map(|(&p, &c)| {
            if p == 1 {
                PosClass::Solo
            } else if c == 0 {
                PosClass::Lo
            } else if c == p - 1 {
                PosClass::Hi
            } else {
                PosClass::Mid
            }
        })
        .collect()
}

/// An affine index bound `c0 + h·halo + r·radius + l·n`, where `n` is
/// the local owned extent of the dimension the bound indexes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Aff {
    pub c0: i64,
    pub h: i64,
    pub r: i64,
    pub l: i64,
}

impl Aff {
    pub const fn new(c0: i64, h: i64, r: i64, l: i64) -> Aff {
        Aff { c0, h, r, l }
    }

    pub fn minus(self, o: Aff) -> Aff {
        Aff::new(self.c0 - o.c0, self.h - o.h, self.r - o.r, self.l - o.l)
    }

    /// Is the expression ≥ 0 everywhere on the cone
    /// `halo ≥ radius ≥ 1, n ≥ radius`? Substituting
    /// `halo = radius + h'`, `n = radius + l'` (`h', l' ≥ 0`) gives
    /// `c0 + s·radius + h·h' + l·l'` with `s = h + r + l`, whose infimum
    /// over the cone is finite iff `h, l, s ≥ 0` and then equals
    /// `c0 + s` (at `radius = 1`). Sound *and* complete for affine
    /// forms, so equality/ordering verdicts transfer to every P.
    pub fn nonneg(self) -> bool {
        let s = self.h + self.r + self.l;
        self.h >= 0 && self.l >= 0 && s >= 0 && self.c0 + s >= 0
    }
}

impl fmt::Display for Aff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (c, name) in [(self.h, "halo"), (self.l, "n"), (self.r, "radius")] {
            if c == 0 {
                continue;
            }
            match (first, c) {
                (true, 1) => write!(f, "{name}")?,
                (true, -1) => write!(f, "-{name}")?,
                (true, c) => write!(f, "{c}*{name}")?,
                (false, 1) => write!(f, " + {name}")?,
                (false, -1) => write!(f, " - {name}")?,
                (false, c) if c > 0 => write!(f, " + {c}*{name}")?,
                (false, c) => write!(f, " - {}*{name}", -c)?,
            }
            first = false;
        }
        if self.c0 != 0 || first {
            if first {
                write!(f, "{}", self.c0)?;
            } else if self.c0 > 0 {
                write!(f, " + {}", self.c0)?;
            } else {
                write!(f, " - {}", -self.c0)?;
            }
        }
        Ok(())
    }
}

/// `a ≤ b` everywhere on the cone.
fn cone_le(a: Aff, b: Aff) -> bool {
    b.minus(a).nonneg()
}

// The four boundaries partitioning one padded dimension's exchange-
// reachable part into Lo = [halo-r, halo), Own = [halo, halo+n),
// Hi = [halo+n, halo+n+r).
const B_LO: Aff = Aff::new(0, 1, -1, 0); // halo - radius
const B_OWN_LO: Aff = Aff::new(0, 1, 0, 0); // halo
const B_OWN_HI: Aff = Aff::new(0, 1, 0, 1); // halo + n
const B_HI: Aff = Aff::new(0, 1, 1, 1); // halo + n + radius

/// One atomic segment of a padded dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Seg {
    Lo,
    Own,
    Hi,
}

impl Seg {
    /// Do the segment's cells map to valid global indices for a rank of
    /// this class? A low-halo segment is in-domain exactly when a low
    /// neighbour exists (that neighbour owns ≥ radius points under the
    /// cone assumption `n ≥ radius`), symmetrically for the high side.
    fn globally_valid(self, class: PosClass) -> bool {
        match self {
            Seg::Own => true,
            Seg::Lo => class.has_neighbor(-1),
            Seg::Hi => class.has_neighbor(1),
        }
    }
}

/// Decompose one box dimension `[lo, hi)` into atomic segments.
/// `allow_sub_own`: a strict sub-range of the owned segment counts as
/// `Own` (send boxes pack owned strips); receive boxes must align
/// exactly to segment boundaries or they cannot tile the annulus.
fn classify_range(lo: Aff, hi: Aff, allow_sub_own: bool) -> Result<Vec<Seg>, String> {
    if allow_sub_own && cone_le(B_OWN_LO, lo) && cone_le(hi, B_OWN_HI) && cone_le(lo, hi) {
        return Ok(vec![Seg::Own]);
    }
    let bounds = [B_LO, B_OWN_LO, B_OWN_HI, B_HI];
    let segs = [Seg::Lo, Seg::Own, Seg::Hi];
    let li = bounds
        .iter()
        .position(|b| *b == lo)
        .ok_or_else(|| format!("bound {lo} is not a halo-annulus segment boundary"))?;
    let hi_i = bounds
        .iter()
        .position(|b| *b == hi)
        .ok_or_else(|| format!("bound {hi} is not a halo-annulus segment boundary"))?;
    if li >= hi_i {
        return Err(format!("range [{lo}, {hi}) is empty or reversed"));
    }
    Ok(segs[li..hi_i].to_vec())
}

/// Cartesian product of per-dimension segment lists.
fn sigma_product(per_dim: &[Vec<Seg>]) -> Vec<Vec<Seg>> {
    let mut out: Vec<Vec<Seg>> = vec![Vec::new()];
    for opts in per_dim {
        out = out
            .iter()
            .flat_map(|prefix| {
                opts.iter().map(move |&s| {
                    let mut v = prefix.clone();
                    v.push(s);
                    v
                })
            })
            .collect();
    }
    out
}

/// One symbolic message pair: like a `PlanEntry` of `mpix_dmp::halo`,
/// but with the peer identified by displacement and every bound an
/// [`Aff`]. Tags are offsets from the per-buffer tag base.
#[derive(Clone, Debug)]
pub struct SymEntry {
    pub disp: Vec<i32>,
    pub send_tag: u32,
    pub recv_tag: u32,
    pub send_box: Vec<(Aff, Aff)>,
    pub recv_box: Vec<(Aff, Aff)>,
}

/// The symbolic schedule of one position class: what `HaloPlan::build`
/// produces for *every* rank of that class, on *every* topology.
#[derive(Clone, Debug)]
pub struct SymSchedule {
    pub class: Vec<PosClass>,
    pub steps: Vec<Vec<SymEntry>>,
}

fn code_of(disp: &[i32]) -> usize {
    disp.iter()
        .fold(0usize, |acc, &d| acc * 3 + (d + 1) as usize)
}

/// Mirror of `HaloPlan::build` over a position class instead of a
/// concrete rank. Any divergence between this model and the real
/// constructor is caught by the prover↔matcher agreement tests.
pub fn build_symbolic_schedule(mode: HaloMode, class: &[PosClass]) -> SymSchedule {
    let nd = class.len();
    let own_lo_strip = (B_OWN_LO, Aff::new(0, 1, 1, 0)); // [halo, halo+r)
    let own_hi_strip = (Aff::new(0, 1, -1, 1), B_OWN_HI); // [halo+n-r, halo+n)
    let mut steps: Vec<Vec<SymEntry>> = Vec::new();
    match mode {
        HaloMode::Basic => {
            for d in 0..nd {
                let mut entries = Vec::new();
                for side in [-1i32, 1] {
                    if !class[d].has_neighbor(side) {
                        continue;
                    }
                    let mut disp = vec![0i32; nd];
                    disp[d] = side;
                    // Already-exchanged dims carry their halo along
                    // (corner propagation); later dims stay owned-only.
                    let extent = |e: usize| {
                        if e < d {
                            (B_LO, B_HI)
                        } else {
                            (B_OWN_LO, B_OWN_HI)
                        }
                    };
                    let send_box = (0..nd)
                        .map(|e| {
                            if e != d {
                                extent(e)
                            } else if side < 0 {
                                own_lo_strip
                            } else {
                                own_hi_strip
                            }
                        })
                        .collect();
                    let recv_box = (0..nd)
                        .map(|e| {
                            if e != d {
                                extent(e)
                            } else if side < 0 {
                                (B_LO, B_OWN_LO)
                            } else {
                                (B_OWN_HI, B_HI)
                            }
                        })
                        .collect();
                    entries.push(SymEntry {
                        disp,
                        send_tag: (d as u32) * 2 + u32::from(side < 0),
                        recv_tag: (d as u32) * 2 + u32::from(side > 0),
                        send_box,
                        recv_box,
                    });
                }
                steps.push(entries);
            }
        }
        HaloMode::Diagonal | HaloMode::Full => {
            let mut entries = Vec::new();
            for code in 0..3usize.pow(nd as u32) {
                let mut disp = vec![0i32; nd];
                let mut c = code;
                for d in (0..nd).rev() {
                    disp[d] = (c % 3) as i32 - 1;
                    c /= 3;
                }
                if disp.iter().all(|&x| x == 0) {
                    continue;
                }
                if !disp
                    .iter()
                    .zip(class)
                    .all(|(&s, cl)| s == 0 || cl.has_neighbor(s))
                {
                    continue;
                }
                let inv: Vec<i32> = disp.iter().map(|x| -x).collect();
                let send_box = disp
                    .iter()
                    .map(|&s| match s {
                        -1 => own_lo_strip,
                        1 => own_hi_strip,
                        _ => (B_OWN_LO, B_OWN_HI),
                    })
                    .collect();
                let recv_box = disp
                    .iter()
                    .map(|&s| match s {
                        -1 => (B_LO, B_OWN_LO),
                        1 => (B_OWN_HI, B_HI),
                        _ => (B_OWN_LO, B_OWN_HI),
                    })
                    .collect();
                entries.push(SymEntry {
                    send_tag: code_of(&inv) as u32,
                    recv_tag: code_of(&disp) as u32,
                    disp,
                    send_box,
                    recv_box,
                });
            }
            steps.push(entries);
        }
    }
    SymSchedule {
        class: class.to_vec(),
        steps,
    }
}

/// All `4^nd` class schedules for one mode.
pub fn build_all_schedules(mode: HaloMode, nd: usize) -> BTreeMap<Vec<PosClass>, SymSchedule> {
    let opts = [PosClass::Solo, PosClass::Lo, PosClass::Mid, PosClass::Hi];
    let mut out = BTreeMap::new();
    for idx in 0..4usize.pow(nd as u32) {
        let mut class = Vec::with_capacity(nd);
        let mut c = idx;
        for _ in 0..nd {
            class.push(opts[c % 4]);
            c /= 4;
        }
        out.insert(class.clone(), build_symbolic_schedule(mode, &class));
    }
    out
}

/// Position classes a neighbour at `disp` can have, given mine. In the
/// displaced dimensions only the existence of *me* is known about the
/// peer (it has a neighbour on the facing side), leaving two possible
/// classes; pairing must hold for all of them.
fn compat_classes(class: &[PosClass], disp: &[i32]) -> Vec<Vec<PosClass>> {
    let per_dim: Vec<Vec<PosClass>> = class
        .iter()
        .zip(disp)
        .map(|(&c, &s)| match s.signum() {
            0 => vec![c],
            -1 => vec![PosClass::Lo, PosClass::Mid],
            _ => vec![PosClass::Mid, PosClass::Hi],
        })
        .collect();
    let mut out: Vec<Vec<PosClass>> = vec![Vec::new()];
    for opts in &per_dim {
        out = out
            .iter()
            .flat_map(|prefix| {
                opts.iter().map(move |&c| {
                    let mut v = prefix.clone();
                    v.push(c);
                    v
                })
            })
            .collect();
    }
    out
}

fn fmt_class(class: &[PosClass]) -> String {
    format!("{class:?}")
}

/// Symbolic per-dimension message length, with the cross-rank soundness
/// rule: in a displaced dimension the two ranks' local extents differ
/// in general, so a length depending on `n` there can never be proven
/// equal. Returns `(length, depends_on_n)`.
fn dim_len(b: &(Aff, Aff)) -> (Aff, bool) {
    let len = b.1.minus(b.0);
    (len, len.l != 0)
}

/// Verify every class schedule against every compatible peer: the
/// deadlock-freedom (`MPX011`), exactly-once annulus coverage
/// (`MPX012`) and staged-provenance (`MPX013`) obligations, quantified
/// over all P.
pub fn check_symbolic_schedules(
    schedules: &BTreeMap<Vec<PosClass>, SymSchedule>,
    loc_prefix: &str,
) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for (class, sched) in schedules {
        let nd = class.len();
        let cloc = |detail: &str| format!("{loc_prefix}class {} {detail}", fmt_class(class));

        // -- pairing: each entry against all compatible peer classes --
        for (t, entries) in sched.steps.iter().enumerate() {
            let mut seen_send: BTreeSet<(Vec<i32>, u32)> = BTreeSet::new();
            let mut seen_recv: BTreeSet<(Vec<i32>, u32)> = BTreeSet::new();
            for e in entries {
                if !seen_send.insert((e.disp.clone(), e.send_tag)) {
                    out.push(LintFinding::new(
                        "MPX011",
                        cloc(&format!("step {t} disp {:?}", e.disp)),
                        format!(
                            "duplicate send (peer disp {:?}, tag +{}): the receiver \
                             cannot tell the messages apart on any topology",
                            e.disp, e.send_tag
                        ),
                    ));
                }
                if !seen_recv.insert((e.disp.clone(), e.recv_tag)) {
                    out.push(LintFinding::new(
                        "MPX011",
                        cloc(&format!("step {t} disp {:?}", e.disp)),
                        format!(
                            "duplicate receive (peer disp {:?}, tag +{}): matching is \
                             ambiguous on any topology",
                            e.disp, e.recv_tag
                        ),
                    ));
                }
                let inv: Vec<i32> = e.disp.iter().map(|x| -x).collect();
                for pc in compat_classes(class, &e.disp) {
                    let Some(peer) = schedules.get(&pc) else {
                        continue;
                    };
                    let pes: Vec<&SymEntry> = peer
                        .steps
                        .get(t)
                        .map(|s| s.iter().filter(|pe| pe.disp == inv).collect())
                        .unwrap_or_default();
                    if pes.len() != 1 {
                        out.push(LintFinding::new(
                            "MPX011",
                            cloc(&format!("step {t} disp {:?}", e.disp)),
                            format!(
                                "peer class {} posts {} entries toward {inv:?} at step \
                                 {t}, expected exactly 1: a send or receive goes \
                                 unmatched (deadlock) for every P containing this pair",
                                fmt_class(&pc),
                                pes.len()
                            ),
                        ));
                        continue;
                    }
                    let pe = pes[0];
                    if pe.send_tag != e.recv_tag {
                        out.push(LintFinding::new(
                            "MPX011",
                            cloc(&format!("step {t} disp {:?}", e.disp)),
                            format!(
                                "receive expects tag +{} but peer class {} sends tag \
                                 +{}: the receive waits forever",
                                e.recv_tag,
                                fmt_class(&pc),
                                pe.send_tag
                            ),
                        ));
                    }
                    if pe.recv_tag != e.send_tag {
                        out.push(LintFinding::new(
                            "MPX011",
                            cloc(&format!("step {t} disp {:?}", e.disp)),
                            format!(
                                "send uses tag +{} but peer class {} posts its receive \
                                 at tag +{}: the send blocks forever",
                                e.send_tag,
                                fmt_class(&pc),
                                pe.recv_tag
                            ),
                        ));
                    }
                    for d in 0..nd {
                        let (rlen, rl_n) = dim_len(&e.recv_box[d]);
                        let (slen, sl_n) = dim_len(&pe.send_box[d]);
                        let cross_rank = e.disp[d] != 0 && (rl_n || sl_n);
                        if cross_rank || rlen != slen {
                            out.push(LintFinding::new(
                                "MPX011",
                                cloc(&format!("step {t} disp {:?}", e.disp)),
                                format!(
                                    "message length mismatch in dim {d}: receive \
                                     expects {rlen}, peer class {} packs {slen}{}",
                                    fmt_class(&pc),
                                    if cross_rank {
                                        " (and the extent n differs across the \
                                         displaced ranks)"
                                    } else {
                                        ""
                                    }
                                ),
                            ));
                        }
                    }
                }
            }
        }

        // -- coverage / exactly-once / provenance over segment vectors --
        let mut received_count: BTreeMap<Vec<Seg>, usize> = BTreeMap::new();
        let mut received_before: BTreeSet<Vec<Seg>> = BTreeSet::new();
        for (t, entries) in sched.steps.iter().enumerate() {
            let mut this_step: Vec<Vec<Seg>> = Vec::new();
            for e in entries {
                // Provenance first: step-t sends pack before step-t
                // receives land, so only strictly earlier receives count.
                let send_segs: Result<Vec<Vec<Seg>>, String> = e
                    .send_box
                    .iter()
                    .map(|&(lo, hi)| classify_range(lo, hi, true))
                    .collect();
                match send_segs {
                    Err(why) => out.push(LintFinding::new(
                        "MPX013",
                        cloc(&format!("step {t} disp {:?}", e.disp)),
                        format!("cannot prove send provenance: {why}"),
                    )),
                    Ok(per_dim) => {
                        for sigma in sigma_product(&per_dim) {
                            let has_halo = sigma.iter().any(|&s| s != Seg::Own);
                            let valid = sigma
                                .iter()
                                .zip(class.iter())
                                .all(|(&s, &c)| s.globally_valid(c));
                            if has_halo && valid && !received_before.contains(&sigma) {
                                out.push(LintFinding::new(
                                    "MPX013",
                                    cloc(&format!("step {t} disp {:?}", e.disp)),
                                    format!(
                                        "send forwards halo segment {sigma:?} that was \
                                         neither owned nor received in an earlier \
                                         step: corner propagation transmits garbage \
                                         on every P containing this class"
                                    ),
                                ));
                            }
                        }
                    }
                }
                let recv_segs: Result<Vec<Vec<Seg>>, String> = e
                    .recv_box
                    .iter()
                    .map(|&(lo, hi)| classify_range(lo, hi, false))
                    .collect();
                match recv_segs {
                    Err(why) => out.push(LintFinding::new(
                        "MPX012",
                        cloc(&format!("step {t} disp {:?}", e.disp)),
                        format!("receive box does not tile the halo annulus: {why}"),
                    )),
                    Ok(per_dim) => {
                        if per_dim.iter().all(|segs| segs.contains(&Seg::Own)) {
                            out.push(LintFinding::new(
                                "MPX012",
                                cloc(&format!("step {t} disp {:?}", e.disp)),
                                "receive box overlaps the owned region: remote data \
                                 would clobber this rank's computation"
                                    .to_string(),
                            ));
                        }
                        this_step.extend(sigma_product(&per_dim));
                    }
                }
            }
            for sigma in this_step {
                *received_count.entry(sigma.clone()).or_insert(0) += 1;
                received_before.insert(sigma);
            }
        }
        for (sigma, count) in &received_count {
            if *count > 1 {
                out.push(LintFinding::new(
                    "MPX012",
                    cloc(&format!("segment {sigma:?}")),
                    format!(
                        "halo segment is received by {count} messages: whichever \
                         unpacks last wins, making the result timing-dependent"
                    ),
                ));
            }
        }
        // Every globally-valid annulus segment must be received.
        let per_dim: Vec<Vec<Seg>> = class
            .iter()
            .map(|&c| {
                let mut opts = vec![Seg::Own];
                if Seg::Lo.globally_valid(c) {
                    opts.push(Seg::Lo);
                }
                if Seg::Hi.globally_valid(c) {
                    opts.push(Seg::Hi);
                }
                opts
            })
            .collect();
        for sigma in sigma_product(&per_dim) {
            if sigma.iter().all(|&s| s == Seg::Own) {
                continue;
            }
            if !received_count.contains_key(&sigma) {
                out.push(LintFinding::new(
                    "MPX012",
                    cloc(&format!("segment {sigma:?}")),
                    "globally-valid halo segment is never received: the stencil reads \
                     stale data at rank boundaries on every P containing this class"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// Prove one `(mode, nd)` communication schedule for every P, or report
/// why it cannot be proven.
pub fn prove_parametric(mode: HaloMode, nd: usize, loc_prefix: &str) -> Vec<LintFinding> {
    let mut out = Vec::new();
    // The tag-width obligation is closed-form, so it is decidable even
    // above the class model's dimensionality ceiling.
    let needed = mode.messages_per_exchange(nd).max(2 * nd) as u32 + 1;
    if needed > TAG_WINDOW {
        out.push(LintFinding::new(
            "MPX010",
            format!("{loc_prefix}{mode:?} tags"),
            format!(
                "a {nd}-dimensional {mode:?} schedule uses {needed} tag offsets but \
                 the per-buffer window holds only {TAG_WINDOW}: messages from \
                 different buffers would cross-match"
            ),
        ));
    }
    if nd > MAX_PROVED_ND {
        out.push(LintFinding::new(
            "MPX014",
            format!("{loc_prefix}{nd}-dimensional topology"),
            format!(
                "the parametric prover models at most {MAX_PROVED_ND} dimensions: \
                 schedules are checked only at the sampled rank counts"
            ),
        ));
        return out;
    }
    let schedules = build_all_schedules(mode, nd);
    out.extend(check_symbolic_schedules(&schedules, loc_prefix));
    out
}

/// Top-level entry: prove every exchange key of the plan, per mode.
pub fn lint_schedules(ctx: &Context, plan: &HaloPlan, modes: &[HaloMode]) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for (f, toff, radius) in crate::comm_schedule::exchange_keys(plan) {
        if radius == 0 {
            continue;
        }
        let nd = ctx.field(f).ndim();
        for &mode in modes {
            let prefix = format!("{} / {mode:?} (all P) / ", crate::buf_name(ctx, f, toff));
            out.extend(prove_parametric(mode, nd, &prefix));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(f: &[LintFinding]) -> Vec<&str> {
        f.iter().map(|x| x.code).collect()
    }

    #[test]
    fn aff_cone_ordering() {
        // n - radius >= 0 on the cone (the too-fine pre-check boundary).
        assert!(Aff::new(0, 0, -1, 1).nonneg());
        // halo - radius >= 0, radius - 1 >= 0.
        assert!(Aff::new(0, 1, -1, 0).nonneg());
        assert!(Aff::new(-1, 0, 1, 0).nonneg());
        // radius - n can be negative (n unbounded).
        assert!(!Aff::new(0, 0, 1, -1).nonneg());
        // -1 alone is negative.
        assert!(!Aff::new(-1, 0, 0, 0).nonneg());
    }

    #[test]
    fn range_classification() {
        assert_eq!(
            classify_range(B_LO, B_HI, false).unwrap(),
            vec![Seg::Lo, Seg::Own, Seg::Hi]
        );
        assert_eq!(
            classify_range(B_LO, B_OWN_LO, false).unwrap(),
            vec![Seg::Lo]
        );
        // Owned strip [halo, halo+r): sub-own for sends only.
        let strip_hi = Aff::new(0, 1, 1, 0);
        assert_eq!(
            classify_range(B_OWN_LO, strip_hi, true).unwrap(),
            vec![Seg::Own]
        );
        assert!(classify_range(B_OWN_LO, strip_hi, false).is_err());
        assert!(classify_range(B_OWN_LO, B_LO, false).is_err());
    }

    #[test]
    fn all_modes_prove_clean_up_to_3d() {
        for nd in 1..=3 {
            for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
                let f = prove_parametric(mode, nd, "");
                assert!(f.is_empty(), "{mode:?} {nd}d: {f:?}");
            }
        }
    }

    #[test]
    fn four_dimensions_degrade_to_mpx014() {
        // 4-D diagonal also needs 81 tags — past the 64-tag window.
        let f = prove_parametric(HaloMode::Diagonal, 4, "");
        assert_eq!(codes(&f), vec!["MPX010", "MPX014"]);
        let f = prove_parametric(HaloMode::Basic, 4, "");
        assert_eq!(codes(&f), vec!["MPX014"]);
    }

    #[test]
    fn mutated_recv_tag_is_mpx011() {
        let mut schedules = build_all_schedules(HaloMode::Diagonal, 2);
        let interior = vec![PosClass::Mid, PosClass::Mid];
        schedules.get_mut(&interior).unwrap().steps[0][0].recv_tag += 1;
        let f = check_symbolic_schedules(&schedules, "");
        assert!(codes(&f).contains(&"MPX011"), "{f:?}");
    }

    #[test]
    fn dropped_entry_is_a_coverage_gap() {
        let mut schedules = build_all_schedules(HaloMode::Diagonal, 2);
        let interior = vec![PosClass::Mid, PosClass::Mid];
        schedules.get_mut(&interior).unwrap().steps[0].remove(0);
        let f = check_symbolic_schedules(&schedules, "");
        assert!(codes(&f).contains(&"MPX012"), "{f:?}");
        assert!(codes(&f).contains(&"MPX011"), "{f:?}"); // peers' sends unmatched
    }

    #[test]
    fn reordered_basic_steps_break_provenance() {
        // Swap the d=0 and d=1 steps of every class consistently: pairing
        // and coverage stay intact, but step 0 now forwards dim-0 halo
        // that is only received in step 1 — exactly MPX013.
        let mut schedules = build_all_schedules(HaloMode::Basic, 2);
        for s in schedules.values_mut() {
            s.steps.swap(0, 1);
        }
        let f = check_symbolic_schedules(&schedules, "");
        assert!(codes(&f).contains(&"MPX013"), "{f:?}");
        assert!(!codes(&f).contains(&"MPX011"), "{f:?}");
        assert!(!codes(&f).contains(&"MPX012"), "{f:?}");
    }

    #[test]
    fn double_receive_is_mpx012() {
        let mut schedules = build_all_schedules(HaloMode::Diagonal, 2);
        let interior = vec![PosClass::Mid, PosClass::Mid];
        let sched = schedules.get_mut(&interior).unwrap();
        let dup = sched.steps[0][0].clone();
        sched.steps[0].push(dup);
        let f = check_symbolic_schedules(&schedules, "");
        assert!(
            f.iter()
                .any(|x| x.code == "MPX012" && x.explanation.contains("received by 2")),
            "{f:?}"
        );
    }

    #[test]
    fn class_of_matches_coordinates() {
        assert_eq!(class_of(&[3, 2], 0), vec![PosClass::Lo, PosClass::Lo]);
        // dims [3, 2]: rank 3 has coords [1, 1].
        assert_eq!(class_of(&[3, 2], 3), vec![PosClass::Mid, PosClass::Hi]);
        assert_eq!(class_of(&[1, 4], 0), vec![PosClass::Solo, PosClass::Lo]);
        assert_eq!(class_of(&[1, 4], 2), vec![PosClass::Solo, PosClass::Mid]);
    }

    #[test]
    fn interior_message_counts_match_table1() {
        let basic3 = build_symbolic_schedule(
            HaloMode::Basic,
            &[PosClass::Mid, PosClass::Mid, PosClass::Mid],
        );
        assert_eq!(basic3.steps.iter().map(Vec::len).sum::<usize>(), 6);
        let diag3 = build_symbolic_schedule(
            HaloMode::Diagonal,
            &[PosClass::Mid, PosClass::Mid, PosClass::Mid],
        );
        assert_eq!(diag3.steps[0].len(), 26);
    }
}
