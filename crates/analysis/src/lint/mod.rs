//! # mpix-analysis::lint
//!
//! Static lints over the compiler's own artifacts, each under a stable
//! `MPX0xx` code from [`registry`]:
//!
//! * [`absint`] — abstract interpretation (interval + def-use dataflow)
//!   over cluster expressions and the compiled bytecode: uninitialized
//!   reads, statically-zero divisors, NaN-producing ops, dead stores,
//!   unused fields, out-of-domain indices (`MPX001`–`MPX008`).
//! * [`parametric`] — the parametric-in-P communication-schedule prover:
//!   tag windows, send/recv pairing, halo-annulus coverage and corner
//!   provenance proven symbolically over topology position classes, so
//!   the verdict holds for *every* rank count `dims_create` can produce
//!   (`MPX010`–`MPX014`).
//!
//! Unlike the heavyweight verification passes, lints run before any
//! backend work and are cheap enough to gate every `Operator::run` with
//! `verify` on. Each finding carries its code; [`LintConfig`] maps codes
//! to [`LintLevel`]s (allow / warn / deny), overridable per code through
//! the `MPIX_LINT` environment variable:
//!
//! ```text
//! MPIX_LINT="MPX004=allow,dead-store=allow,all=deny,MPX005=warn"
//! ```
//!
//! Entries apply left to right; `all` resets every lint. Unknown codes
//! or levels panic — a misspelled suppression silently keeping a deny
//! active (or dropping one) is exactly the failure mode a lint config
//! must not have.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use mpix_dmp::halo::HaloMode;
use mpix_ir::cluster::Cluster;
use mpix_ir::halo::HaloPlan;
use mpix_symbolic::{Context, FieldId};
use mpix_trace::Diagnostic;

pub mod absint;
pub mod parametric;
pub mod registry;

pub use registry::{lint_by_code, lint_by_name, LintDef, LintLevel, LINTS};

/// One raw finding from a lint pass, before level mapping. Kept separate
/// from [`Diagnostic`] so passes stay policy-free: they report what they
/// proved, [`LintConfig::apply`] decides severity or suppression.
#[derive(Clone, Debug)]
pub struct LintFinding {
    /// Registry code (`MPX0xx`).
    pub code: &'static str,
    /// IR location, same conventions as [`Diagnostic::location`].
    pub location: String,
    /// What was proven and why it matters.
    pub explanation: String,
}

impl LintFinding {
    pub fn new(
        code: &'static str,
        location: impl Into<String>,
        explanation: impl Into<String>,
    ) -> LintFinding {
        debug_assert!(
            registry::lint_by_code(code).is_some(),
            "unregistered {code}"
        );
        LintFinding {
            code,
            location: location.into(),
            explanation: explanation.into(),
        }
    }
}

/// Per-code enforcement levels: registry defaults plus overrides.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    overrides: BTreeMap<&'static str, LintLevel>,
}

impl LintConfig {
    /// Registry defaults, no overrides.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Registry defaults plus the `MPIX_LINT` environment override.
    /// Panics on a malformed spec (same contract as [`LintConfig::parse`]).
    pub fn from_env() -> LintConfig {
        match std::env::var("MPIX_LINT") {
            Ok(spec) => LintConfig::parse(&spec),
            Err(_) => LintConfig::new(),
        }
    }

    /// Parse a comma-separated `key=level` spec. Keys are registry codes
    /// (`MPX004`), lint names (`dead-store`), or `all`; levels are
    /// `allow` / `warn` / `deny`. Later entries win. Panics on unknown
    /// keys or levels — silent misconfiguration of a lint gate is worse
    /// than a crash at startup.
    pub fn parse(spec: &str) -> LintConfig {
        let mut cfg = LintConfig::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, level) = entry
                .split_once('=')
                .unwrap_or_else(|| panic!("MPIX_LINT entry {entry:?} is not key=level"));
            let level = LintLevel::parse(level.trim()).unwrap_or_else(|| {
                panic!("MPIX_LINT entry {entry:?}: level must be allow, warn or deny")
            });
            let key = key.trim();
            if key == "all" {
                for l in LINTS {
                    cfg.overrides.insert(l.code, level);
                }
                continue;
            }
            let def = lint_by_code(key)
                .or_else(|| lint_by_name(key))
                .unwrap_or_else(|| panic!("MPIX_LINT entry {entry:?}: unknown lint {key:?}"));
            cfg.overrides.insert(def.code, level);
        }
        cfg
    }

    /// Override the level for one code (panics on unknown codes).
    pub fn set(&mut self, code: &str, level: LintLevel) -> &mut LintConfig {
        let def = lint_by_code(code)
            .or_else(|| lint_by_name(code))
            .unwrap_or_else(|| panic!("unknown lint {code:?}"));
        self.overrides.insert(def.code, level);
        self
    }

    /// Effective level for a code.
    pub fn level(&self, code: &str) -> LintLevel {
        if let Some(&lv) = self.overrides.get(code) {
            return lv;
        }
        lint_by_code(code).map_or(LintLevel::Warn, |d| d.default_level)
    }

    /// Map raw findings through the configured levels: `allow` findings
    /// are dropped, the rest become [`Diagnostic`]s (pass `lint`) at the
    /// level's severity, carrying their code.
    pub fn apply(&self, findings: Vec<LintFinding>) -> Vec<Diagnostic> {
        findings
            .into_iter()
            .filter_map(|f| {
                let sev = self.level(f.code).severity()?;
                Some(Diagnostic::new(sev, "lint", f.location, f.explanation).with_code(f.code))
            })
            .collect()
    }
}

/// Run every lint over one operator's artifacts and map through `cfg`.
///
/// `assume_initialized`: fields whose allocated buffers are known to be
/// externally filled before the first step (solver `init` writes, source
/// injection). `None` means "unknown": only reads of the buffer being
/// written this step (`t+1` before its store — stale data under buffer
/// rotation) are flagged, the conservative contract every operator must
/// satisfy. `Some(set)` additionally flags any read of a field outside
/// `set` that no earlier cluster wrote.
pub fn lint_operator(
    ctx: &Context,
    clusters: &[Cluster],
    plan: &HaloPlan,
    modes: &[HaloMode],
    assume_initialized: Option<&BTreeSet<FieldId>>,
    cfg: &LintConfig,
) -> Vec<Diagnostic> {
    let mut findings = absint::lint_clusters(ctx, clusters, assume_initialized);
    findings.extend(absint::lint_bytecode(clusters));
    findings.extend(parametric::lint_schedules(ctx, plan, modes));
    // Structural floating-point lints (MPX015/MPX016): no value or
    // scalar bindings here, so only provable-from-structure findings
    // can fire. The full certificate path is `crate::fp::certify`.
    findings.extend(crate::fp::lint_clusters_fp(ctx, clusters));
    cfg.apply(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_registry() {
        let cfg = LintConfig::new();
        assert_eq!(cfg.level("MPX001"), LintLevel::Deny);
        assert_eq!(cfg.level("MPX004"), LintLevel::Warn);
    }

    #[test]
    fn parse_applies_left_to_right() {
        let cfg = LintConfig::parse("all=allow, MPX002=deny, dead-store=warn");
        assert_eq!(cfg.level("MPX001"), LintLevel::Allow);
        assert_eq!(cfg.level("MPX002"), LintLevel::Deny);
        assert_eq!(cfg.level("MPX004"), LintLevel::Warn);
    }

    #[test]
    #[should_panic(expected = "unknown lint")]
    fn parse_rejects_unknown_codes() {
        LintConfig::parse("MPX999=allow");
    }

    #[test]
    #[should_panic(expected = "allow, warn or deny")]
    fn parse_rejects_unknown_levels() {
        LintConfig::parse("MPX004=forbid");
    }

    /// Panic messages must name the offending entry verbatim so a user
    /// can find it in a long comma-separated spec — "bad spec" alone is
    /// not actionable.
    fn parse_panic_message(spec: &str) -> String {
        let err = std::panic::catch_unwind(|| LintConfig::parse(spec))
            .expect_err("malformed spec must panic");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a message")
    }

    #[test]
    fn parse_errors_name_the_offending_entry() {
        let msg = parse_panic_message("MPX004=allow,MPX999=deny");
        assert!(msg.contains("MPX999"), "names the bad key: {msg}");
        assert!(msg.contains("unknown lint"), "says what is wrong: {msg}");

        let msg = parse_panic_message("dead-store=forbid");
        assert!(
            msg.contains("dead-store=forbid"),
            "quotes the full entry: {msg}"
        );
        assert!(
            msg.contains("allow, warn or deny"),
            "lists the valid levels: {msg}"
        );

        // A bare key with no `=` is a distinct failure with its own
        // message (it is not an "unknown lint").
        let msg = parse_panic_message("MPX004");
        assert!(
            msg.contains("is not key=level") && msg.contains("MPX004"),
            "explains the expected shape: {msg}"
        );
    }

    #[test]
    fn parse_duplicate_entries_last_wins() {
        // Documented contract ("later entries win"): duplicates are not
        // an error, the rightmost binding takes effect — including when
        // the same lint is addressed once by code and once by name.
        let cfg = LintConfig::parse("MPX004=deny,MPX004=allow");
        assert_eq!(cfg.level("MPX004"), LintLevel::Allow);
        let cfg = LintConfig::parse("dead-store=allow,MPX004=deny");
        assert_eq!(cfg.level("MPX004"), LintLevel::Deny);
        let cfg = LintConfig::parse("MPX004=deny,dead-store=allow");
        assert_eq!(cfg.level("MPX004"), LintLevel::Allow);
    }

    #[test]
    fn parse_empty_spec_keeps_registry_defaults() {
        // `MPIX_LINT=""` (and stray separators/whitespace) must behave
        // exactly like an unset variable, not panic on an empty entry.
        for spec in ["", " ", ",", " , ,", "\t"] {
            let cfg = LintConfig::parse(spec);
            for l in LINTS {
                assert_eq!(
                    cfg.level(l.code),
                    l.default_level,
                    "spec {spec:?} changed {}",
                    l.code
                );
            }
        }
    }

    #[test]
    fn kebab_name_and_code_are_equivalent_keys() {
        // Every registry entry must be addressable by code and by its
        // kebab name with identical effect (and `set` follows suit).
        for l in LINTS {
            let by_code = LintConfig::parse(&format!("{}=deny", l.code));
            let by_name = LintConfig::parse(&format!("{}=deny", l.name));
            assert_eq!(
                by_code.level(l.code),
                by_name.level(l.code),
                "{} vs {}",
                l.code,
                l.name
            );
            assert_eq!(by_name.level(l.code), LintLevel::Deny);
        }
    }

    #[test]
    fn apply_drops_allowed_and_maps_severity() {
        let mut cfg = LintConfig::new();
        cfg.set("MPX004", LintLevel::Allow)
            .set("MPX005", LintLevel::Deny);
        let out = cfg.apply(vec![
            LintFinding::new("MPX004", "cluster 0", "dead"),
            LintFinding::new("MPX005", "field m", "unused"),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code.as_deref(), Some("MPX005"));
        assert_eq!(out[0].severity, mpix_trace::Severity::Error);
        assert_eq!(out[0].pass, "lint");
    }
}
