//! Pass 4: slab write-disjointness proofs for the threaded executor.
//!
//! The shared-memory backend splits the outermost loop dimension into
//! `nthreads` contiguous chunks and hands each thread a disjoint linear
//! *slab* of every **written** stream's buffer (read-only streams are
//! shared). Two proof obligations follow:
//!
//! * [`check_written_offsets`] — a load from a *written* stream at a
//!   nonzero outer-dimension offset would cross into another thread's
//!   slab, where the value is nondeterministically pre- or post-update
//!   (a read/write race) → Error. Nonzero offsets in inner dimensions
//!   stay inside the slab but still read neighbours the same sweep
//!   updates, making the result traversal-order-dependent → Warning.
//!   (The clusterizer only splits on flow dependences, not
//!   anti-dependences, so such programs can reach the executor.)
//! * [`check_cluster_slabs`] — replays the executor's exact slab
//!   arithmetic (`chunk = ceil(len / nthreads)`, slab `[(x + halo) *
//!   stride0, (xe + halo) * stride0)`) for every region box, thread
//!   count and written stream, and proves the chunks tile the loop range
//!   exactly and the slabs are pairwise disjoint and cover the written
//!   rows — i.e. every output point is written by exactly one thread.
//!
//! Both checks are pure functions over artifacts; the slab replay is
//! split into [`compute_slabs`] / [`check_slabs`] so the mutation corpus
//! can corrupt a slab table directly.

use std::ops::Range;

use mpix_codegen::{CompiledCluster, Op};
use mpix_dmp::regions::{region_box, remainder_boxes, Region};
use mpix_symbolic::Context;
use mpix_trace::Diagnostic;

const PASS: &str = "thread-safety";

/// Lint loads on written streams whose stencil offsets leave the slab
/// (outer dimension, Error) or read same-sweep neighbours (inner
/// dimensions, Warning).
pub fn check_written_offsets(ctx: &Context, ci: usize, cc: &CompiledCluster) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut reported: Vec<(u32, u32)> = Vec::new();
    for op in &cc.ops {
        let (stream, off) = match *op {
            Op::Load { stream, off }
            | Op::LoadMul { stream, off, .. }
            | Op::LoadMulAdd { stream, off, .. } => (stream, off),
            _ => continue,
        };
        let s = stream as usize;
        if s >= cc.written.len() || !cc.written[s] || (off as usize) >= cc.offsets.len() {
            continue; // unwritten stream, or structurally invalid (pass 3 reports)
        }
        if reported.contains(&(stream, off)) {
            continue;
        }
        reported.push((stream, off));
        let deltas = &cc.offsets[off as usize].1;
        let name = &ctx.field(cc.streams[s].0).name;
        if deltas.first().is_some_and(|&d0| d0 != 0) {
            diags.push(Diagnostic::error(
                PASS,
                format!("cluster {ci} / stream {s} ({name})"),
                format!(
                    "load at offset {deltas:?} on a written stream crosses the slab \
                     boundary in the threaded outer dimension: another thread may or \
                     may not have updated that point yet (read/write race)"
                ),
            ));
        } else if deltas.iter().any(|&d| d != 0) {
            diags.push(Diagnostic::warning(
                PASS,
                format!("cluster {ci} / stream {s} ({name})"),
                format!(
                    "load at offset {deltas:?} on a written stream reads a neighbour \
                     the same sweep updates: the result depends on traversal order"
                ),
            ));
        }
    }
    diags
}

/// The executor's slab partition for one written stream: returns
/// `(rows, linear)` per thread, where `rows` is the chunk of the outer
/// loop range and `linear` the buffer slab handed to that thread.
/// Mirrors `exec_box_threaded` exactly.
pub fn compute_slabs(
    range0: &Range<usize>,
    nthreads: usize,
    halo: usize,
    stride0: usize,
) -> Vec<(Range<usize>, Range<usize>)> {
    let chunk = range0.len().div_ceil(nthreads);
    (0..nthreads)
        .map(|t| {
            let x = (range0.start + t * chunk).min(range0.end);
            let xe = (range0.start + (t + 1) * chunk).min(range0.end);
            (x..xe, (x + halo) * stride0..(xe + halo) * stride0)
        })
        .collect()
}

/// Prove a slab table partitions the written rows: chunks tile `range0`
/// exactly (no gap, no overlap → every output point written by exactly
/// one thread), and each linear slab is consistent with its rows.
pub fn check_slabs(
    slabs: &[(Range<usize>, Range<usize>)],
    range0: &Range<usize>,
    halo: usize,
    stride0: usize,
    location: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut cursor = range0.start;
    for (t, (rows, linear)) in slabs.iter().enumerate() {
        if rows.start != cursor {
            diags.push(Diagnostic::error(
                PASS,
                format!("{location} / thread {t}"),
                format!(
                    "chunk starts at row {} but the previous chunk ended at {cursor}: \
                     {}",
                    rows.start,
                    if rows.start > cursor {
                        "the gap rows are never written"
                    } else {
                        "the overlap rows are written by two threads concurrently"
                    }
                ),
            ));
        }
        cursor = cursor.max(rows.end);
        let expect = (rows.start + halo) * stride0..(rows.end + halo) * stride0;
        if *linear != expect {
            diags.push(Diagnostic::error(
                PASS,
                format!("{location} / thread {t}"),
                format!(
                    "linear slab {linear:?} does not match rows {rows:?} (expected \
                     {expect:?}): stores would land outside the thread's exclusive \
                     buffer region"
                ),
            ));
        }
    }
    if cursor != range0.end {
        diags.push(Diagnostic::error(
            PASS,
            location.to_string(),
            format!(
                "chunks end at row {cursor} but the loop range ends at {}: trailing \
                 rows are never written",
                range0.end
            ),
        ));
    }
    diags
}

/// Replay the slab partition for every region box × thread count ×
/// written stream of one cluster on one rank-local geometry.
pub fn check_cluster_slabs(
    ctx: &Context,
    ci: usize,
    cc: &CompiledCluster,
    local: &[usize],
    radius: usize,
    threads: &[usize],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if local.is_empty() {
        return diags;
    }
    let mut boxes = vec![
        (
            "DOMAIN".to_string(),
            region_box(Region::Domain, local, 0, 0),
        ),
        (
            "CORE".to_string(),
            region_box(Region::Core, local, 0, radius),
        ),
    ];
    for (i, b) in remainder_boxes(local, 0, radius).into_iter().enumerate() {
        boxes.push((format!("REMAINDER[{i}]"), b));
    }
    for &t in threads {
        if t < 2 {
            continue;
        }
        for (bname, bx) in &boxes {
            if bx.iter().any(|r| r.is_empty()) || bx[0].len() < 2 * t {
                continue; // executor runs this box sequentially
            }
            for (s, &(f, _)) in cc.streams.iter().enumerate() {
                if !cc.written[s] {
                    continue;
                }
                let halo = ctx.field(f).halo() as usize;
                let stride0: usize = local[1..].iter().map(|&n| n + 2 * halo).product();
                let slabs = compute_slabs(&bx[0], t, halo, stride0);
                let location = format!(
                    "cluster {ci} / stream {s} ({}) / {bname} / {t} threads",
                    ctx.field(f).name
                );
                diags.extend(check_slabs(&slabs, &bx[0], halo, stride0, &location));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_codegen::bytecode::{compile_cluster, fuse_cluster};
    use mpix_ir::cluster::clusterize;
    use mpix_ir::lowering::lower_equations;
    use mpix_symbolic::Grid;

    fn compiled() -> (Context, CompiledCluster) {
        let mut ctx = Context::new();
        let g = Grid::new(&[32, 32], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 4, 2);
        let m = ctx.add_function("m", &g, 4);
        let pde = m.center() * u.dt2() - u.laplace();
        let st = mpix_symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
        let cl = clusterize(&lower_equations(&[st], &ctx).unwrap());
        (ctx, fuse_cluster(compile_cluster(&cl[0])))
    }

    #[test]
    fn clean_cluster_has_no_hazards() {
        let (ctx, cc) = compiled();
        assert!(check_written_offsets(&ctx, 0, &cc).is_empty());
        assert!(check_cluster_slabs(&ctx, 0, &cc, &[16, 16], 2, &[2, 3, 4]).is_empty());
    }

    #[test]
    fn outer_offset_on_written_stream_is_error() {
        let (ctx, mut cc) = compiled();
        // Redirect some load's offset entry to the written stream with a
        // nonzero outer-dimension delta.
        let ws = cc.written.iter().position(|&w| w).unwrap() as u32;
        let off = cc
            .ops
            .iter_mut()
            .find_map(|op| match op {
                Op::Load { stream, off } => {
                    *stream = ws;
                    Some(*off)
                }
                _ => None,
            })
            .unwrap();
        cc.offsets[off as usize] = (ws, vec![1, 0]);
        let diags = check_written_offsets(&ctx, 0, &cc);
        assert!(
            diags.iter().any(|d| d.explanation.contains("race")),
            "{diags:?}"
        );
    }

    #[test]
    fn inner_offset_on_written_stream_is_warning() {
        let (ctx, mut cc) = compiled();
        let ws = cc.written.iter().position(|&w| w).unwrap() as u32;
        let off = cc
            .ops
            .iter_mut()
            .find_map(|op| match op {
                Op::Load { stream, off } => {
                    *stream = ws;
                    Some(*off)
                }
                _ => None,
            })
            .unwrap();
        cc.offsets[off as usize] = (ws, vec![0, 1]);
        let diags = check_written_offsets(&ctx, 0, &cc);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == mpix_trace::Severity::Warning),
            "{diags:?}"
        );
    }

    #[test]
    fn slab_partition_is_exact_for_awkward_sizes() {
        // Sizes that don't divide evenly, including empty trailing chunks.
        for len in [7usize, 8, 9, 13, 64] {
            for t in [2usize, 3, 4, 5] {
                let r = 3..3 + len;
                let slabs = compute_slabs(&r, t, 4, 40);
                assert!(check_slabs(&slabs, &r, 4, 40, "t").is_empty(), "{len}/{t}");
            }
        }
    }

    #[test]
    fn corrupted_slab_is_flagged() {
        let r = 0..16;
        let mut slabs = compute_slabs(&r, 4, 2, 20);
        // Overlap: thread 1 starts one row early.
        slabs[1].0 = slabs[1].0.start - 1..slabs[1].0.end;
        slabs[1].1 = (slabs[1].0.start + 2) * 20..(slabs[1].0.end + 2) * 20;
        let diags = check_slabs(&slabs, &r, 2, 20, "t");
        assert!(
            diags.iter().any(|d| d.explanation.contains("two threads")),
            "{diags:?}"
        );

        // Gap: drop a whole chunk's rows.
        let mut slabs = compute_slabs(&r, 4, 2, 20);
        slabs[2].0 = slabs[2].0.end..slabs[2].0.end;
        slabs[2].1 = (slabs[2].0.start + 2) * 20..(slabs[2].0.end + 2) * 20;
        let diags = check_slabs(&slabs, &r, 2, 20, "t");
        assert!(
            diags.iter().any(|d| d.explanation.contains("gap")),
            "{diags:?}"
        );

        // Inconsistent linear slab for the rows.
        let mut slabs = compute_slabs(&r, 4, 2, 20);
        slabs[0].1 = slabs[0].1.start..slabs[0].1.end + 20;
        let diags = check_slabs(&slabs, &r, 2, 20, "t");
        assert!(
            diags
                .iter()
                .any(|d| d.explanation.contains("exclusive buffer")),
            "{diags:?}"
        );
    }
}
