//! Machine-checkable precision certificates.
//!
//! A [`PrecisionCertificate`] packages, for one operator under explicit
//! [`FpAssumptions`], the per-field absolute/relative rounding-error
//! bounds under every storage precision (f64/f32/bf16 at native wire)
//! and every demoted halo wire format (bf16/f16 at f32 storage), plus
//! the CFL verdict per forward update and the lint findings the
//! analysis proved. The JSON rendering (`mpix-fp-cert/v1`) has a fixed
//! field order — object keys are emitted in insertion order by
//! `mpix-json` — so certificates diff cleanly across compiler versions.
//!
//! Unbounded entries serialize as `null`, never as a large sentinel: a
//! certificate only ever *claims* what the analysis proved, which is
//! what `tests/fp_certs.rs` holds it to empirically (observed f32-vs-f64
//! divergence must stay below the certified bound for every solver and
//! space order).

use mpix_ir::cluster::Cluster;
use mpix_ir::precision::{StoragePrecision, WireFormat};
use mpix_json::Value;
use mpix_symbolic::{Context, FieldId};

use super::cfl::{check_cfl, CflVerdict};
use super::{analyze, FpAssumptions, FpConfig, WIRE_RATIO_THRESHOLD};
use crate::lint::absint::Interval;
use crate::lint::LintFinding;

/// Certificate schema identifier; bump on breaking JSON changes.
pub const CERT_SCHEMA: &str = "mpix-fp-cert/v1";

/// One field's certified bounds across all analyzed scenarios.
#[derive(Clone, Debug)]
pub struct FieldRow {
    pub name: String,
    pub written: bool,
    /// Exact-value interval (from the f32/native scenario; the value
    /// abstraction is precision-independent, only errors differ).
    pub val: Interval,
    /// `(storage, abs bound, rel bound)` at native wire.
    pub storage: Vec<(StoragePrecision, f64, f64)>,
    /// `(wire, abs bound, rel bound)` at f32 storage.
    pub wire: Vec<(WireFormat, f64, f64)>,
}

impl FieldRow {
    fn bound(&self, p: StoragePrecision) -> Option<(f64, f64)> {
        self.storage
            .iter()
            .find(|(sp, _, _)| *sp == p)
            .map(|&(_, a, r)| (a, r))
    }
}

/// The full certificate for one operator instantiation.
#[derive(Clone, Debug)]
pub struct PrecisionCertificate {
    pub operator: String,
    pub steps: u32,
    pub assume: FpAssumptions,
    pub fields: Vec<FieldRow>,
    pub cfl: Vec<(String, CflVerdict)>,
    /// Findings proved by the shipped-scenario analysis plus the
    /// wire-demotion advisories (`MPX018`).
    pub findings: Vec<LintFinding>,
}

impl PrecisionCertificate {
    /// Certified absolute error bound for `field` under `storage`
    /// (native wire); `None` when unbounded or unknown.
    pub fn abs_bound(&self, field: &str, storage: StoragePrecision) -> Option<f64> {
        let (abs, _) = self
            .fields
            .iter()
            .find(|r| r.name == field)?
            .bound(storage)?;
        abs.is_finite().then_some(abs)
    }

    /// Stable-order JSON rendering (`mpix-fp-cert/v1`).
    pub fn to_json(&self) -> Value {
        let num_or_null = |x: f64| {
            if x.is_finite() {
                Value::Num(x)
            } else {
                Value::Null
            }
        };
        let bound_obj = |abs: f64, rel: f64| {
            Value::Obj(vec![
                ("abs".to_string(), num_or_null(abs)),
                ("rel".to_string(), num_or_null(rel)),
            ])
        };
        let assumptions = Value::Obj(vec![
            (
                "scalars".to_string(),
                Value::Obj(
                    self.assume
                        .scalars
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::Num(v)))
                        .collect(),
                ),
            ),
            ("steps".to_string(), Value::Num(self.steps as f64)),
        ]);
        let fields = Value::Arr(
            self.fields
                .iter()
                .map(|r| {
                    Value::Obj(vec![
                        ("name".to_string(), Value::Str(r.name.clone())),
                        ("written".to_string(), Value::Bool(r.written)),
                        (
                            "value".to_string(),
                            Value::Arr(vec![num_or_null(r.val.lo), num_or_null(r.val.hi)]),
                        ),
                        (
                            "storage".to_string(),
                            Value::Obj(
                                r.storage
                                    .iter()
                                    .map(|&(p, a, rl)| (p.name().to_string(), bound_obj(a, rl)))
                                    .collect(),
                            ),
                        ),
                        (
                            "wire".to_string(),
                            Value::Obj(
                                r.wire
                                    .iter()
                                    .map(|&(w, a, rl)| (w.name().to_string(), bound_obj(a, rl)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let cfl = Value::Arr(
            self.cfl
                .iter()
                .map(|(name, v)| {
                    let (verdict, amp, reason) = match v {
                        CflVerdict::SampledStable { max_amp } => {
                            ("sampled-stable", Some(*max_amp), None)
                        }
                        CflVerdict::Unstable { max_amp } => ("unstable", Some(*max_amp), None),
                        CflVerdict::Unanalyzed { reason } => {
                            ("unanalyzed", None, Some(reason.clone()))
                        }
                    };
                    let mut row = vec![
                        ("field".to_string(), Value::Str(name.clone())),
                        ("verdict".to_string(), Value::Str(verdict.to_string())),
                        (
                            "max_amp".to_string(),
                            amp.map(Value::Num).unwrap_or(Value::Null),
                        ),
                    ];
                    if let Some(r) = reason {
                        row.push(("reason".to_string(), Value::Str(r)));
                    }
                    Value::Obj(row)
                })
                .collect(),
        );
        let findings = Value::Arr(
            self.findings
                .iter()
                .map(|f| {
                    Value::Obj(vec![
                        ("code".to_string(), Value::Str(f.code.to_string())),
                        ("location".to_string(), Value::Str(f.location.clone())),
                        ("explanation".to_string(), Value::Str(f.explanation.clone())),
                    ])
                })
                .collect(),
        );
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(CERT_SCHEMA.to_string())),
            ("operator".to_string(), Value::Str(self.operator.clone())),
            ("assumptions".to_string(), assumptions),
            ("fields".to_string(), fields),
            ("cfl".to_string(), cfl),
            ("findings".to_string(), findings),
        ])
    }
}

/// Run the analysis across the full storage × wire scenario matrix and
/// assemble the certificate.
pub fn certify(
    ctx: &Context,
    clusters: &[Cluster],
    assume: &FpAssumptions,
    operator: &str,
) -> PrecisionCertificate {
    let scenario = |storage, wire| FpConfig {
        storage,
        wire,
        model: mpix_codegen::bytecode::RoundingModel::EXECUTED,
    };
    let storage_reports: Vec<_> = StoragePrecision::ALL
        .iter()
        .map(|&p| {
            (
                p,
                analyze(ctx, clusters, scenario(p, WireFormat::Native), assume),
            )
        })
        .collect();
    let wire_reports: Vec<_> = [WireFormat::Bf16, WireFormat::F16]
        .iter()
        .map(|&w| {
            (
                w,
                analyze(ctx, clusters, scenario(StoragePrecision::F32, w), assume),
            )
        })
        .collect();

    // Findings: the shipped scenario owns MPX015/016/017/019…
    let mut findings = storage_reports
        .iter()
        .find(|(p, _)| *p == StoragePrecision::F32)
        .map(|(_, r)| r.findings.clone())
        .unwrap_or_default();

    let field_ids: Vec<FieldId> = ctx.fields().iter().map(|f| f.id).collect();
    let mut rows = Vec::new();
    for f in &field_ids {
        let name = ctx.field(*f).name.clone();
        let f32_native = storage_reports
            .iter()
            .find(|(p, _)| *p == StoragePrecision::F32)
            .and_then(|(_, r)| r.fields.get(f).copied());
        let (val, written, native_abs) = match f32_native {
            Some(b) => (b.val, b.written, b.abs),
            None => (crate::lint::absint::TOP, false, f64::INFINITY),
        };
        let storage = storage_reports
            .iter()
            .filter_map(|(p, r)| r.fields.get(f).map(|b| (*p, b.abs, b.rel)))
            .collect();
        let wire: Vec<_> = wire_reports
            .iter()
            .filter_map(|(w, r)| r.fields.get(f).map(|b| (*w, b.abs, b.rel)))
            .collect();

        // …while MPX018 needs two scenarios side by side: demoting the
        // wire is flagged when it provably inflates a field's bound
        // past WIRE_RATIO_THRESHOLD× the native-wire bound.
        for &(w, wabs, _) in &wire {
            if written
                && native_abs.is_finite()
                && native_abs > 0.0
                && wabs.is_finite()
                && wabs > WIRE_RATIO_THRESHOLD * native_abs
            {
                findings.push(LintFinding::new(
                    "MPX018",
                    format!("field {name} / wire {}", w.name()),
                    format!(
                        "demoting halo traffic to {} inflates the certified error bound \
                         {:.1}× over the native wire (> {WIRE_RATIO_THRESHOLD}×): demotion \
                         is not numerically free for this field",
                        w.name(),
                        wabs / native_abs
                    ),
                ));
            }
        }
        rows.push(FieldRow {
            name,
            written,
            val,
            storage,
            wire,
        });
    }

    let cfl = check_cfl(ctx, clusters, &assume.scalars)
        .into_iter()
        .map(|(f, v)| (ctx.field(f).name.clone(), v))
        .collect();

    PrecisionCertificate {
        operator: operator.to_string(),
        steps: assume.steps.max(1),
        assume: assume.clone(),
        fields: rows,
        cfl,
        findings,
    }
}
