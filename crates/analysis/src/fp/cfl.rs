//! `MPX019`: static CFL/von Neumann stability check.
//!
//! The extraction half of the CFL argument: a `Store` to a
//! `TimeFunction`'s forward buffer is linearized over that field's
//! `t`/`t-1` taps — coefficients evaluated to `f64` from the symbolic
//! `dt`/`h_*` bindings — and handed to
//! [`mpix_symbolic::cfl::max_amplification`] for the sampled von
//! Neumann verdict. Only *linear, grid-invariant-coefficient,
//! single-field* updates are in the analyzable class; anything else
//! (material-parameter loads, coupled fields, nonlinearity) yields an
//! honest [`CflVerdict::Unanalyzed`] with the reason recorded, never a
//! guess. Verdicts are one-sided: a sampled amplification `> 1 + tol`
//! *proves* instability (that mode exists on any grid with ≥ 4 points
//! per dimension), which is what licenses `MPX019`'s `Deny` default.

use std::collections::BTreeMap;

use mpix_ir::cluster::{Cluster, Stmt};
use mpix_ir::iexpr::IExpr;
use mpix_symbolic::cfl::{max_amplification, Tap};
use mpix_symbolic::{Context, FieldId, FieldKind};

use crate::lint::LintFinding;

/// Sampled `|z|` must exceed `1 + CFL_TOL` before instability is
/// claimed; keeps marginally-stable schemes (|z| = 1 exactly, e.g.
/// leapfrog at the Courant limit) out of the finding.
pub const CFL_TOL: f64 = 1e-6;

/// Outcome of the stability check for one forward update.
#[derive(Clone, Debug, PartialEq)]
pub enum CflVerdict {
    /// `|z| ≤ 1 + tol` at every sampled wavenumber. Consistent with
    /// stability, but *not* a proof (sampling is finite).
    SampledStable { max_amp: f64 },
    /// Some sampled mode grows: provably von Neumann unstable under
    /// the bound scalars.
    Unstable { max_amp: f64 },
    /// The update is outside the analyzable class.
    Unanalyzed { reason: String },
}

/// Linear form of an expression over the target field's taps:
/// `constant + Σ curr_δ·u[t, x+δ] + Σ prev_δ·u[t-1, x+δ]`.
#[derive(Clone, Debug, Default)]
struct LinForm {
    constant: f64,
    curr: BTreeMap<Vec<i32>, f64>,
    prev: BTreeMap<Vec<i32>, f64>,
}

impl LinForm {
    fn scalar(c: f64) -> LinForm {
        LinForm {
            constant: c,
            ..Default::default()
        }
    }

    fn is_scalar(&self) -> bool {
        self.curr.is_empty() && self.prev.is_empty()
    }

    fn add(mut self, o: LinForm) -> LinForm {
        self.constant += o.constant;
        for (d, c) in o.curr {
            *self.curr.entry(d).or_insert(0.0) += c;
        }
        for (d, c) in o.prev {
            *self.prev.entry(d).or_insert(0.0) += c;
        }
        self
    }

    fn scale(mut self, s: f64) -> LinForm {
        self.constant *= s;
        self.curr.values_mut().for_each(|c| *c *= s);
        self.prev.values_mut().for_each(|c| *c *= s);
        self
    }
}

/// Pure-scalar `f64` evaluation (for hoisted parameters — they are
/// grid-invariant by construction, so loads/temps are malformed here).
fn eval_scalar(
    e: &IExpr,
    scalars: &BTreeMap<String, f64>,
    params: &BTreeMap<usize, Result<f64, String>>,
) -> Result<f64, String> {
    match e {
        IExpr::Const(c) => Ok(*c),
        IExpr::Sym(s) => scalars
            .get(s)
            .copied()
            .ok_or_else(|| format!("scalar `{s}` is unbound")),
        IExpr::Param(i) => params
            .get(i)
            .cloned()
            .unwrap_or_else(|| Err(format!("parameter r{i} is undefined"))),
        IExpr::Add(xs) => xs
            .iter()
            .try_fold(0.0, |a, x| Ok(a + eval_scalar(x, scalars, params)?)),
        IExpr::Mul(xs) => xs
            .iter()
            .try_fold(1.0, |a, x| Ok(a * eval_scalar(x, scalars, params)?)),
        IExpr::Pow(b, n) => Ok(eval_scalar(b, scalars, params)?.powi(*n)),
        IExpr::Func(f, b) => Ok(f.apply(eval_scalar(b, scalars, params)?)),
        IExpr::Load(_) | IExpr::Temp(_) => Err("parameter is not grid-invariant".to_string()),
    }
}

struct LinCtx<'a> {
    ctx: &'a Context,
    target: FieldId,
    scalars: &'a BTreeMap<String, f64>,
    params: &'a BTreeMap<usize, Result<f64, String>>,
    temps: &'a [Result<LinForm, String>],
}

/// Linearize `e` over the target field's taps, or say why that is
/// impossible.
fn eval_lin(e: &IExpr, lc: &LinCtx) -> Result<LinForm, String> {
    match e {
        IExpr::Const(c) => Ok(LinForm::scalar(*c)),
        IExpr::Sym(s) => lc
            .scalars
            .get(s)
            .map(|&v| LinForm::scalar(v))
            .ok_or_else(|| format!("scalar `{s}` is unbound")),
        IExpr::Param(i) => lc
            .params
            .get(i)
            .cloned()
            .unwrap_or_else(|| Err(format!("parameter r{i} is undefined")))
            .map(LinForm::scalar),
        IExpr::Temp(i) => match lc.temps.get(*i) {
            Some(r) => r.clone(),
            None => Err(format!("temporary t{i} is undefined")),
        },
        IExpr::Load(a) => {
            if a.field != lc.target {
                return Err(format!(
                    "coefficient reads field `{}` (not grid-invariant)",
                    lc.ctx.field(a.field).name
                ));
            }
            let mut lf = LinForm::scalar(0.0);
            match a.time_offset {
                0 => {
                    lf.curr.insert(a.deltas.clone(), 1.0);
                }
                -1 => {
                    lf.prev.insert(a.deltas.clone(), 1.0);
                }
                t => {
                    return Err(format!(
                        "update reads `{}`[t{t:+}], outside the two-level von Neumann form",
                        lc.ctx.field(a.field).name
                    ))
                }
            }
            Ok(lf)
        }
        IExpr::Add(xs) => {
            let mut acc = LinForm::scalar(0.0);
            for x in xs {
                acc = acc.add(eval_lin(x, lc)?);
            }
            Ok(acc)
        }
        IExpr::Mul(xs) => {
            let mut scale = 1.0f64;
            let mut tapped: Option<LinForm> = None;
            for x in xs {
                let lf = eval_lin(x, lc)?;
                if lf.is_scalar() {
                    scale *= lf.constant;
                } else if tapped.is_none() {
                    tapped = Some(lf);
                } else {
                    return Err("update is nonlinear in the evolved field".to_string());
                }
            }
            Ok(match tapped {
                Some(lf) => lf.scale(scale),
                None => LinForm::scalar(scale),
            })
        }
        IExpr::Pow(b, n) => {
            let lf = eval_lin(b, lc)?;
            if lf.is_scalar() {
                Ok(LinForm::scalar(lf.constant.powi(*n)))
            } else if *n == 1 {
                Ok(lf)
            } else {
                Err("update is nonlinear in the evolved field (pow)".to_string())
            }
        }
        IExpr::Func(f, b) => {
            let lf = eval_lin(b, lc)?;
            if lf.is_scalar() {
                Ok(LinForm::scalar(f.apply(lf.constant)))
            } else {
                Err(format!(
                    "update applies `{}` to the evolved field (nonlinear)",
                    f.name()
                ))
            }
        }
    }
}

/// Check every forward `TimeFunction` update in `clusters` under the
/// given scalar bindings. Returns one verdict per store, in program
/// order, keyed by the updated field.
pub fn check_cfl(
    ctx: &Context,
    clusters: &[Cluster],
    scalars: &BTreeMap<String, f64>,
) -> Vec<(FieldId, CflVerdict)> {
    // Hoisted parameters first (shared across clusters).
    let mut params: BTreeMap<usize, Result<f64, String>> = BTreeMap::new();
    for cl in clusters {
        for (pi, value) in &cl.params {
            let v = eval_scalar(value, scalars, &params);
            params.insert(*pi, v);
        }
    }

    let mut verdicts = Vec::new();
    for cl in clusters {
        // Per-cluster temporaries, linearized against each store's own
        // target lazily: temps may legitimately mix fields, so they are
        // (re-)evaluated per target below.
        for stmt in &cl.stmts {
            let Stmt::Store { target, value } = stmt else {
                continue;
            };
            let fld = ctx.field(target.field);
            if fld.kind != FieldKind::TimeFunction || target.time_offset <= 0 {
                continue;
            }
            // Linearize the temps for *this* target.
            let mut temps: Vec<Result<LinForm, String>> =
                vec![Err("temporary t? is undefined".to_string()); cl.num_temps];
            for s in &cl.stmts {
                if let Stmt::Let { temp, value } = s {
                    let lf = {
                        let lc = LinCtx {
                            ctx,
                            target: target.field,
                            scalars,
                            params: &params,
                            temps: &temps,
                        };
                        eval_lin(value, &lc)
                    };
                    temps[*temp] = lf;
                }
            }
            let lc = LinCtx {
                ctx,
                target: target.field,
                scalars,
                params: &params,
                temps: &temps,
            };
            let verdict = match eval_lin(value, &lc) {
                Err(reason) => CflVerdict::Unanalyzed { reason },
                Ok(lf) => {
                    // A nonzero constant is an affine source term; it
                    // shifts the solution, not the homogeneous growth,
                    // so von Neumann ignores it.
                    let curr: Vec<Tap> = lf.curr.into_iter().collect();
                    let prev: Vec<Tap> = lf.prev.into_iter().collect();
                    let amp = max_amplification(&curr, &prev);
                    if amp > 1.0 + CFL_TOL {
                        CflVerdict::Unstable { max_amp: amp }
                    } else {
                        CflVerdict::SampledStable { max_amp: amp }
                    }
                }
            };
            verdicts.push((target.field, verdict));
        }
    }
    verdicts
}

/// The `MPX019` findings for provably unstable updates.
pub fn lint_cfl(
    ctx: &Context,
    clusters: &[Cluster],
    scalars: &BTreeMap<String, f64>,
) -> Vec<LintFinding> {
    check_cfl(ctx, clusters, scalars)
        .into_iter()
        .filter_map(|(f, v)| match v {
            CflVerdict::Unstable { max_amp } => Some(LintFinding::new(
                "MPX019",
                format!("store {}", ctx.field(f).name),
                format!(
                    "update of `{}` is provably von Neumann unstable under the bound \
                     dt/h scalars: sampled mode amplification |z| = {max_amp:.4} > 1 — \
                     the scheme diverges at every storage precision; reduce dt",
                    ctx.field(f).name
                ),
            )),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_symbolic::{discretize, Eq, Grid};

    /// 2-D diffusion `u.dt = u.laplace` on a grid with spacing bound at
    /// analysis time; FTCS is stable iff `dt · Σ 2/h_d² ≤ 1` here.
    fn diffusion(dt: f64) -> (Context, Vec<Cluster>, BTreeMap<String, f64>) {
        let mut ctx = Context::new();
        let grid = Grid::new(&[9, 9], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &grid, 2, 1);
        let eq = Eq::new(u.dt(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        let disc = discretize(&st, &ctx).unwrap();
        let lowered = mpix_ir::lower_equations(&[disc], &ctx).unwrap();
        let clusters = mpix_ir::clusterize(&lowered);
        let mut scalars = grid.spacing_bindings();
        scalars.insert("dt".to_string(), dt);
        (ctx, clusters, scalars)
    }

    #[test]
    fn diffusion_verdict_flips_at_the_cfl_limit() {
        // h = 1/8: limit dt* = h²/4 = 1/256.
        let (ctx, cls, sc) = diffusion(0.9 / 256.0);
        let v = check_cfl(&ctx, &cls, &sc);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0].1, CflVerdict::SampledStable { .. }), "{v:?}");
        assert!(lint_cfl(&ctx, &cls, &sc).is_empty());

        let (ctx, cls, sc) = diffusion(2.0 / 256.0);
        let v = check_cfl(&ctx, &cls, &sc);
        assert!(
            matches!(v[0].1, CflVerdict::Unstable { max_amp } if max_amp > 1.5),
            "{v:?}"
        );
        let findings = lint_cfl(&ctx, &cls, &sc);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, "MPX019");
    }

    #[test]
    fn unbound_scalars_yield_unanalyzed_not_a_guess() {
        let (ctx, cls, _) = diffusion(1.0);
        let v = check_cfl(&ctx, &cls, &BTreeMap::new());
        assert!(
            matches!(&v[0].1, CflVerdict::Unanalyzed { reason } if reason.contains("unbound")),
            "{v:?}"
        );
        assert!(lint_cfl(&ctx, &cls, &BTreeMap::new()).is_empty());
    }
}
