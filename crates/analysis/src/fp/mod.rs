//! Static forward floating-point error analysis (`mpix-analysis::fp`).
//!
//! Extends the interval abstract interpretation of [`crate::lint::absint`]
//! to a *paired* domain: each abstract value is an [`ErrVal`] — an
//! interval bounding the exact (real-arithmetic) value together with an
//! upper bound on the absolute round-off error any finite-precision
//! evaluation of the expression can have accumulated. Propagation is
//! first-order forward error analysis with the second-order terms kept
//! (so the bounds are sound, not merely asymptotic):
//!
//! * one rounding event on a value with exact range `V` and incoming
//!   error `e` yields `e + u·(|V| + e)` where `u` is the unit roundoff
//!   of the compute precision;
//! * `x·y` propagates `|x|·e_y + |y|·e_x + e_x·e_y` before rounding;
//! * division, `sqrt`, `exp` use derivative bounds over the interval
//!   (going unbounded — honestly — when the argument can reach the
//!   singularity within its error bound).
//!
//! The analysis runs over **both** IR levels: cluster statements (where
//! the cancellation structure is visible, `MPX015`) and the
//! compiled+fused bytecode (what actually executes). The bytecode walk
//! consumes the rounding-semantics table declared by
//! [`Op::rounding_events`], so the fused `MulAdd`/`LoadMulAdd`
//! superinstructions are modeled by their *declared* rounding behaviour:
//! two roundings under [`RoundingModel::EXECUTED`] (bitwise-identical to
//! the unfused pair), one under a hypothetical FMA-contracting backend.
//!
//! Multi-step propagation mirrors the executor: per (field, time-buffer)
//! state, clusters applied in program order each step, buffer rotation
//! by `(t + toff) mod buffers`, halo reads union-ed with the padded
//! boundary zeros. From the final state [`certify`] builds the
//! machine-checkable precision certificate validated empirically by
//! `tests/fp_certs.rs`.
//!
//! Lints owned by this module: `MPX015` (catastrophic cancellation),
//! `MPX016` (accumulation-chain amplification), `MPX017` (insufficient
//! storage precision), `MPX018` (unsafe wire demotion, advisory),
//! `MPX019` (CFL instability). Without scalar bindings and field ranges
//! only the structural detectors (`MPX015`/`MPX016`) can fire — the
//! rest require provable *finite* bounds, keeping the
//! coarseness-costs-recall-never-precision contract of the lint family.

use std::collections::BTreeMap;

use mpix_codegen::bytecode::{
    compile_cluster, fuse_cluster, CoeffSrc, CompiledCluster, Op, RoundingModel,
};
use mpix_ir::cluster::{Cluster, Stmt};
use mpix_ir::iexpr::IExpr;
use mpix_ir::precision::{StoragePrecision, WireFormat};
use mpix_symbolic::{Context, FieldId, UnaryFn};

use crate::lint::absint::{Interval, TOP};
use crate::lint::LintFinding;

pub mod certify;
pub mod cfl;

pub use certify::{certify, PrecisionCertificate};

/// Relative-error amplification above which a provable near-cancellation
/// is reported (`MPX015`).
pub const CANCEL_KAPPA: f64 = 1024.0;

/// Affine envelope for fused accumulation chains (`MPX016`): a chain may
/// run `SLOPE · ndim · (2r+1) + INTERCEPT` rounding events before the
/// certificate's affine-in-radius error budget is considered violated.
/// The slope covers the cross-derivative stencils (quadratic tap counts
/// at the shipped radii) with measured margin.
pub const ACC_CHAIN_SLOPE: usize = 8;
pub const ACC_CHAIN_INTERCEPT: usize = 16;

/// Relative-error threshold for `MPX017` under f32 storage.
pub const STORAGE_REL_THRESHOLD: f64 = 1e-2;

/// Wire-vs-native bound ratio above which demotion is flagged (`MPX018`).
pub const WIRE_RATIO_THRESHOLD: f64 = 4.0;

/// The paired abstract value: exact-value interval + absolute error
/// bound. `err = +∞` means "no bound provable".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrVal {
    pub val: Interval,
    pub err: f64,
}

impl ErrVal {
    pub fn exact(val: Interval) -> ErrVal {
        ErrVal { val, err: 0.0 }
    }

    pub fn unknown() -> ErrVal {
        ErrVal {
            val: TOP,
            err: f64::INFINITY,
        }
    }
}

/// `a * b` with the convention `0 · ∞ = 0` (an exactly-zero factor
/// annihilates even an unbounded one; plain f64 gives NaN).
fn safe_mul(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        0.0
    } else {
        a * b
    }
}

fn safe_add(a: f64, b: f64) -> f64 {
    let s = a + b;
    if s.is_nan() {
        f64::INFINITY
    } else {
        s
    }
}

/// Error after one rounding event on exact range `val` with incoming
/// error `err`, at unit roundoff `u`.
fn round_err(val: Interval, err: f64, u: f64) -> f64 {
    safe_add(err, safe_mul(u, safe_add(val.mag(), err)))
}

/// Representation error of storing the exact value `c` at roundoff `u`
/// (the `1/(1-u)` slack makes the bound valid relative to the *stored*
/// magnitude too).
fn repr_err(c: f64, u: f64) -> f64 {
    u * c.abs() * (1.0 + 2.0 * u)
}

/// `x + y`; `round` says whether the result is rounded (false only for
/// the virtual intermediate of a contracted FMA).
fn ev_add(x: ErrVal, y: ErrVal, u: f64, round: bool) -> ErrVal {
    let val = x.val.add(y.val);
    let err = safe_add(x.err, y.err);
    ErrVal {
        val,
        err: if round { round_err(val, err, u) } else { err },
    }
}

/// `x · y` with the full (second-order kept) propagation term.
fn ev_mul(x: ErrVal, y: ErrVal, u: f64, round: bool) -> ErrVal {
    let val = x.val.mul(y.val);
    let prop = safe_add(
        safe_add(safe_mul(x.val.mag(), y.err), safe_mul(y.val.mag(), x.err)),
        safe_mul(x.err, y.err),
    );
    ErrVal {
        val,
        err: if round { round_err(val, prop, u) } else { prop },
    }
}

/// Interval reciprocal keeping finite bounds (absint's `pow` widens
/// positive bases to `[min_positive, ∞]`, which would make every
/// downstream magnitude unbounded).
fn recip_interval(v: Interval) -> Interval {
    if v.lo <= 0.0 && v.hi >= 0.0 {
        return TOP;
    }
    Interval {
        lo: 1.0 / v.hi,
        hi: 1.0 / v.lo,
    }
}

/// `1 / x`: unbounded when the argument can reach zero within its error.
fn ev_recip(x: ErrVal, u: f64) -> ErrVal {
    let val = recip_interval(x.val);
    let m = x.val.min_mag();
    if m <= x.err || m == 0.0 {
        return ErrVal {
            val,
            err: f64::INFINITY,
        };
    }
    // |1/x̂ - 1/x| = |x - x̂| / |x·x̂| ≤ e / (m·(m - e)).
    let prop = x.err / (m * (m - x.err));
    ErrVal {
        val,
        err: round_err(val, prop, u),
    }
}

/// `x^n`, mirroring the `powi` lowering (`v*v`, `1/v`, `1/(v*v)` fast
/// paths; a multiply chain bounds the generic case from above).
fn ev_pow(x: ErrVal, n: i32, u: f64) -> ErrVal {
    match n {
        0 => ErrVal::exact(Interval::point(1.0)),
        1 => x,
        2 => ev_mul(x, x, u, true),
        -1 => ev_recip(x, u),
        -2 => ev_recip(ev_mul(x, x, u, true), u),
        n => {
            let mut acc = x;
            for _ in 1..n.unsigned_abs() {
                acc = ev_mul(acc, x, u, true);
            }
            if n < 0 {
                acc = ev_recip(acc, u);
            }
            acc
        }
    }
}

/// Elementary functions: derivative-bound propagation plus `2u` per
/// call (libm results are faithful, not correctly rounded).
fn ev_func(f: UnaryFn, x: ErrVal, u: f64) -> ErrVal {
    match f {
        UnaryFn::Abs => ErrVal {
            val: Interval {
                lo: x.val.min_mag(),
                hi: x.val.mag(),
            },
            err: x.err,
        },
        UnaryFn::Sqrt => {
            if x.val.hi < 0.0 {
                return ErrVal::unknown(); // NaN; MPX003 territory
            }
            let val = Interval {
                lo: x.val.lo.max(0.0).sqrt(),
                hi: x.val.hi.sqrt(),
            };
            let a = x.val.lo - x.err; // argument lower bound incl. error
            let prop = if x.err == 0.0 {
                0.0
            } else if a > 0.0 {
                x.err / (2.0 * a.sqrt())
            } else {
                f64::INFINITY // derivative unbounded at 0
            };
            ErrVal {
                val,
                err: safe_add(round_err(val, prop, u), safe_mul(u, val.mag())),
            }
        }
        UnaryFn::Exp => {
            let val = Interval {
                lo: x.val.lo.exp(),
                hi: x.val.hi.exp(),
            };
            let dmax = safe_add(x.val.hi, x.err).min(709.0).exp();
            let prop = safe_mul(x.err, dmax);
            ErrVal {
                val,
                err: safe_add(round_err(val, prop, u), safe_mul(u, val.mag())),
            }
        }
        UnaryFn::Sin | UnaryFn::Cos => {
            let val = Interval { lo: -1.0, hi: 1.0 };
            ErrVal {
                val,
                err: safe_add(x.err, 2.0 * u), // |d sin| ≤ 1; 2u call slack
            }
        }
    }
}

/// Precision scenario one analysis runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FpConfig {
    /// Storage *and* compute element type (the backends compute in the
    /// storage precision).
    pub storage: StoragePrecision,
    /// Halo wire format; demoted formats add one rounding per
    /// halo-offset load.
    pub wire: WireFormat,
    /// Declared rounding semantics of the fused superinstructions.
    pub model: RoundingModel,
}

impl FpConfig {
    /// What ships today: f32 storage/compute, native wire, two-rounding
    /// fused ops.
    pub fn shipped() -> FpConfig {
        FpConfig {
            storage: StoragePrecision::F32,
            wire: WireFormat::Native,
            model: RoundingModel::EXECUTED,
        }
    }
}

/// Externally supplied facts the certificate is conditional on: scalar
/// bindings (`dt`, `h_*`, solver scalars), initial per-field value
/// ranges, and the step count to propagate through. The empty
/// ([`FpAssumptions::structural`]) variant drives the purely structural
/// detectors used inside `lint_operator`.
#[derive(Clone, Debug, Default)]
pub struct FpAssumptions {
    pub scalars: BTreeMap<String, f64>,
    pub fields: BTreeMap<FieldId, Interval>,
    pub steps: u32,
}

impl FpAssumptions {
    /// No bindings: value intervals are ⊤, errors unbounded, one step.
    pub fn structural() -> FpAssumptions {
        FpAssumptions {
            steps: 1,
            ..Default::default()
        }
    }

    pub fn with_scalar(mut self, name: &str, v: f64) -> Self {
        self.scalars.insert(name.to_string(), v);
        self
    }

    pub fn with_field(mut self, f: FieldId, lo: f64, hi: f64) -> Self {
        self.fields.insert(f, Interval { lo, hi });
        self
    }

    pub fn with_steps(mut self, steps: u32) -> Self {
        self.steps = steps;
        self
    }
}

/// Final per-field result of one analysis.
#[derive(Clone, Copy, Debug)]
pub struct FieldBound {
    /// Union of the exact-value intervals over all time buffers.
    pub val: Interval,
    /// Max absolute error bound over all time buffers.
    pub abs: f64,
    /// Normwise relative bound: `abs / max |val|`.
    pub rel: f64,
    /// Whether any cluster stores this field (materials stay exact).
    pub written: bool,
}

/// Result of [`analyze`]: per-field bounds plus the lint findings the
/// run could prove.
#[derive(Clone, Debug, Default)]
pub struct FpReport {
    pub fields: BTreeMap<FieldId, FieldBound>,
    pub findings: Vec<LintFinding>,
}

impl FpReport {
    /// Absolute bound for a field by name, `None` if unknown.
    pub fn abs_bound(&self, ctx: &Context, name: &str) -> Option<f64> {
        let f = ctx.field_by_name(name)?;
        self.fields.get(&f.id).map(|b| b.abs)
    }
}

/// Per-(field, buffer) abstract state.
type State = BTreeMap<(FieldId, usize), ErrVal>;

fn buffer_index(t: i64, toff: i32, nb: usize) -> usize {
    (((t + toff as i64) % nb as i64 + nb as i64) % nb as i64) as usize
}

/// Scalar binding → abstract value. Unbound `dt`/`h_*` keep absint's
/// positive-unbounded abstraction; everything else unbound is ⊤.
fn scalar_ev(name: &str, scalars: &BTreeMap<String, f64>, u: f64) -> ErrVal {
    match scalars.get(name) {
        Some(&v) => ErrVal {
            val: Interval::point(v),
            err: repr_err(v, u),
        },
        None if name == "dt" || name.starts_with("h_") => ErrVal {
            val: crate::lint::absint::POSITIVE,
            err: f64::INFINITY,
        },
        None => ErrVal::unknown(),
    }
}

/// IExpr-level evaluation (params, Lets and the `MPX015` detector live
/// here; loads read the *initial* field assumptions).
struct IEnv<'a> {
    scalars: &'a BTreeMap<String, f64>,
    fields: &'a BTreeMap<FieldId, Interval>,
    params: BTreeMap<usize, ErrVal>,
    temps: Vec<ErrVal>,
    u: f64,
}

fn eval_iexpr(e: &IExpr, env: &IEnv, loc: &str, out: &mut Vec<LintFinding>) -> ErrVal {
    match e {
        IExpr::Const(c) => {
            if !c.is_finite() {
                return ErrVal::unknown();
            }
            ErrVal {
                val: Interval::point(*c),
                err: repr_err(*c, env.u),
            }
        }
        IExpr::Sym(s) => scalar_ev(s, env.scalars, env.u),
        IExpr::Load(a) => match env.fields.get(&a.field) {
            Some(&iv) => ErrVal::exact(iv),
            None => ErrVal::unknown(),
        },
        IExpr::Temp(i) => env.temps.get(*i).copied().unwrap_or(ErrVal::unknown()),
        IExpr::Param(i) => env.params.get(i).copied().unwrap_or(ErrVal::unknown()),
        IExpr::Add(xs) => {
            let mut acc: Option<ErrVal> = None;
            for x in xs {
                let y = eval_iexpr(x, env, loc, out);
                acc = Some(match acc {
                    None => y,
                    Some(a) => {
                        check_cancellation(a, y, env.u, loc, out);
                        ev_add(a, y, env.u, true)
                    }
                });
            }
            acc.unwrap_or(ErrVal::exact(Interval::point(0.0)))
        }
        IExpr::Mul(xs) => {
            let mut acc: Option<ErrVal> = None;
            for x in xs {
                let y = eval_iexpr(x, env, loc, out);
                acc = Some(match acc {
                    None => y,
                    Some(a) => ev_mul(a, y, env.u, true),
                });
            }
            acc.unwrap_or(ErrVal::exact(Interval::point(1.0)))
        }
        IExpr::Pow(b, n) => ev_pow(eval_iexpr(b, env, loc, out), *n, env.u),
        IExpr::Func(fx, b) => ev_func(*fx, eval_iexpr(b, env, loc, out), env.u),
    }
}

/// `MPX015`: a provable near-cancellation. Both operands must have
/// finite intervals provably bounded away from zero while the sum's
/// magnitude is at least [`CANCEL_KAPPA`]× smaller than theirs —
/// incoming relative error is amplified by κ at every grid point, not
/// merely at unlucky ones. ⊤ operands (any field load without a
/// declared range) can never fire.
fn check_cancellation(x: ErrVal, y: ErrVal, _u: f64, loc: &str, out: &mut Vec<LintFinding>) {
    let (mx, my) = (x.val.mag(), y.val.mag());
    if !mx.is_finite() || !my.is_finite() || x.val.min_mag() == 0.0 || y.val.min_mag() == 0.0 {
        return;
    }
    let sum = x.val.add(y.val);
    let gross = mx + my;
    if gross > CANCEL_KAPPA * sum.mag() && gross > 0.0 {
        let kappa = if sum.mag() > 0.0 {
            gross / sum.mag()
        } else {
            f64::INFINITY
        };
        out.push(LintFinding::new(
            "MPX015",
            loc,
            format!(
                "operands in [{:.3e}, {:.3e}] and [{:.3e}, {:.3e}] cancel to magnitude \
                 ≤ {:.3e}: relative error is amplified ≥ {kappa:.1e}× (> {CANCEL_KAPPA}) \
                 at every point",
                x.val.lo,
                x.val.hi,
                y.val.lo,
                y.val.hi,
                sum.mag()
            ),
        ));
    }
}

/// `MPX016`: scan the fused bytecode for accumulation chains longer
/// than the affine-in-radius envelope. A chain is a maximal run of
/// `MulAdd`/`LoadMulAdd` accumulations into one stack value; its
/// rounding-event count must stay within
/// `SLOPE · ndim · (2r+1) + INTERCEPT` for the cluster radius `r`.
fn check_accumulation(
    ci: usize,
    cl: &Cluster,
    cc: &CompiledCluster,
    model: RoundingModel,
    out: &mut Vec<LintFinding>,
) {
    let ndim = cl.ndim().max(1);
    let r = cl.max_radius(ndim).into_iter().max().unwrap_or(0);
    let budget = ACC_CHAIN_SLOPE * ndim * (2 * r + 1) + ACC_CHAIN_INTERCEPT;
    let mut run_events = 0usize;
    let mut run_start = 0usize;
    let mut reported = false;
    for (i, op) in cc.ops.iter().enumerate() {
        match op {
            Op::MulAdd | Op::LoadMulAdd { .. } => {
                if run_events == 0 {
                    run_start = i;
                }
                run_events += op.rounding_events(model);
                if run_events > budget && !reported {
                    reported = true;
                    out.push(LintFinding::new(
                        "MPX016",
                        format!("cluster {ci} / op {run_start}"),
                        format!(
                            "fused accumulation chain reaches {run_events} rounding events \
                             (> affine envelope {budget} = {ACC_CHAIN_SLOPE}·{ndim}·(2·{r}+1) \
                             + {ACC_CHAIN_INTERCEPT}): first-order error growth exceeds the \
                             certificate's affine-in-radius budget"
                        ),
                    ));
                }
            }
            _ => run_events = 0,
        }
    }
}

/// One full analysis: param evaluation, `steps` time steps of bytecode
/// abstract execution, structural detectors, and (when bindings allow)
/// the precision/CFL verdicts.
pub fn analyze(
    ctx: &Context,
    clusters: &[Cluster],
    cfg: FpConfig,
    assume: &FpAssumptions,
) -> FpReport {
    let u = cfg.storage.unit_roundoff();
    let wire_u = cfg.wire.unit_roundoff();
    let mut findings = Vec::new();

    // Hoisted parameters evaluate once, before the time loop.
    let mut ienv = IEnv {
        scalars: &assume.scalars,
        fields: &assume.fields,
        params: BTreeMap::new(),
        temps: Vec::new(),
        u,
    };
    for (ci, cl) in clusters.iter().enumerate() {
        for (pi, value) in &cl.params {
            let loc = format!("cluster {ci} / r{pi}");
            let ev = eval_iexpr(value, &ienv, &loc, &mut findings);
            ienv.params.insert(*pi, ev);
        }
    }

    // Cluster-statement pass: MPX015 runs where the Add structure is
    // visible (fusion rewrites it into accumulation chains).
    for (ci, cl) in clusters.iter().enumerate() {
        ienv.temps = vec![ErrVal::unknown(); cl.num_temps];
        for (si, stmt) in cl.stmts.iter().enumerate() {
            let loc = format!("cluster {ci} / stmt {si}");
            let ev = eval_iexpr(stmt.value(), &ienv, &loc, &mut findings);
            if let Stmt::Let { temp, .. } = stmt {
                if let Some(t) = ienv.temps.get_mut(*temp) {
                    *t = ev;
                }
            }
        }
    }
    let params = std::mem::take(&mut ienv.params);

    // Bytecode pass: what runs is what is analyzed.
    let compiled: Vec<CompiledCluster> = clusters
        .iter()
        .map(|cl| fuse_cluster(compile_cluster(cl)))
        .collect();
    for ((ci, cl), cc) in clusters.iter().enumerate().zip(&compiled) {
        check_accumulation(ci, cl, cc, cfg.model, &mut findings);
    }

    // Multi-step state propagation. Initial data is bit-identical in
    // every arm (the f64 shadow widens the f32 seed), so initial error
    // is zero where a range is assumed and unbounded where it is not.
    let mut state: State = BTreeMap::new();
    let mut written: BTreeMap<FieldId, bool> = BTreeMap::new();
    for fld in ctx.fields() {
        written.insert(fld.id, false);
        let ev = match assume.fields.get(&fld.id) {
            Some(&iv) => ErrVal::exact(iv),
            None => ErrVal::unknown(),
        };
        for b in 0..fld.time_buffers() {
            state.insert((fld.id, b), ev);
        }
    }
    let mut stack: Vec<ErrVal> = Vec::new();
    for t in 0..assume.steps.max(1) as i64 {
        for cc in &compiled {
            stack.clear();
            let mut eval = BytecodeEval {
                cc,
                ctx,
                t,
                u,
                wire_u,
                model: cfg.model,
                scalars: &assume.scalars,
                params: &params,
                temps: vec![ErrVal::unknown(); cc.num_temps],
            };
            for op in &cc.ops {
                eval.step(*op, &mut state, &mut written, &mut stack);
            }
        }
    }

    // Fold buffers into per-field bounds.
    let mut fields = BTreeMap::new();
    for fld in ctx.fields() {
        let mut val: Option<Interval> = None;
        let mut abs = 0.0f64;
        for b in 0..fld.time_buffers() {
            if let Some(ev) = state.get(&(fld.id, b)) {
                val = Some(match val {
                    None => ev.val,
                    Some(v) => v.union(ev.val),
                });
                abs = abs.max(ev.err);
            }
        }
        let val = val.unwrap_or(TOP);
        let rel = abs / val.mag().max(f64::MIN_POSITIVE);
        let written = written.get(&fld.id).copied().unwrap_or(false);
        fields.insert(
            fld.id,
            FieldBound {
                val,
                abs,
                rel,
                written,
            },
        );
    }

    // MPX017: only on *provably finite* bounds — without bindings the
    // bound is ∞ = unknown, and unknown is not a finding.
    if cfg.storage == StoragePrecision::F32 && cfg.wire == WireFormat::Native {
        for (f, b) in &fields {
            if b.written && b.rel.is_finite() && b.rel > STORAGE_REL_THRESHOLD {
                findings.push(LintFinding::new(
                    "MPX017",
                    format!("field {}", ctx.field(*f).name),
                    format!(
                        "certified relative error {:.2e} after {} step(s) exceeds {:.0e} \
                         under the shipped f32 storage — this field needs f64 (or a \
                         reformulated update)",
                        b.rel,
                        assume.steps.max(1),
                        STORAGE_REL_THRESHOLD
                    ),
                ));
            }
        }
    }

    // MPX019 needs concrete dt/h bindings.
    if !assume.scalars.is_empty() {
        findings.extend(cfl::lint_cfl(ctx, clusters, &assume.scalars));
    }

    FpReport { fields, findings }
}

/// The bytecode abstract machine for one cluster at one time step.
struct BytecodeEval<'a> {
    cc: &'a CompiledCluster,
    ctx: &'a Context,
    t: i64,
    u: f64,
    wire_u: Option<f64>,
    model: RoundingModel,
    scalars: &'a BTreeMap<String, f64>,
    params: &'a BTreeMap<usize, ErrVal>,
    temps: Vec<ErrVal>,
}

impl BytecodeEval<'_> {
    fn coeff(&self, src: CoeffSrc) -> ErrVal {
        match src {
            CoeffSrc::Const(i) => {
                let c = self.cc.consts[i as usize] as f64;
                ErrVal {
                    val: Interval::point(c),
                    err: repr_err(c, self.u),
                }
            }
            CoeffSrc::Scalar(i) => scalar_ev(&self.cc.scalars[i as usize], self.scalars, self.u),
            CoeffSrc::Param(i) => self
                .params
                .get(&(i as usize))
                .copied()
                .unwrap_or_else(ErrVal::unknown),
        }
    }

    fn load(&self, stream: u32, off: u32, state: &State) -> ErrVal {
        let (f, toff) = self.cc.streams[stream as usize];
        let nb = self.ctx.field(f).time_buffers();
        let bi = buffer_index(self.t, toff, nb);
        let mut ev = state.get(&(f, bi)).copied().unwrap_or_else(ErrVal::unknown);
        let deltas = &self.cc.offsets[off as usize].1;
        if deltas.iter().any(|&d| d != 0) {
            // A halo-offset read can land on padded boundary zeros
            // (exact) or wire-demoted neighbour cells.
            ev.val = ev.val.union(Interval::point(0.0));
            if let Some(w) = self.wire_u {
                ev.err = round_err(ev.val, ev.err, w);
            }
        }
        ev
    }

    /// Execute one bytecode op in the paired domain.
    fn step(
        &mut self,
        op: Op,
        state: &mut State,
        written: &mut BTreeMap<FieldId, bool>,
        stack: &mut Vec<ErrVal>,
    ) {
        let u = self.u;
        match op {
            Op::Const(_) | Op::Scalar(_) | Op::Param(_) => {
                stack.push(self.coeff(op.as_coeff().expect("invariant push")));
            }
            Op::Temp(i) => stack.push(self.temps[i as usize]),
            Op::SetTemp(i) => {
                let ev = stack.pop().expect("stack underflow");
                self.temps[i as usize] = ev;
            }
            Op::Load { stream, off } => stack.push(self.load(stream, off, state)),
            Op::Store { stream } => {
                let ev = stack.pop().expect("stack underflow");
                let (f, toff) = self.cc.streams[stream as usize];
                let nb = self.ctx.field(f).time_buffers();
                state.insert((f, buffer_index(self.t, toff, nb)), ev);
                written.insert(f, true);
            }
            Op::Add => {
                let y = stack.pop().expect("stack underflow");
                let x = stack.pop().expect("stack underflow");
                stack.push(ev_add(x, y, u, true));
            }
            Op::Mul => {
                let y = stack.pop().expect("stack underflow");
                let x = stack.pop().expect("stack underflow");
                stack.push(ev_mul(x, y, u, true));
            }
            Op::Pow(n) => {
                let x = stack.pop().expect("stack underflow");
                stack.push(ev_pow(x, n, u));
            }
            Op::Call(f) => {
                let x = stack.pop().expect("stack underflow");
                stack.push(ev_func(f, x, u));
            }
            Op::MulAdd => {
                let y = stack.pop().expect("stack underflow");
                let x = stack.pop().expect("stack underflow");
                let acc = stack.pop().expect("stack underflow");
                let prod = ev_mul(x, y, u, !self.model.fma_contraction);
                stack.push(ev_add(acc, prod, u, true));
            }
            Op::LoadMul { coeff, stream, off } => {
                let c = self.coeff(coeff);
                let l = self.load(stream, off, state);
                stack.push(ev_mul(c, l, u, true));
            }
            Op::LoadMulAdd { coeff, stream, off } => {
                let acc = stack.pop().expect("stack underflow");
                let c = self.coeff(coeff);
                let l = self.load(stream, off, state);
                let prod = ev_mul(c, l, u, !self.model.fma_contraction);
                stack.push(ev_add(acc, prod, u, true));
            }
        }
    }
}

/// The structural entry point `lint_operator` folds in: no bindings, so
/// only `MPX015`/`MPX016` can fire — shipped operators must stay clean.
pub fn lint_clusters_fp(ctx: &Context, clusters: &[Cluster]) -> Vec<LintFinding> {
    analyze(
        ctx,
        clusters,
        FpConfig::shipped(),
        &FpAssumptions::structural(),
    )
    .findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_ir::cluster::Stmt;
    use mpix_ir::iexpr::IdxAccess;
    use mpix_symbolic::Grid;
    use std::collections::BTreeSet;

    fn ctx_1d(time_order: u32) -> (Context, FieldId) {
        let mut ctx = Context::new();
        let grid = Grid::new(&[32], &[1.0]);
        let u = ctx.add_time_function("u", &grid, 2, time_order);
        (ctx, u.id())
    }

    fn load(f: FieldId, toff: i32, d: i32) -> IExpr {
        IExpr::Load(IdxAccess {
            field: f,
            time_offset: toff,
            deltas: vec![d],
        })
    }

    fn store_cluster(f: FieldId, value: IExpr) -> Cluster {
        Cluster {
            stmts: vec![Stmt::Store {
                target: IdxAccess {
                    field: f,
                    time_offset: 1,
                    deltas: vec![0],
                },
                value,
            }],
            params: Vec::new(),
            num_temps: 0,
        }
    }

    fn codes(findings: &[LintFinding]) -> BTreeSet<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    /// A `(2r+1)`-tap star accumulation over `u[t]` with unit-ish
    /// coefficients, repeated `reps` times — radius stays 1 while the
    /// fused chain grows linearly with `reps`.
    fn chain_cluster(f: FieldId, reps: usize) -> Cluster {
        let mut terms = Vec::new();
        for i in 0..reps {
            for d in [-1, 0, 1] {
                // Mildly amplifying taps (Σ|c| > 1), so multi-step error
                // genuinely compounds instead of contracting away.
                let c = 0.4 + 0.001 * i as f64 + 0.0001 * (d + 1) as f64;
                terms.push(IExpr::Mul(vec![IExpr::Const(c), load(f, 0, d)]));
            }
        }
        store_cluster(f, IExpr::Add(terms))
    }

    #[test]
    fn cancellation_detector_fires_on_provable_near_cancellation() {
        let (ctx, u) = ctx_1d(1);
        // (1.0 + -0.99999)·u[t]: the constant pair provably cancels by
        // ~2e5 ≫ 2^10 at every point.
        let bad = store_cluster(
            u,
            IExpr::Mul(vec![
                IExpr::Add(vec![IExpr::Const(1.0), IExpr::Const(-0.99999)]),
                load(u, 0, 0),
            ]),
        );
        let found = lint_clusters_fp(&ctx, &[bad]);
        assert_eq!(codes(&found), BTreeSet::from(["MPX015"]), "{found:?}");

        // Same shape, no cancellation: clean.
        let good = store_cluster(
            u,
            IExpr::Mul(vec![
                IExpr::Add(vec![IExpr::Const(1.0), IExpr::Const(0.99999)]),
                load(u, 0, 0),
            ]),
        );
        assert!(lint_clusters_fp(&ctx, &[good]).is_empty());
    }

    #[test]
    fn accumulation_chain_detector_respects_affine_envelope() {
        let (ctx, u) = ctx_1d(1);
        // Radius 1 in 1-D: budget = 8·1·3 + 16 = 40 rounding events.
        // 34 reps × 3 taps ≈ 203 events: far past the envelope.
        let found = lint_clusters_fp(&ctx, &[chain_cluster(u, 34)]);
        assert_eq!(codes(&found), BTreeSet::from(["MPX016"]), "{found:?}");
        // 6 reps × 3 taps ≈ 35 events: inside it.
        assert!(lint_clusters_fp(&ctx, &[chain_cluster(u, 6)]).is_empty());
    }

    #[test]
    fn fused_rounding_model_and_storage_width_order_the_bounds() {
        let (ctx, u) = ctx_1d(1);
        let clusters = vec![chain_cluster(u, 6)];
        let assume = FpAssumptions::default()
            .with_field(u, 1.0, 2.0)
            .with_steps(2);
        let bound = |storage, model| {
            let cfg = FpConfig {
                storage,
                wire: WireFormat::Native,
                model,
            };
            let rep = analyze(&ctx, &clusters, cfg, &assume);
            rep.fields[&u].abs
        };
        let f64e = bound(StoragePrecision::F64, RoundingModel::EXECUTED);
        let f32e = bound(StoragePrecision::F32, RoundingModel::EXECUTED);
        let bf16e = bound(StoragePrecision::Bf16, RoundingModel::EXECUTED);
        let f32c = bound(StoragePrecision::F32, RoundingModel::FMA_CONTRACTED);
        assert!(f64e.is_finite() && f64e > 0.0, "{f64e}");
        // Wider storage → tighter certified bound.
        assert!(f64e < f32e && f32e < bf16e, "{f64e} {f32e} {bf16e}");
        // One rounding per fused pair (contraction) beats two — the
        // superinstructions are modeled distinctly from the unfused
        // semantics, not assumed equivalent.
        assert!(f32c < f32e, "{f32c} {f32e}");
    }

    #[test]
    fn insufficient_storage_precision_needs_a_finite_proof() {
        let (ctx, u) = ctx_1d(1);
        // (u[t] − 1)·10⁶ + u[t] on u ∈ [1, 1+1e-6]: the subtraction
        // cancels ~all significand, then the 10⁶ scale turns the f32
        // rounding of the sum into ~10% relative error.
        let amp = store_cluster(
            u,
            IExpr::Add(vec![
                IExpr::Mul(vec![
                    IExpr::Const(1e6),
                    IExpr::Add(vec![load(u, 0, 0), IExpr::Const(-1.0)]),
                ]),
                load(u, 0, 0),
            ]),
        );
        let assume = FpAssumptions::default()
            .with_field(u, 1.0, 1.0 + 1e-6)
            .with_steps(1);
        let rep = analyze(
            &ctx,
            std::slice::from_ref(&amp),
            FpConfig::shipped(),
            &assume,
        );
        let found = codes(&rep.findings);
        assert!(found.contains("MPX017"), "{:?}", rep.findings);
        // The cancellation that causes it is also called out.
        assert!(found.contains("MPX015"), "{:?}", rep.findings);
        // Without value assumptions the bound is ∞ — unknown is not a
        // finding, so the structural pass must NOT fire MPX017.
        let structural = lint_clusters_fp(&ctx, &[amp]);
        assert!(!codes(&structural).contains("MPX017"), "{structural:?}");
    }

    #[test]
    fn certificate_bounds_are_ordered_and_flag_unsafe_wire_demotion() {
        let (ctx, u) = ctx_1d(1);
        let clusters = vec![chain_cluster(u, 6)];
        let assume = FpAssumptions::default()
            .with_field(u, 1.0, 2.0)
            .with_steps(3);
        let cert = certify(&ctx, &clusters, &assume, "chain-test");
        let f64b = cert.abs_bound("u", StoragePrecision::F64).unwrap();
        let f32b = cert.abs_bound("u", StoragePrecision::F32).unwrap();
        assert!(f64b < f32b, "{f64b} {f32b}");
        // Halo taps at bf16 on the wire cost ~2^-8 relative per load —
        // orders of magnitude over the native-wire f32 bound.
        assert!(
            codes(&cert.findings).contains("MPX018"),
            "{:?}",
            cert.findings
        );
        let json = cert.to_json();
        assert_eq!(
            json.get("schema").and_then(mpix_json::Value::as_str),
            Some(certify::CERT_SCHEMA)
        );
        let field0 = json.get("fields").and_then(|f| f.idx(0)).unwrap();
        assert_eq!(
            field0.get("name").and_then(mpix_json::Value::as_str),
            Some("u")
        );
        assert!(field0.get("storage").and_then(|s| s.get("bf16")).is_some());
        assert!(field0.get("wire").and_then(|s| s.get("f16")).is_some());
    }

    #[test]
    fn multi_step_bounds_grow_monotonically() {
        let (ctx, u) = ctx_1d(1);
        let clusters = vec![chain_cluster(u, 2)];
        let bound = |steps| {
            let assume = FpAssumptions::default()
                .with_field(u, 1.0, 2.0)
                .with_steps(steps);
            analyze(&ctx, &clusters, FpConfig::shipped(), &assume).fields[&u].abs
        };
        let (b1, b2, b3) = (bound(1), bound(2), bound(3));
        assert!(b1 > 0.0 && b1.is_finite());
        assert!(b1 < b2 && b2 < b3, "{b1} {b2} {b3}");
    }
}
