//! Pass 3: bytecode verifier.
//!
//! Extends `CompiledCluster::check_stack` (a panicking debug assertion)
//! into a full, non-panicking verifier over the compiled stack program:
//!
//! * **slot validity** — every `Const`/`Scalar`/`Param`/`Temp`/stream/
//!   offset index lands inside its side table, and each load's offset
//!   entry belongs to the same stream the op names (streams may have
//!   different halo widths, hence different strides: a cross-stream
//!   offset entry would resolve against the wrong geometry);
//! * **definite assignment** — no `Temp` read before its `SetTemp`;
//! * **stack discipline** — a shadow walk proves no underflow, balance
//!   at exit, and that the declared `max_stack` is not understated (the
//!   executor sizes its stack from it);
//! * **in-bounds proofs** — for every region box the executor runs
//!   (DOMAIN, CORE, each REMAINDER strip) and every vector width
//!   W ∈ {8, 16, 32}, the vector strips and the scalar remainder stay
//!   inside the padded allocation in every dimension;
//! * **fusion invariance** — `fuse_cluster` must preserve `flop_count`,
//!   all metadata, and bitwise semantics relative to the constant-folded
//!   baseline (folding may legitimately drop flops; fusion on top of it
//!   may not).
//!
//! Soundness caveat: the bounds proof is per-dimension on box extremes
//! (stencil offsets are per-dim constants, so the extreme point is the
//! worst case); it proves no out-of-allocation access, and — stronger —
//! no row wrap-around, since a per-dim violation that stays inside the
//! linear allocation still reads the wrong row.

use mpix_codegen::bytecode::{powi, CoeffSrc};
use mpix_codegen::{CompiledCluster, Op};
use mpix_dmp::regions::{region_box, remainder_boxes, Region};
use mpix_symbolic::Context;
use mpix_trace::Diagnostic;

const PASS: &str = "bytecode";

/// Non-panicking version of `CompiledCluster::check_stack`: returns the
/// maximum depth reached, or the offending op index and a description.
pub fn stack_walk(cc: &CompiledCluster) -> Result<usize, (usize, String)> {
    let mut depth = 0i32;
    let mut max = 0i32;
    for (i, op) in cc.ops.iter().enumerate() {
        let reads = match op {
            Op::MulAdd => 3,
            Op::Add | Op::Mul => 2,
            Op::SetTemp(_) | Op::Store { .. } | Op::Pow(_) | Op::Call(_) => 1,
            Op::LoadMulAdd { .. } => 1,
            _ => 0,
        };
        if depth < reads {
            return Err((
                i,
                format!("stack underflow: {op:?} needs {reads} operand(s), depth is {depth}"),
            ));
        }
        depth += op.stack_effect();
        max = max.max(depth);
    }
    if depth != 0 {
        return Err((
            cc.ops.len(),
            format!("unbalanced stack: program exits at depth {depth}, not 0"),
        ));
    }
    Ok(max as usize)
}

/// Structural verification of one compiled cluster.
pub fn check_compiled(
    ctx: &Context,
    ci: usize,
    cc: &CompiledCluster,
    num_params: usize,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let loc = |detail: String| format!("cluster {ci} / {detail}");

    if cc.streams.len() != cc.written.len() {
        diags.push(Diagnostic::error(
            PASS,
            loc("streams".into()),
            format!(
                "{} streams but {} written flags: the threaded executor partitions \
                 buffers by this table",
                cc.streams.len(),
                cc.written.len()
            ),
        ));
        return diags;
    }

    // Offset table entries must name a valid stream and match its rank.
    for (oi, (slot, deltas)) in cc.offsets.iter().enumerate() {
        if (*slot as usize) >= cc.streams.len() {
            diags.push(Diagnostic::error(
                PASS,
                loc(format!("offset {oi}")),
                format!("offset entry names stream {slot} of {}", cc.streams.len()),
            ));
            continue;
        }
        let nd = ctx.field(cc.streams[*slot as usize].0).shape.len();
        if deltas.len() != nd {
            diags.push(Diagnostic::error(
                PASS,
                loc(format!("offset {oi}")),
                format!(
                    "offset has {} deltas for a {nd}-dimensional field",
                    deltas.len()
                ),
            ));
        }
    }

    let mut assigned = vec![false; cc.num_temps];
    let mut stored = vec![false; cc.streams.len()];
    for (i, op) in cc.ops.iter().enumerate() {
        let oloc = || loc(format!("op {i} ({op:?})"));
        let check_slot = |what: &str, slot: u32, len: usize, diags: &mut Vec<Diagnostic>| {
            if (slot as usize) >= len {
                diags.push(Diagnostic::error(
                    PASS,
                    oloc(),
                    format!("{what} slot {slot} out of bounds (table has {len})"),
                ));
                false
            } else {
                true
            }
        };
        let check_load = |stream: u32, off: u32, diags: &mut Vec<Diagnostic>| {
            let ok_s = (stream as usize) < cc.streams.len();
            if !ok_s {
                diags.push(Diagnostic::error(
                    PASS,
                    oloc(),
                    format!("stream slot {stream} out of bounds ({})", cc.streams.len()),
                ));
            }
            if (off as usize) >= cc.offsets.len() {
                diags.push(Diagnostic::error(
                    PASS,
                    oloc(),
                    format!("offset index {off} out of bounds ({})", cc.offsets.len()),
                ));
            } else if ok_s && cc.offsets[off as usize].0 != stream {
                diags.push(Diagnostic::error(
                    PASS,
                    oloc(),
                    format!(
                        "load on stream {stream} uses offset entry {off} belonging to \
                         stream {}: the linear delta is resolved with that stream's \
                         strides, so differing halo widths make this read the wrong point",
                        cc.offsets[off as usize].0
                    ),
                ));
            }
        };
        let coeff_ok = |c: CoeffSrc, diags: &mut Vec<Diagnostic>| match c {
            CoeffSrc::Const(k) => {
                if (k as usize) >= cc.consts.len() {
                    diags.push(Diagnostic::error(
                        PASS,
                        oloc(),
                        format!(
                            "coefficient const slot {k} out of bounds ({})",
                            cc.consts.len()
                        ),
                    ));
                }
            }
            CoeffSrc::Scalar(k) => {
                if (k as usize) >= cc.scalars.len() {
                    diags.push(Diagnostic::error(
                        PASS,
                        oloc(),
                        format!(
                            "coefficient scalar slot {k} out of bounds ({})",
                            cc.scalars.len()
                        ),
                    ));
                }
            }
            CoeffSrc::Param(k) => {
                if (k as usize) >= num_params {
                    diags.push(Diagnostic::error(
                        PASS,
                        oloc(),
                        format!("coefficient param slot {k} out of bounds ({num_params})"),
                    ));
                }
            }
        };
        match *op {
            Op::Const(k) => {
                check_slot("const", k, cc.consts.len(), &mut diags);
            }
            Op::Scalar(k) => {
                check_slot("scalar", k, cc.scalars.len(), &mut diags);
            }
            Op::Param(k) => {
                check_slot("param", k, num_params, &mut diags);
            }
            Op::Temp(k) => {
                if check_slot("temp", k, cc.num_temps, &mut diags) && !assigned[k as usize] {
                    diags.push(Diagnostic::error(
                        PASS,
                        oloc(),
                        format!(
                            "temp {k} read before assignment: value is stale garbage \
                                 from the previous grid point"
                        ),
                    ));
                }
            }
            Op::SetTemp(k) => {
                if check_slot("temp", k, cc.num_temps, &mut diags) {
                    assigned[k as usize] = true;
                }
            }
            Op::Load { stream, off } => check_load(stream, off, &mut diags),
            Op::LoadMul { coeff, stream, off } | Op::LoadMulAdd { coeff, stream, off } => {
                coeff_ok(coeff, &mut diags);
                check_load(stream, off, &mut diags);
            }
            Op::Store { stream } => {
                if check_slot("stream", stream, cc.streams.len(), &mut diags) {
                    stored[stream as usize] = true;
                }
            }
            Op::Add | Op::Mul | Op::Pow(_) | Op::Call(_) | Op::MulAdd => {}
        }
    }

    match stack_walk(cc) {
        Err((i, why)) => diags.push(Diagnostic::error(PASS, loc(format!("op {i}")), why)),
        Ok(max) => {
            if max > cc.max_stack {
                diags.push(Diagnostic::error(
                    PASS,
                    loc("max_stack".into()),
                    format!(
                        "declared max_stack {} but the program reaches depth {max}: the \
                         executor allocates max(max_stack, 4) slots, so deeper programs \
                         write past the stack",
                        cc.max_stack
                    ),
                ));
            }
        }
    }

    for (s, (&w, &st)) in cc.written.iter().zip(&stored).enumerate() {
        if st && !w {
            diags.push(Diagnostic::error(
                PASS,
                loc(format!("stream {s}")),
                "stream is stored but not marked written: the threaded executor would \
                 bind it as a shared read-only slice"
                    .to_string(),
            ));
        } else if w && !st {
            diags.push(Diagnostic::warning(
                PASS,
                loc(format!("stream {s}")),
                "stream marked written but never stored: it is slab-partitioned for \
                 nothing, restricting reads to the thread's slab"
                    .to_string(),
            ));
        }
    }

    diags
}

/// In-bounds proofs for one compiled cluster on one rank-local geometry.
///
/// `local` is the owned local shape; `radius` the cluster's max stencil
/// radius (defines CORE/REMAINDER). Checks the DOMAIN box (basic and
/// diagonal modes) plus CORE and every REMAINDER strip (full mode), for
/// every vector width: the W-wide strips and the scalar remainder of each
/// row must stay within `[0, local_d + 2*halo_s)` in every dimension.
pub fn check_bounds(
    ctx: &Context,
    ci: usize,
    cc: &CompiledCluster,
    local: &[usize],
    radius: usize,
    vector_widths: &[usize],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let nd = local.len();
    if nd == 0 {
        return diags;
    }
    let mut boxes: Vec<(String, Vec<std::ops::Range<usize>>)> = vec![
        (
            "DOMAIN".to_string(),
            region_box(Region::Domain, local, 0, 0),
        ),
        (
            "CORE".to_string(),
            region_box(Region::Core, local, 0, radius),
        ),
    ];
    for (i, b) in remainder_boxes(local, 0, radius).into_iter().enumerate() {
        boxes.push((format!("REMAINDER[{i}]"), b));
    }

    for (oi, (slot, deltas)) in cc.offsets.iter().enumerate() {
        let s = *slot as usize;
        if s >= cc.streams.len() || deltas.len() != nd {
            continue; // structural pass reports these
        }
        let h = ctx.field(cc.streams[s].0).halo() as i64;
        let padded: Vec<i64> = local.iter().map(|&n| n as i64 + 2 * h).collect();
        for (bname, bx) in &boxes {
            if bx.iter().any(|r| r.is_empty()) {
                continue;
            }
            // Outer dims: extremes of the box decide the worst case.
            for d in 0..nd {
                let lo = bx[d].start as i64 + h + deltas[d] as i64;
                let hi = bx[d].end as i64 - 1 + h + deltas[d] as i64;
                if lo < 0 || hi >= padded[d] {
                    diags.push(out_of_bounds(
                        ci, oi, s, d, bname, "scalar", lo, hi, &padded,
                    ));
                }
            }
            // Innermost dim, per vector width: the strip segment
            // [start, start + full) in W-lane steps, then the scalar
            // remainder [start + full, end).
            let inner = &bx[nd - 1];
            let n = inner.len();
            for &w in vector_widths {
                if w <= 1 {
                    continue;
                }
                let full = n - n % w;
                debug_assert!(full % w == 0 && full <= n);
                let d = nd - 1;
                if full > 0 {
                    let lo = inner.start as i64 + h + deltas[d] as i64;
                    let hi = (inner.start + full) as i64 - 1 + h + deltas[d] as i64;
                    if lo < 0 || hi >= padded[d] {
                        diags.push(out_of_bounds(
                            ci,
                            oi,
                            s,
                            d,
                            bname,
                            &format!("W={w} strips"),
                            lo,
                            hi,
                            &padded,
                        ));
                    }
                }
                if full < n {
                    let lo = (inner.start + full) as i64 + h + deltas[d] as i64;
                    let hi = inner.end as i64 - 1 + h + deltas[d] as i64;
                    if lo < 0 || hi >= padded[d] {
                        diags.push(out_of_bounds(
                            ci,
                            oi,
                            s,
                            d,
                            bname,
                            &format!("W={w} remainder"),
                            lo,
                            hi,
                            &padded,
                        ));
                    }
                }
            }
        }
    }
    diags
}

#[allow(clippy::too_many_arguments)]
fn out_of_bounds(
    ci: usize,
    oi: usize,
    s: usize,
    d: usize,
    bname: &str,
    phase: &str,
    lo: i64,
    hi: i64,
    padded: &[i64],
) -> Diagnostic {
    Diagnostic::error(
        PASS,
        format!("cluster {ci} / offset {oi} / stream {s}"),
        format!(
            "out-of-bounds access in {bname} ({phase}): dimension {d} touches padded \
             indices {lo}..={hi}, allocation is 0..{}; the stencil offset exceeds the \
             halo width (or wraps into an adjacent row)",
            padded[d]
        ),
    )
}

/// Fusion-invariance: `fused` must preserve the constant-folded
/// baseline's flop count, metadata, and (optionally) bitwise semantics.
pub fn check_fusion_invariance(
    ci: usize,
    folded: &CompiledCluster,
    fused: &CompiledCluster,
    check_semantics: bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let loc = format!("cluster {ci} / fusion");

    if fused.flop_count() != folded.flop_count() {
        diags.push(Diagnostic::error(
            PASS,
            loc.clone(),
            format!(
                "fusion changed flop_count from {} to {}: fused ops must be costed at \
                 their full arithmetic weight or the roofline/perf accounting lies",
                folded.flop_count(),
                fused.flop_count()
            ),
        ));
    }
    if fused.streams != folded.streams
        || fused.written != folded.written
        || fused.offsets != folded.offsets
        || fused.num_temps != folded.num_temps
        || fused.scalars != folded.scalars
        || fused.consts.len() != folded.consts.len()
    {
        diags.push(Diagnostic::error(
            PASS,
            loc.clone(),
            "fusion altered cluster metadata (streams/written/offsets/temps/scalars/consts): \
             the peephole pass must only rewrite the op sequence"
                .to_string(),
        ));
        return diags; // geometry differs: the semantic check below would misfire
    }
    if check_semantics {
        for seed in [1u64, 2] {
            if let Some(d) = semantic_spot_check(ci, folded, fused, seed) {
                diags.push(d);
                break;
            }
        }
    }
    diags
}

/// Interpret a compiled program at one point with the executor's exact
/// arithmetic (separate mul/add roundings for the fused ops). Mutates
/// `buffers` on stores (same-point reads of fresh writes must see them)
/// and returns the stored `(stream, value)` sequence. Errors on stack
/// underflow or out-of-bounds access instead of panicking, so the fuzz
/// corpus can feed it corrupted programs.
pub fn eval_program(
    cc: &CompiledCluster,
    buffers: &mut [Vec<f32>],
    bases: &[usize],
    resolved: &[isize],
    scalars: &[f32],
    params: &[f32],
) -> Result<Vec<(u32, f32)>, String> {
    let mut stack: Vec<f32> = Vec::with_capacity(cc.max_stack.max(4));
    let mut temps = vec![0.0f32; cc.num_temps];
    let mut stores = Vec::new();
    let lens: Vec<usize> = buffers.iter().map(Vec::len).collect();
    let idx = move |stream: u32, off: u32| -> Result<(usize, usize), String> {
        let s = stream as usize;
        if s >= lens.len() {
            return Err(format!("stream {s} out of bounds"));
        }
        let r = *resolved
            .get(off as usize)
            .ok_or_else(|| format!("offset {off} out of bounds"))?;
        let i = bases[s] as isize + r;
        if i < 0 || i as usize >= lens[s] {
            return Err(format!("linear index {i} out of bounds for stream {s}"));
        }
        Ok((s, i as usize))
    };
    let coeff = |c: CoeffSrc| -> Result<f32, String> {
        Ok(match c {
            CoeffSrc::Const(k) => *cc
                .consts
                .get(k as usize)
                .ok_or_else(|| format!("const slot {k} out of bounds"))?,
            CoeffSrc::Scalar(k) => *scalars
                .get(k as usize)
                .ok_or_else(|| format!("scalar slot {k} out of bounds"))?,
            CoeffSrc::Param(k) => *params
                .get(k as usize)
                .ok_or_else(|| format!("param slot {k} out of bounds"))?,
        })
    };
    for (i, op) in cc.ops.iter().enumerate() {
        let underflow = |n: usize| format!("op {i} ({op:?}): stack underflow (needs {n})");
        match *op {
            Op::Const(k) => stack.push(coeff(CoeffSrc::Const(k))?),
            Op::Scalar(k) => stack.push(coeff(CoeffSrc::Scalar(k))?),
            Op::Param(k) => stack.push(coeff(CoeffSrc::Param(k))?),
            Op::Temp(k) => stack.push(
                *temps
                    .get(k as usize)
                    .ok_or_else(|| format!("temp slot {k} out of bounds"))?,
            ),
            Op::SetTemp(k) => {
                let v = stack.pop().ok_or_else(|| underflow(1))?;
                *temps
                    .get_mut(k as usize)
                    .ok_or_else(|| format!("temp slot {k} out of bounds"))? = v;
            }
            Op::Load { stream, off } => {
                let (s, i) = idx(stream, off)?;
                stack.push(buffers[s][i]);
            }
            Op::Store { stream } => {
                let v = stack.pop().ok_or_else(|| underflow(1))?;
                let s = stream as usize;
                if s >= buffers.len() {
                    return Err(format!("store stream {s} out of bounds"));
                }
                let b = bases[s];
                if b >= buffers[s].len() {
                    return Err(format!("store base {b} out of bounds for stream {s}"));
                }
                buffers[s][b] = v;
                stores.push((stream, v));
            }
            Op::Add => {
                let y = stack.pop().ok_or_else(|| underflow(2))?;
                let x = stack.pop().ok_or_else(|| underflow(2))?;
                stack.push(x + y);
            }
            Op::Mul => {
                let y = stack.pop().ok_or_else(|| underflow(2))?;
                let x = stack.pop().ok_or_else(|| underflow(2))?;
                stack.push(x * y);
            }
            Op::Pow(n) => {
                let x = stack.pop().ok_or_else(|| underflow(1))?;
                stack.push(powi(x, n));
            }
            Op::Call(f) => {
                let x = stack.pop().ok_or_else(|| underflow(1))?;
                stack.push(f.apply_f32(x));
            }
            Op::MulAdd => {
                let y = stack.pop().ok_or_else(|| underflow(3))?;
                let x = stack.pop().ok_or_else(|| underflow(3))?;
                let acc = stack.last_mut().ok_or_else(|| underflow(3))?;
                *acc += x * y;
            }
            Op::LoadMul {
                coeff: c,
                stream,
                off,
            } => {
                let (s, i) = idx(stream, off)?;
                stack.push(coeff(c)? * buffers[s][i]);
            }
            Op::LoadMulAdd {
                coeff: c,
                stream,
                off,
            } => {
                let (s, i) = idx(stream, off)?;
                let v = coeff(c)? * buffers[s][i];
                let acc = stack.last_mut().ok_or_else(|| underflow(1))?;
                *acc += v;
            }
        }
    }
    if !stack.is_empty() {
        return Err(format!("program left {} values on the stack", stack.len()));
    }
    Ok(stores)
}

/// Run `folded` and `fused` on identical deterministic synthetic data
/// and compare stored values bit for bit.
fn semantic_spot_check(
    ci: usize,
    folded: &CompiledCluster,
    fused: &CompiledCluster,
    seed: u64,
) -> Option<Diagnostic> {
    let nd = folded
        .offsets
        .iter()
        .map(|(_, d)| d.len())
        .max()
        .unwrap_or(1);
    let maxd: Vec<i64> = (0..nd)
        .map(|d| {
            folded
                .offsets
                .iter()
                .filter_map(|(_, ds)| ds.get(d).map(|&x| x.unsigned_abs() as i64))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let padded: Vec<usize> = maxd.iter().map(|&m| 2 * m as usize + 3).collect();
    let mut strides = vec![1usize; nd];
    for d in (0..nd.saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * padded[d + 1];
    }
    let len: usize = padded.iter().product::<usize>().max(1);
    let base: usize = maxd
        .iter()
        .zip(&strides)
        .map(|(&m, &s)| (m as usize + 1) * s)
        .sum();
    let resolved: Vec<isize> = folded
        .offsets
        .iter()
        .map(|(_, ds)| {
            ds.iter()
                .zip(&strides)
                .map(|(&d, &s)| d as isize * s as isize)
                .sum()
        })
        .collect();
    // Deterministic fills: exact multiples of 1/16 so arithmetic differs
    // only if the programs genuinely differ.
    let fill = |s: usize, i: usize| -> f32 {
        (((i * 31 + s * 17 + seed as usize * 7) % 97) as f32) * 0.0625 - 3.0
    };
    let mk = |cc: &CompiledCluster| -> Vec<Vec<f32>> {
        (0..cc.streams.len())
            .map(|s| (0..len).map(|i| fill(s, i)).collect())
            .collect()
    };
    let scalars: Vec<f32> = (0..folded.scalars.len())
        .map(|j| 0.5 + 0.25 * (j as f32 + 1.0))
        .collect();
    let nparams = folded
        .ops
        .iter()
        .filter_map(|op| match op {
            Op::Param(k) => Some(*k as usize + 1),
            Op::LoadMul {
                coeff: CoeffSrc::Param(k),
                ..
            }
            | Op::LoadMulAdd {
                coeff: CoeffSrc::Param(k),
                ..
            } => Some(*k as usize + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let params: Vec<f32> = (0..nparams)
        .map(|k| 0.375 * (k as f32 + 1.0) + 0.5)
        .collect();
    let bases = vec![base; folded.streams.len()];

    let mut buf_a = mk(folded);
    let mut buf_b = mk(fused);
    let a = eval_program(folded, &mut buf_a, &bases, &resolved, &scalars, &params);
    let b = eval_program(fused, &mut buf_b, &bases, &resolved, &scalars, &params);
    let loc = format!("cluster {ci} / fusion");
    match (a, b) {
        (Err(e), _) | (_, Err(e)) => Some(Diagnostic::error(
            PASS,
            loc,
            format!("semantic spot check could not execute: {e}"),
        )),
        (Ok(sa), Ok(sb)) => {
            let same = sa.len() == sb.len()
                && sa
                    .iter()
                    .zip(&sb)
                    .all(|((s1, v1), (s2, v2))| s1 == s2 && v1.to_bits() == v2.to_bits())
                && buf_a
                    .iter()
                    .zip(&buf_b)
                    .all(|(x, y)| x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits()));
            if same {
                None
            } else {
                Some(Diagnostic::error(
                    PASS,
                    loc,
                    format!(
                        "fusion is not bitwise-neutral: folded stores {sa:?} but fused \
                         stores {sb:?} on identical inputs (seed {seed}); fused ops must \
                         round the multiply and add separately"
                    ),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_codegen::bytecode::{compile_cluster, fold_constants, fuse_cluster};
    use mpix_ir::cluster::clusterize;
    use mpix_ir::lowering::lower_equations;
    use mpix_symbolic::{Context, Eq, Grid};

    fn compiled() -> (Context, CompiledCluster) {
        let mut ctx = Context::new();
        let g = Grid::new(&[32, 32], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 4, 2);
        let m = ctx.add_function("m", &g, 4);
        let pde = m.center() * u.dt2() - u.laplace();
        let st = mpix_symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
        let cl = clusterize(&lower_equations(&[st], &ctx).unwrap());
        (ctx, fuse_cluster(compile_cluster(&cl[0])))
    }

    #[test]
    fn clean_cluster_passes_all_checks() {
        let (ctx, cc) = compiled();
        assert!(check_compiled(&ctx, 0, &cc, 8).is_empty());
        assert!(check_bounds(&ctx, 0, &cc, &[12, 12], 2, &[8, 16, 32]).is_empty());
    }

    #[test]
    fn corrupt_stream_slot_is_flagged() {
        let (ctx, mut cc) = compiled();
        for op in &mut cc.ops {
            if let Op::Load { stream, .. } = op {
                *stream = 99;
                break;
            }
        }
        let diags = check_compiled(&ctx, 0, &cc, 8);
        assert!(diags
            .iter()
            .any(|d| d.explanation.contains("out of bounds")));
    }

    #[test]
    fn cross_stream_offset_is_flagged() {
        let (ctx, mut cc) = compiled();
        if cc.streams.len() < 2 {
            return;
        }
        // Point some offset entry at a different stream than its op names.
        let (op_stream, op_off) = cc
            .ops
            .iter()
            .find_map(|op| match op {
                Op::Load { stream, off }
                | Op::LoadMul { stream, off, .. }
                | Op::LoadMulAdd { stream, off, .. } => Some((*stream, *off)),
                _ => None,
            })
            .unwrap();
        cc.offsets[op_off as usize].0 = (op_stream + 1) % cc.streams.len() as u32;
        let diags = check_compiled(&ctx, 0, &cc, 8);
        assert!(
            diags.iter().any(|d| d.explanation.contains("belonging to")),
            "{diags:?}"
        );
    }

    #[test]
    fn inserted_op_breaks_stack_balance() {
        let (ctx, mut cc) = compiled();
        cc.ops.insert(0, Op::Add);
        let diags = check_compiled(&ctx, 0, &cc, 8);
        assert!(diags.iter().any(|d| d.explanation.contains("underflow")));
    }

    #[test]
    fn understated_max_stack_is_flagged() {
        let (ctx, mut cc) = compiled();
        cc.max_stack = 0;
        let diags = check_compiled(&ctx, 0, &cc, 8);
        assert!(diags.iter().any(|d| d.explanation.contains("max_stack")));
    }

    #[test]
    fn delta_beyond_halo_is_out_of_bounds() {
        let (ctx, mut cc) = compiled();
        cc.offsets[0].1[0] = 7; // halo is 2
        let diags = check_bounds(&ctx, 0, &cc, &[12, 12], 2, &[8, 16, 32]);
        assert!(
            diags
                .iter()
                .any(|d| d.explanation.contains("out-of-bounds")),
            "{diags:?}"
        );
    }

    #[test]
    fn fusion_invariance_holds_on_real_cluster() {
        let (_ctx, _) = compiled();
        let mut ctx = Context::new();
        let g = Grid::new(&[32, 32], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 8, 2);
        let eq = Eq::new(u.dt2(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        let cl = clusterize(&lower_equations(&[st], &ctx).unwrap());
        let unfused = compile_cluster(&cl[0]);
        let mut folded = unfused.clone();
        fold_constants(&mut folded);
        let fused = fuse_cluster(unfused);
        assert!(check_fusion_invariance(0, &folded, &fused, true).is_empty());
    }

    #[test]
    fn corrupted_fused_coefficient_fails_semantics() {
        let (_ctx, cc) = compiled();
        let mut folded = cc.clone();
        fold_constants(&mut folded);
        let mut fused = folded.clone();
        // Flip a coefficient in a fused op (or inject a wrong const push).
        let mut mutated = false;
        for op in &mut fused.ops {
            if let Op::LoadMul {
                coeff: CoeffSrc::Const(k),
                ..
            }
            | Op::LoadMulAdd {
                coeff: CoeffSrc::Const(k),
                ..
            } = op
            {
                *k = (*k + 1) % folded.consts.len() as u32;
                mutated = true;
                break;
            }
        }
        if !mutated {
            return; // nothing fused with a const coeff: skip
        }
        let diags = check_fusion_invariance(0, &folded, &fused, true);
        assert!(!diags.is_empty(), "corrupted coefficient must be caught");
    }
}
