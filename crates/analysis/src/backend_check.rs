//! Backend equivalence pass: every selectable execution backend must be
//! *bitwise* interchangeable with the bytecode interpreter at the box
//! boundary — the exact seam `mpix_codegen::ClusterKernel` defines.
//!
//! The oracle is the scalar interpreter (`Backend::Bytecode`, strip
//! width 0): the path `bytecode_check::eval_program` re-implements
//! instruction by instruction and that `tests/vector_equivalence.rs`
//! pins against the generated C semantics. Each backend under test
//! compiles the *same* [`CompiledCluster`] through [`create_lowering`]
//! and runs it over a synthetic geometry with deterministic fills; any
//! store whose bits differ from the oracle's is an error. The sweep also
//! covers the interpreter's own lane-vectorized strips (W ∈ {8, 16,
//! 32}) and the cache-blocked loop order, so one pass discharges "the
//! JIT is the interpreter" and "the interpreter agrees with itself on
//! every execution shape" together.
//!
//! The synthetic geometry deliberately uses an odd innermost extent so
//! the JIT's 8-lane strip loop leaves a live scalar tail, and per-axis
//! distinct extents so a transposed stride bug cannot cancel out.

use mpix_codegen::bytecode::{CoeffSrc, CompiledCluster, Op};
use mpix_codegen::{create_lowering, Backend, Launch};
use mpix_dmp::regions::BoxNd;
use mpix_trace::Diagnostic;

/// Pass name used in diagnostics.
pub const PASS: &str = "backend";

/// A self-contained launch geometry for one cluster: every stream gets
/// the same padded allocation (uniform halo = the cluster's max offset
/// reach), mirroring the single-rank executor layout.
struct Geometry {
    strides: Vec<Vec<usize>>,
    halos: Vec<usize>,
    resolved: Vec<isize>,
    scalars: Vec<f32>,
    params: Vec<f32>,
    /// Initial padded buffer contents, one per stream.
    init: Vec<Vec<f32>>,
    bx: BoxNd,
}

fn build_geometry(cc: &CompiledCluster, num_params: usize) -> Geometry {
    let nd = cc
        .offsets
        .iter()
        .map(|(_, d)| d.len())
        .max()
        .unwrap_or(1)
        .max(1);
    let halo = cc
        .offsets
        .iter()
        .flat_map(|(_, d)| d.iter().map(|x| x.unsigned_abs() as usize))
        .max()
        .unwrap_or(0);
    // Odd innermost extent (scalar tail stays live at W = 8); distinct
    // outer extents (stride transpositions cannot alias).
    let extents: Vec<usize> = (0..nd)
        .map(|d| if d == nd - 1 { 7 } else { 3 + d })
        .collect();
    let padded: Vec<usize> = extents.iter().map(|e| e + 2 * halo).collect();
    let mut stride = vec![0usize; nd];
    stride[nd - 1] = 1;
    for d in (0..nd - 1).rev() {
        stride[d] = stride[d + 1] * padded[d + 1];
    }
    let len: usize = padded.iter().product();

    let resolved: Vec<isize> = cc
        .offsets
        .iter()
        .map(|(_, deltas)| {
            deltas
                .iter()
                .zip(&stride)
                .map(|(&d, &s)| d as isize * s as isize)
                .sum()
        })
        .collect();

    // Deterministic, sign-varying, exactly-representable fills — the
    // same recipe as `bytecode_check`'s fusion spot check.
    let init: Vec<Vec<f32>> = (0..cc.streams.len())
        .map(|s| {
            (0..len)
                .map(|i| (((i * 31 + s * 17 + 7) % 97) as f32) * 0.0625 - 3.0)
                .collect()
        })
        .collect();
    let scalars: Vec<f32> = (0..cc.scalars.len())
        .map(|j| 0.5 + 0.25 * (j + 1) as f32)
        .collect();
    let params: Vec<f32> = (0..num_params)
        .map(|k| 0.375 * (k + 1) as f32 + 0.5)
        .collect();

    Geometry {
        strides: vec![stride; cc.streams.len()],
        halos: vec![halo; cc.streams.len()],
        resolved,
        scalars,
        params,
        init,
        bx: extents.iter().map(|&e| 0..e).collect(),
    }
}

/// True when the program indexes a parameter slot `>= num_params` — the
/// slot-validity pass owns that error; running would index out of
/// bounds, so equivalence is skipped for such (already-flagged) programs.
fn has_invalid_params(cc: &CompiledCluster, num_params: usize) -> bool {
    cc.ops.iter().any(|op| match *op {
        Op::Param(k) => k as usize >= num_params,
        Op::LoadMul { coeff, .. } | Op::LoadMulAdd { coeff, .. } => match coeff {
            CoeffSrc::Param(k) => k as usize >= num_params,
            _ => false,
        },
        _ => false,
    })
}

/// Run `cc` through `backend`'s compiled kernel over the geometry and
/// return the final buffers.
fn run_backend(
    cc: &CompiledCluster,
    geo: &Geometry,
    backend: Backend,
    block: usize,
    vw: usize,
) -> Result<Vec<Vec<f32>>, String> {
    let lowering = create_lowering(backend).map_err(|e| e.to_string())?;
    let kernel = lowering.compile(cc);
    let mut bufs = geo.init.clone();
    let launch = Launch {
        cc,
        strides: &geo.strides,
        halos: &geo.halos,
        resolved: &geo.resolved,
        scalars: &geo.scalars,
        params: &geo.params,
        block,
        vw,
    };
    let mut slices: Vec<&mut [f32]> = bufs.iter_mut().map(|v| v.as_mut_slice()).collect();
    kernel.exec_box(&launch, &geo.bx, &mut slices);
    Ok(bufs)
}

/// Compare one backend run against the oracle buffers, bitwise.
fn compare(
    ci: usize,
    cc: &CompiledCluster,
    oracle: &[Vec<f32>],
    got: &[Vec<f32>],
    what: &str,
    diags: &mut Vec<Diagnostic>,
) {
    for (s, (a, b)) in oracle.iter().zip(got).enumerate() {
        let mismatches = a
            .iter()
            .zip(b)
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
        if mismatches > 0 {
            let (idx, (x, y)) = a
                .iter()
                .zip(b)
                .enumerate()
                .find(|(_, (x, y))| x.to_bits() != y.to_bits())
                .unwrap();
            diags.push(Diagnostic::error(
                PASS,
                format!("cluster {ci} / stream {s} / {what}"),
                format!(
                    "{mismatches} store(s) differ bitwise from the scalar bytecode \
                     oracle (first at linear index {idx}: oracle {x:?} ({:#010x}) vs \
                     backend {y:?} ({:#010x})); backends must be bitwise \
                     interchangeable — written streams: {:?}",
                    x.to_bits(),
                    y.to_bits(),
                    cc.written
                ),
            ));
        }
    }
}

/// Prove every backend in `backends` produces stores bitwise identical
/// to the scalar bytecode interpreter on this cluster. For the
/// interpreter itself the sweep covers the vectorized strip widths and
/// cache blocking (self-consistency across execution shapes); native
/// backends are additionally run blocked, since the JIT sees tile-sized
/// boxes through the same entry point.
pub fn check_backend_equivalence(
    ci: usize,
    cc: &CompiledCluster,
    num_params: usize,
    backends: &[Backend],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if cc.ops.is_empty() || cc.streams.is_empty() || !cc.written.iter().any(|&w| w) {
        return diags; // nothing stored → nothing to compare
    }
    if has_invalid_params(cc, num_params) {
        return diags; // bytecode_check flags this; running would be UB
    }
    let geo = build_geometry(cc, num_params);
    let oracle = match run_backend(cc, &geo, Backend::Bytecode, 0, 0) {
        Ok(b) => b,
        Err(e) => {
            diags.push(Diagnostic::error(
                PASS,
                format!("cluster {ci}"),
                format!("bytecode oracle failed to run: {e}"),
            ));
            return diags;
        }
    };

    for &backend in backends {
        // (block, vw) shapes per backend: the interpreter sweeps its
        // strip widths; other backends ignore vw, so sweep blocking.
        let shapes: &[(usize, usize)] = if backend == Backend::Bytecode {
            &[(0, 8), (0, 16), (0, 32), (2, 8)]
        } else {
            &[(0, 0), (2, 0)]
        };
        for &(block, vw) in shapes {
            match run_backend(cc, &geo, backend, block, vw) {
                Ok(got) => {
                    let what = format!("backend {backend} (block={block}, vw={vw})");
                    compare(ci, cc, &oracle, &got, &what, &mut diags);
                }
                Err(e) => {
                    diags.push(Diagnostic::warning(
                        PASS,
                        format!("cluster {ci}"),
                        format!("backend {backend} unavailable, equivalence not checked: {e}"),
                    ));
                    break;
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_codegen::available_backends;
    use mpix_codegen::bytecode::{compile_cluster, fuse_cluster};
    use mpix_ir::cluster::clusterize;
    use mpix_ir::lowering::lower_equations;
    use mpix_symbolic::{Context, Eq, Grid};

    fn star_cluster() -> CompiledCluster {
        let mut ctx = Context::new();
        let g = Grid::new(&[12, 12, 12], &[1.0, 1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 4, 2);
        let eq = Eq::new(u.dt(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        let cl = clusterize(&lower_equations(&[st], &ctx).unwrap());
        fuse_cluster(compile_cluster(&cl[0]))
    }

    #[test]
    fn every_available_backend_matches_the_oracle() {
        let cc = star_cluster();
        let diags = check_backend_equivalence(0, &cc, 0, &available_backends());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn corrupted_program_is_caught_when_backends_diverge() {
        // Self-check of the comparator: perturb the oracle manually and
        // make sure `compare` reports a bitwise mismatch.
        let cc = star_cluster();
        let geo = build_geometry(&cc, 0);
        let oracle = run_backend(&cc, &geo, Backend::Bytecode, 0, 0).unwrap();
        let mut got = oracle.clone();
        let s = cc.written.iter().position(|&w| w).unwrap();
        let mid = got[s].len() / 2;
        got[s][mid] += 1.0;
        let mut diags = Vec::new();
        compare(0, &cc, &oracle, &got, "perturbed", &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].explanation.contains("differ bitwise"), "{diags:?}");
    }

    #[test]
    fn geometry_has_unit_innermost_stride_and_odd_extent() {
        let cc = star_cluster();
        let geo = build_geometry(&cc, 0);
        for s in &geo.strides {
            assert_eq!(*s.last().unwrap(), 1);
        }
        assert_eq!(geo.bx.last().unwrap().len() % 2, 1, "tail must stay live");
        // Offsets resolve symmetrically: the star has matched ± taps.
        assert!(geo.resolved.iter().any(|&r| r > 0));
        assert!(geo.resolved.iter().any(|&r| r < 0));
    }
}
