//! # mpix-analysis
//!
//! Compiler self-verification passes (ISSUE 4): turn the compiler's own
//! artifacts — Cluster accesses, the [`mpix_ir::halo::HaloPlan`], the
//! [`mpix_codegen::CompiledCluster`] bytecode, and the per-mode comm
//! schedules built by `mpix-dmp` — into checkable proof obligations, the
//! staged-IR-invariant discipline of the Devito architecture paper
//! (arXiv:1807.03032).
//!
//! Five passes, each emitting structured [`Diagnostic`] values:
//!
//! * [`halo_coverage`] — proves every off-rank stencil read is covered by
//!   an exchange in the plan (under-coverage → wrong numerics at rank
//!   boundaries), and flags exchanges the drop/merge pass should have
//!   removed (over-coverage → wasted bandwidth).
//! * [`comm_schedule`] — builds the *real* per-rank exchange plans on a
//!   P-rank topology and symbolically matches sends against posted
//!   receives: every send must have exactly one matching receive with a
//!   unique `(src, tag)` per rank (mismatch → deadlock or cross-matched
//!   messages), receive boxes must tile exactly the reachable halo
//!   annulus, and sent data must be owned or already received (the
//!   *basic* mode's corner-propagation provenance proof).
//! * [`bytecode_check`] — extends `CompiledCluster::check_stack` into a
//!   full verifier: slot validity, temp definite-assignment, a
//!   non-panicking stack walk, in-bounds access proofs for every region
//!   box at all vector widths W ∈ {8, 16, 32} including the scalar
//!   remainder, and fusion-invariance of `flop_count` and semantics.
//! * [`thread_safety`] — proves the threaded executor's slab partition
//!   writes each output point from exactly one thread, and lints loads
//!   that would escape a written stream's slab.
//! * [`backend_check`] — the multi-backend equivalence gate: every
//!   selectable backend (the native JIT in particular) must produce
//!   stores bitwise identical to the scalar bytecode oracle over a
//!   synthetic geometry, across strip widths and cache blocking.
//!
//! The passes are pure functions over artifacts, so the mutation corpus
//! in `tests/compiler_fuzz.rs` can corrupt an artifact and assert the
//! right pass flags it. [`verify_operator`] is the aggregate entry point
//! used by `Operator::run` (behind `ApplyOptions::verify` /
//! `MPIX_VERIFY=1`) and the `mpix-verify` binary.

use std::fmt;

use mpix_codegen::bytecode::{compile_cluster, fold_constants, fuse_cluster};
use mpix_codegen::{available_backends, Backend};
use mpix_comm::dims_create;
use mpix_dmp::halo::HaloMode;
use mpix_dmp::Decomposition;
use mpix_ir::cluster::Cluster;
use mpix_ir::halo::HaloPlan;
use mpix_json::{json, Value};
use mpix_symbolic::{Context, Grid};
use mpix_trace::{Diagnostic, Severity};

pub mod backend_check;
pub mod bytecode_check;
pub mod comm_schedule;
pub mod fp;
pub mod halo_coverage;
pub mod lint;
pub mod thread_safety;

pub use lint::{LintConfig, LintLevel};

/// Which configurations the passes sweep. The `Operator::run` gate
/// verifies only the actual run configuration ([`AnalysisConfig::for_run`]);
/// the `mpix-verify` binary sweeps the full matrix ([`Default`]).
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Halo-exchange modes to check comm schedules for.
    pub modes: Vec<HaloMode>,
    /// Rank counts: each is factored into a Cartesian topology with
    /// `dims_create` and verified end to end.
    pub ranks: Vec<usize>,
    /// Thread counts for the slab write-disjointness proofs.
    pub threads: Vec<usize>,
    /// Vector widths for the strip in-bounds proofs.
    pub vector_widths: Vec<usize>,
    /// Backends for the bitwise equivalence gate (each is compared
    /// against the scalar bytecode oracle; see [`backend_check`]).
    pub backends: Vec<Backend>,
    /// Whether to run the bitwise fusion-semantics spot check (cheap,
    /// but disableable for pure structural runs).
    pub check_fused_semantics: bool,
    /// Lint levels for the `mpix-analysis::lint` passes; `None` skips
    /// linting entirely (the heavyweight passes still run).
    pub lint: Option<LintConfig>,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            modes: vec![HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full],
            ranks: vec![4],
            threads: vec![2, 3, 4],
            vector_widths: vec![8, 16, 32],
            backends: available_backends(),
            check_fused_semantics: true,
            lint: Some(LintConfig::from_env()),
        }
    }
}

impl AnalysisConfig {
    /// The minimal configuration covering exactly one run: used by the
    /// `Operator::run` verify gate so debug-build overhead stays bounded.
    pub fn for_run(
        mode: HaloMode,
        ranks: usize,
        threads: usize,
        vector_width: usize,
        backend: Backend,
    ) -> AnalysisConfig {
        AnalysisConfig {
            modes: vec![mode],
            ranks: vec![ranks.max(1)],
            threads: if threads > 1 { vec![threads] } else { vec![] },
            vector_widths: if vector_width > 1 {
                vec![vector_width]
            } else {
                vec![8, 16, 32]
            },
            backends: vec![backend],
            check_fused_semantics: true,
            lint: Some(LintConfig::from_env()),
        }
    }
}

/// The aggregate result of a verification run.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Worst severity present, or `None` when the report is clean.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    pub fn has_errors(&self) -> bool {
        self.max_severity() >= Some(Severity::Error)
    }

    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    pub fn to_json(&self) -> Value {
        json!({
            "diagnostics": Value::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            "errors": self.count(Severity::Error) as f64,
            "warnings": self.count(Severity::Warning) as f64,
        })
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "verification clean: all proof obligations discharged");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        writeln!(
            f,
            "{} error(s), {} warning(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning)
        )
    }
}

/// Human-readable IR location for one `(field, time offset)` buffer.
pub(crate) fn buf_name(ctx: &Context, f: mpix_symbolic::FieldId, toff: i32) -> String {
    format!("{}[t{toff:+}]", ctx.field(f).name)
}

/// Run all four passes over one operator's artifacts.
///
/// `clusters` and `plan` are the compiler outputs the operator was built
/// from; the compiled bytecode is rebuilt here through the same
/// `compile_cluster`/`fuse_cluster` path the executor uses, so what is
/// verified is what runs.
pub fn verify_operator(
    ctx: &Context,
    grid: &Grid,
    clusters: &[Cluster],
    plan: &HaloPlan,
    cfg: &AnalysisConfig,
) -> AnalysisReport {
    let mut diags = Vec::new();
    let nd = grid.shape.len();

    // Pass 0: the lint family — cheapest, runs before any backend work,
    // so a broken artifact fails fast with a stable MPX code.
    if let Some(lc) = &cfg.lint {
        diags.extend(lint::lint_operator(
            ctx, clusters, plan, &cfg.modes, None, lc,
        ));
    }

    // Pass 1: halo coverage (pure, cheap).
    diags.extend(halo_coverage::check_halo_coverage(ctx, clusters, plan));

    // Precomputed-parameter slots are global across the operator.
    let num_params = clusters
        .iter()
        .flat_map(|c| c.params.iter().map(|(i, _)| i + 1))
        .max()
        .unwrap_or(0);

    // The distinct per-rank local shapes each configured topology yields.
    let mut geometries: Vec<(Vec<usize>, Vec<usize>)> = Vec::new(); // (dims, local)
    for &p in &cfg.ranks {
        let dims = dims_create(p.max(1), nd);
        let decomp = Decomposition::new(&grid.shape, &dims);
        for r in 0..p.max(1) {
            let coords = mpix_comm::CartComm::coords_of(&dims, r);
            let local = decomp.local_shape(&coords);
            if !geometries.iter().any(|(_, l)| *l == local) {
                geometries.push((dims.clone(), local));
            }
        }
    }

    // Passes 3 + 4: bytecode and thread-safety, per cluster.
    for (ci, cl) in clusters.iter().enumerate() {
        let unfused = compile_cluster(cl);
        let mut folded = unfused.clone();
        fold_constants(&mut folded);
        let fused = fuse_cluster(unfused);
        let radius = cl.max_radius(nd).into_iter().max().unwrap_or(0);

        diags.extend(bytecode_check::check_compiled(ctx, ci, &fused, num_params));
        diags.extend(bytecode_check::check_fusion_invariance(
            ci,
            &folded,
            &fused,
            cfg.check_fused_semantics,
        ));
        diags.extend(thread_safety::check_written_offsets(ctx, ci, &fused));
        diags.extend(backend_check::check_backend_equivalence(
            ci,
            &fused,
            num_params,
            &cfg.backends,
        ));

        for (_, local) in &geometries {
            diags.extend(bytecode_check::check_bounds(
                ctx,
                ci,
                &fused,
                local,
                radius,
                &cfg.vector_widths,
            ));
            diags.extend(thread_safety::check_cluster_slabs(
                ctx,
                ci,
                &fused,
                local,
                radius,
                &cfg.threads,
            ));
        }
    }

    // Pass 2: comm schedules, per mode × topology × exchange key.
    let keys = comm_schedule::exchange_keys(plan);
    diags.extend(comm_schedule::check_tag_windows(ctx, &keys, nd));
    for &mode in &cfg.modes {
        for &p in &cfg.ranks {
            if p < 2 {
                continue; // single rank: no messages, nothing to match
            }
            let dims = dims_create(p, nd);
            for &(f, toff, radius) in &keys {
                if radius == 0 {
                    continue;
                }
                let halo = ctx.field(f).halo() as usize;
                let location = format!(
                    "{} / {:?} on {} ranks {:?}",
                    buf_name(ctx, f, toff),
                    mode,
                    p,
                    dims
                );
                if grid.shape.iter().zip(&dims).any(|(&n, &d)| n / d < radius) {
                    diags.push(Diagnostic::error(
                        "comm-schedule",
                        location,
                        format!(
                            "decomposition too fine: some rank owns fewer than radius {radius} \
                             points per dimension, so exchange boxes would read unexchanged halo"
                        ),
                    ));
                    continue;
                }
                let plans =
                    comm_schedule::collect_schedules(&grid.shape, &dims, halo, mode, radius);
                let sctx = comm_schedule::ScheduleCtx {
                    global: grid.shape.clone(),
                    dims: dims.clone(),
                    halo,
                    radius,
                };
                diags.extend(comm_schedule::match_schedule(&plans, &sctx, &location));
            }
        }
    }

    // Deterministic output: the passes above iterate maps, geometry sets
    // and topology sweeps whose visit order is an implementation detail,
    // and overlapping sweeps can restate the same finding. A stable sort
    // by (code, pass, location, severity, explanation) plus dedup makes
    // `verify_operator` a pure function of the artifacts — baselines and
    // golden tests can diff its output textually.
    diags.sort_by(|a, b| {
        (&a.code, &a.pass, &a.location, a.severity, &a.explanation).cmp(&(
            &b.code,
            &b.pass,
            &b.location,
            b.severity,
            &b.explanation,
        ))
    });
    diags.dedup();

    AnalysisReport { diagnostics: diags }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_ir::cluster::clusterize;
    use mpix_ir::halo::detect_halo_exchanges;
    use mpix_ir::lowering::lower_equations;
    fn acoustic_artifacts() -> (Context, Grid, Vec<Cluster>, HaloPlan) {
        let mut ctx = Context::new();
        let g = Grid::new(&[24, 24], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 4, 2);
        let m = ctx.add_function("m", &g, 4);
        let pde = m.center() * u.dt2() - u.laplace();
        let st = mpix_symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
        let cl = clusterize(&lower_equations(&[st], &ctx).unwrap());
        let plan = detect_halo_exchanges(&cl, &ctx);
        (ctx, g, cl, plan)
    }

    #[test]
    fn clean_operator_verifies_clean() {
        let (ctx, g, cl, plan) = acoustic_artifacts();
        let report = verify_operator(&ctx, &g, &cl, &plan, &AnalysisConfig::default());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn report_severity_and_json() {
        let mut report = AnalysisReport::default();
        assert!(report.is_clean() && !report.has_errors());
        report
            .diagnostics
            .push(Diagnostic::warning("bytecode", "cluster 0", "w"));
        assert_eq!(report.max_severity(), Some(Severity::Warning));
        report
            .diagnostics
            .push(Diagnostic::error("halo-coverage", "cluster 1", "e"));
        assert!(report.has_errors());
        let j = report.to_json();
        assert_eq!(j.get("errors").and_then(Value::as_f64), Some(1.0));
        let s = format!("{report}");
        assert!(s.contains("1 error(s), 1 warning(s)"), "{s}");
    }

    #[test]
    fn shrunk_exchange_radius_is_flagged() {
        let (ctx, g, cl, mut plan) = acoustic_artifacts();
        plan.per_cluster[0][0].radius = vec![1, 1]; // stencil needs [2, 2]
        let report = verify_operator(&ctx, &g, &cl, &plan, &AnalysisConfig::default());
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.pass == "halo-coverage" && d.severity == Severity::Error),
            "{report}"
        );
    }
}
