//! End-to-end operator tests: compile-and-run correctness, serial vs
//! distributed equivalence for every MPI mode, Listing 2 reproduction,
//! and sparse source/receiver integration.

use mpix_core::prelude::*;
use mpix_symbolic as sym;

/// Listing 1: the 2-D heat diffusion operator.
fn diffusion_op(nx: usize, ny: usize, so: u32) -> Operator {
    let mut ctx = Context::new();
    let grid = Grid::new(&[nx, ny], &[2.0, 2.0]);
    let u = ctx.add_time_function("u", &grid, so, 1);
    let eq = Eq::new(u.dt(), u.laplace());
    let stencil = eq.solve_for(&u.forward(), &ctx).unwrap();
    Operator::build(ctx, grid, vec![stencil]).unwrap()
}

#[test]
fn listing2_distributed_views_match_paper() {
    // 4x4 grid, 4 ranks, u.data[1:-1, 1:-1] = 1 (paper Listings 1-2).
    let op = diffusion_op(4, 4, 2);
    let views = op.run(
        &ApplyOptions::default()
            .with_nt(0)
            .with_ranks(4)
            .with_topology(&[2, 2]),
        |ws| {
            ws.field_data_mut("u", 0)
                .fill_global_slice(&[1..3, 1..3], 1.0);
        },
        |ws| ws.field_data("u", 0).local_view_string(),
    );
    let views = views.results;
    assert_eq!(views[0], "[[0.00 0.00]\n [0.00 1.00]]");
    assert_eq!(views[1], "[[0.00 0.00]\n [1.00 0.00]]");
    assert_eq!(views[2], "[[0.00 1.00]\n [0.00 0.00]]");
    assert_eq!(views[3], "[[1.00 0.00]\n [0.00 0.00]]");
}

#[test]
fn one_step_diffusion_matches_hand_computation() {
    // u1 = u0 + dt * laplace(u0), 4x4 grid, dt chosen as in Listing 1.
    let (nx, ny) = (4, 4);
    let op = diffusion_op(nx, ny, 2);
    let dx: f64 = 2.0 / 3.0;
    let dt = 0.25 * dx * dx / 0.5;
    let got = op
        .run(
            &ApplyOptions::default().with_nt(1).with_dt(dt),
            |ws| {
                ws.field_data_mut("u", 0)
                    .fill_global_slice(&[1..3, 1..3], 1.0);
            },
            |ws| ws.gather("u"),
        )
        .results
        .remove(0);
    // Serial reference.
    let mut u0 = vec![0.0f64; nx * ny];
    for i in 1..3 {
        for j in 1..3 {
            u0[i * ny + j] = 1.0;
        }
    }
    let at = |u: &Vec<f64>, i: i64, j: i64| -> f64 {
        if i < 0 || j < 0 || i >= nx as i64 || j >= ny as i64 {
            0.0
        } else {
            u[(i as usize) * ny + j as usize]
        }
    };
    for i in 0..nx as i64 {
        for j in 0..ny as i64 {
            let lap = (at(&u0, i - 1, j) + at(&u0, i + 1, j) - 2.0 * at(&u0, i, j)) / (dx * dx)
                + (at(&u0, i, j - 1) + at(&u0, i, j + 1) - 2.0 * at(&u0, i, j)) / (dx * dx);
            let want = at(&u0, i, j) + dt * lap;
            let g = got[(i as usize) * ny + j as usize] as f64;
            assert!((g - want).abs() < 1e-5, "({i},{j}): got {g}, want {want}");
        }
    }
}

#[test]
fn distributed_equals_serial_for_every_mode() {
    let op = diffusion_op(12, 10, 4);
    let opts = ApplyOptions::default().with_nt(5).with_dt(0.05);
    let init = |ws: &mut Workspace| {
        // Deterministic non-trivial initial data, set via global indexing.
        for i in 0..12 {
            for j in 0..10 {
                let v = ((i * 31 + j * 17) % 7) as f32 * 0.125;
                ws.field_data_mut("u", 0).set_global(&[i, j], v);
            }
        }
    };
    let serial = op.run(&opts, init, |ws| ws.gather("u")).results.remove(0);
    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        for nranks in [2, 4, 6] {
            let opts = opts.clone().with_mode(mode).with_ranks(nranks);
            let out = op.run(&opts, init, |ws| ws.gather("u")).results;
            for (r, got) in out.iter().enumerate() {
                for (k, (a, b)) in got.iter().zip(&serial).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                        "{mode:?} ranks={nranks} rank{r} idx{k}: {a} vs {b}"
                    );
                }
            }
        }
    }
}

#[test]
fn custom_topology_matches_default() {
    let op = diffusion_op(16, 8, 4);
    let opts = ApplyOptions::default().with_nt(3).with_dt(0.03);
    let init = |ws: &mut Workspace| {
        ws.field_data_mut("u", 0)
            .fill_global_slice(&[4..12, 2..6], 1.0);
    };
    let run_topo = |dims: &[usize]| {
        op.run(
            &opts.clone().with_ranks(4).with_topology(dims),
            init,
            |ws| ws.gather("u"),
        )
        .results
    };
    let a = run_topo(&[4, 1]);
    let b = run_topo(&[1, 4]);
    let c = run_topo(&[2, 2]);
    for ((x, y), z) in a[0].iter().zip(&b[0]).zip(&c[0]) {
        assert!((x - y).abs() < 1e-5 && (y - z).abs() < 1e-5);
    }
}

#[test]
fn threads_and_blocking_do_not_change_results() {
    let op = diffusion_op(20, 20, 4);
    let base = ApplyOptions::default().with_nt(4).with_dt(0.02);
    let init = |ws: &mut Workspace| {
        ws.field_data_mut("u", 0)
            .fill_global_slice(&[5..15, 5..15], 2.0);
    };
    let run_one = |o: &ApplyOptions| op.run(o, init, |ws| ws.gather("u")).results.remove(0);
    let reference = run_one(&base);
    let blocked = run_one(&base.clone().with_block(4));
    let threaded = run_one(&base.clone().with_threads(3));
    let both = run_one(&base.clone().with_block(4).with_threads(2));
    for (((a, b), c), d) in reference.iter().zip(&blocked).zip(&threaded).zip(&both) {
        assert_eq!(a, b, "blocking changed results");
        assert_eq!(a, c, "threading changed results");
        assert_eq!(a, d, "blocking+threading changed results");
    }
}

#[test]
fn second_order_wave_equation_runs_and_spreads() {
    // m * u.dt2 = laplace(u): energy must propagate outward from the
    // initial bump and the scheme stays finite under a stable dt.
    let mut ctx = Context::new();
    let grid = Grid::new(&[32, 32], &[1.0, 1.0]);
    let u = ctx.add_time_function("u", &grid, 4, 2);
    let m = ctx.add_function("m", &grid, 4);
    let pde = m.center() * u.dt2() - u.laplace();
    let stencil = sym::solve(&pde, &u.forward(), &ctx).unwrap();
    let op = Operator::build(ctx, grid, vec![stencil]).unwrap();
    let opts = ApplyOptions::default().with_nt(20).with_dt(0.01);
    let out = op.run(
        &opts.clone().with_ranks(4),
        |ws| {
            ws.field_data_mut("m", 0)
                .fill_global_slice(&[0..32, 0..32], 1.0);
            ws.field_data_mut("u", 0).set_global(&[16, 16], 1.0);
            ws.field_data_mut("u", -1).set_global(&[16, 16], 1.0);
        },
        |ws| ws.gather("u"),
    );
    let g = &out.results[0];
    assert!(g.iter().all(|v| v.is_finite()), "blow-up");
    // Wave must have reached at least radius 5.
    let far = g[(16 + 5) * 32 + 16].abs();
    assert!(far > 0.0, "no propagation: {far}");
    // Serial equivalence for the wave operator too.
    let serial = op
        .run(
            &opts,
            |ws| {
                ws.field_data_mut("m", 0)
                    .fill_global_slice(&[0..32, 0..32], 1.0);
                ws.field_data_mut("u", 0).set_global(&[16, 16], 1.0);
                ws.field_data_mut("u", -1).set_global(&[16, 16], 1.0);
            },
            |ws| ws.gather("u"),
        )
        .results
        .remove(0);
    for (a, b) in g.iter().zip(&serial) {
        assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0), "{a} vs {b}");
    }
}

#[test]
fn source_injection_and_receivers_work_distributed() {
    let mut ctx = Context::new();
    let grid = Grid::new(&[24, 24], &[1.0, 1.0]);
    let u = ctx.add_time_function("u", &grid, 4, 2);
    let m = ctx.add_function("m", &grid, 4);
    let pde = m.center() * u.dt2() - u.laplace();
    let stencil = sym::solve(&pde, &u.forward(), &ctx).unwrap();
    let op = Operator::build(ctx, grid, vec![stencil]).unwrap();
    let nt = 12;
    let opts = ApplyOptions::default().with_nt(nt).with_dt(0.01);
    let spacing = vec![op.grid().spacing(0), op.grid().spacing(1)];
    let sp = spacing.clone();
    let out = op.run(
        &opts.clone().with_ranks(4),
        move |ws| {
            ws.field_data_mut("m", 0)
                .fill_global_slice(&[0..24, 0..24], 1.0);
            // Off-grid source near the middle, shared rank boundary.
            let src = SparsePoints::new(vec![vec![0.5, 0.5]], sp.clone());
            ws.add_injection("u", src, vec![1.0; nt as usize], vec![1.0]);
            let rec = SparsePoints::new(vec![vec![0.52, 0.48]], sp.clone());
            ws.add_receivers("u", rec);
        },
        |ws| {
            let gathered = ws.gather("u");
            let samples = ws.take_samples(1);
            (gathered, samples)
        },
    );
    let out = out.results;
    let (g, _) = &out[0];
    let total: f32 = g.iter().map(|v| v.abs()).sum();
    assert!(total > 0.0, "injection had no effect");
    // Receiver rows: one per step; exactly one rank holds each value.
    let mut per_step_values = vec![0usize; nt as usize];
    for (_, samples) in &out {
        assert_eq!(samples.len(), nt as usize);
        for (t, row) in samples.iter().enumerate() {
            if !row[0].is_nan() {
                per_step_values[t] += 1;
            }
        }
    }
    assert!(
        per_step_values.iter().all(|&n| n == 1),
        "{per_step_values:?}"
    );
    // Later samples must be nonzero (wave arrives at the receiver).
    let mut any_nonzero = false;
    for (_, samples) in &out {
        if let Some(last) = samples.last() {
            if !last[0].is_nan() && last[0] != 0.0 {
                any_nonzero = true;
            }
        }
    }
    assert!(any_nonzero, "receiver never heard the source");
}

#[test]
fn compiler_artifacts_are_printable() {
    let op = diffusion_op(4, 4, 2);
    let sched = op.schedule_tree();
    assert!(sched.contains("<Halo(u[t+0])>"), "{sched}");
    let iet = op.iet_string();
    assert!(iet.contains("HaloSpot"), "{iet}");
    let c = op.c_code_for(&ApplyOptions::default().with_mode(HaloMode::Basic));
    assert!(c.contains("u[t1][x + 2][y + 2]"), "{c}");
    let counts = op.op_counts();
    assert!(counts.flops() > 0);
    assert!(counts.oi() > 0.0);
}

#[test]
fn empty_operator_rejected() {
    let ctx = Context::new();
    let grid = Grid::new(&[4, 4], &[1.0, 1.0]);
    assert!(Operator::build(ctx, grid, vec![]).is_err());
}
