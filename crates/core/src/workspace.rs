//! Per-rank runtime state: field buffers, sparse operations, topology.

use std::sync::Arc;

use mpix_codegen::executor::{ExecStats, FieldState, SparseOp};
use mpix_comm::CartComm;
use mpix_dmp::{Decomposition, DistArray, SparsePoints};
use mpix_symbolic::{Context, FieldId, Grid};

/// Everything one rank needs to run an operator: the Cartesian
/// communicator, distributed field buffers, and sparse (source/receiver)
/// operations.
pub struct Workspace {
    pub cart: CartComm,
    pub decomp: Arc<Decomposition>,
    pub fields: Vec<FieldState>,
    pub sparse: Vec<SparseOp>,
    /// Field names, aligned with `fields` (for name-based access).
    names: Vec<String>,
    /// Time-buffer counts, aligned with `fields`.
    nbuffers: Vec<usize>,
    /// Stats of the last `apply` on this workspace.
    pub last_stats: Option<ExecStats>,
    /// The time index after the last `apply` (for final-buffer lookup).
    pub final_t: i64,
}

impl Workspace {
    /// Allocate zeroed buffers for every field in the context, using the
    /// communicator's Cartesian topology for decomposition.
    pub fn new(ctx: &Context, grid: &Grid, cart: CartComm) -> Workspace {
        let decomp = Arc::new(Decomposition::new(&grid.shape, cart.dims()));
        let coords = cart.coords().to_vec();
        let mut fields = Vec::with_capacity(ctx.fields().len());
        let mut names = Vec::with_capacity(ctx.fields().len());
        let mut nbuffers = Vec::with_capacity(ctx.fields().len());
        for f in ctx.fields() {
            fields.push(FieldState::new(
                f.id,
                f.time_buffers(),
                Arc::clone(&decomp),
                &coords,
                f.halo() as usize,
            ));
            names.push(f.name.clone());
            nbuffers.push(f.time_buffers());
        }
        Workspace {
            cart,
            decomp,
            fields,
            sparse: Vec::new(),
            names,
            nbuffers,
            last_stats: None,
            final_t: 0,
        }
    }

    fn field_index(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("unknown field {name:?}"))
    }

    /// Id of a field by name.
    pub fn field_id(&self, name: &str) -> FieldId {
        self.fields[self.field_index(name)].field
    }

    /// Mutable access to a named field's buffer holding time level
    /// `time` (absolute step index; use 0 to seed initial conditions,
    /// -1 for the "previous" level of second-order-in-time fields).
    pub fn field_data_mut(&mut self, name: &str, time: i64) -> &mut DistArray {
        let i = self.field_index(name);
        let nb = self.nbuffers[i] as i64;
        let b = ((time % nb + nb) % nb) as usize;
        &mut self.fields[i].buffers[b]
    }

    /// Immutable access at a time level.
    pub fn field_data(&self, name: &str, time: i64) -> &DistArray {
        let i = self.field_index(name);
        let nb = self.nbuffers[i] as i64;
        let b = ((time % nb + nb) % nb) as usize;
        &self.fields[i].buffers[b]
    }

    /// The buffer holding the *final* state after the last `apply`
    /// (`u.data` in Devito terms).
    pub fn field_final(&self, name: &str) -> &DistArray {
        self.field_data(name, self.final_t)
    }

    /// Gather a field's final global array onto every rank.
    pub fn gather(&self, name: &str) -> Vec<f32> {
        self.field_final(name).gather_global(self.cart.comm())
    }

    /// Gather a field at an explicit time level.
    pub fn gather_at(&self, name: &str, time: i64) -> Vec<f32> {
        self.field_data(name, time).gather_global(self.cart.comm())
    }

    /// Register a source injection executed after each time step: adds
    /// `signal[t] * scale[p]` into `field`'s `t+1` buffer around every
    /// point.
    pub fn add_injection(
        &mut self,
        field_name: &str,
        points: SparsePoints,
        signal: Vec<f32>,
        scale: Vec<f32>,
    ) {
        let field = self.field_id(field_name);
        self.sparse.push(SparseOp::Inject {
            field,
            time_offset: 1,
            points,
            signal,
            scale,
        });
    }

    /// Register a per-point-trace injection (the adjoint-source pattern):
    /// point `p` injects `traces[p][t] * scale[p]` at step `t`.
    pub fn add_injection_traces(
        &mut self,
        field_name: &str,
        points: SparsePoints,
        traces: Vec<Vec<f32>>,
        scale: Vec<f32>,
    ) {
        assert_eq!(traces.len(), points.len(), "one trace per point");
        let field = self.field_id(field_name);
        self.sparse.push(SparseOp::InjectTraces {
            field,
            time_offset: 1,
            points,
            traces,
            scale,
        });
    }

    /// Register receivers sampled after each time step from `field`'s
    /// freshly-written `t+1` buffer. Results are readable afterwards via
    /// [`Workspace::take_samples`].
    pub fn add_receivers(&mut self, field_name: &str, points: SparsePoints) -> usize {
        let field = self.field_id(field_name);
        self.sparse.push(SparseOp::Sample {
            field,
            time_offset: 1,
            points,
            samples: Vec::new(),
        });
        self.sparse.len() - 1
    }

    /// Extract recorded receiver samples (`samples[t][p]`, NaN on ranks
    /// that do not own point `p`).
    pub fn take_samples(&mut self, handle: usize) -> Vec<Vec<f32>> {
        match &mut self.sparse[handle] {
            SparseOp::Sample { samples, .. } => std::mem::take(samples),
            _ => panic!("handle {handle} is not a receiver"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_comm::Universe;

    fn ctx_and_grid() -> (Context, Grid) {
        let mut ctx = Context::new();
        let grid = Grid::new(&[8, 8], &[1.0, 1.0]);
        ctx.add_time_function("u", &grid, 2, 2);
        ctx.add_function("m", &grid, 2);
        (ctx, grid)
    }

    #[test]
    fn workspace_allocates_all_fields() {
        let (ctx, grid) = ctx_and_grid();
        Universe::run(4, |comm| {
            let cart = CartComm::new(comm, &[2, 2]);
            let ws = Workspace::new(&ctx, &grid, cart);
            assert_eq!(ws.fields.len(), 2);
            assert_eq!(ws.fields[0].buffers.len(), 3); // time_order 2
            assert_eq!(ws.fields[1].buffers.len(), 1); // Function
            assert_eq!(ws.field_data("u", 0).local_shape(), &[4, 4]);
        });
    }

    #[test]
    fn time_level_maps_to_rotating_buffer() {
        let (ctx, grid) = ctx_and_grid();
        Universe::run(1, |comm| {
            let cart = CartComm::new(comm, &[1, 1]);
            let mut ws = Workspace::new(&ctx, &grid, cart);
            ws.field_data_mut("u", 0).set_global(&[0, 0], 5.0);
            // Level 3 is the same buffer as level 0 (3 buffers).
            assert_eq!(ws.field_data("u", 3).get_global(&[0, 0]), Some(5.0));
            assert_eq!(ws.field_data("u", 1).get_global(&[0, 0]), Some(0.0));
            // Negative levels wrap.
            assert_eq!(ws.field_data("u", -3).get_global(&[0, 0]), Some(5.0));
        });
    }

    #[test]
    #[should_panic(expected = "unknown field")]
    fn unknown_field_panics() {
        let (ctx, grid) = ctx_and_grid();
        Universe::run(1, |comm| {
            let cart = CartComm::new(comm, &[1, 1]);
            let ws = Workspace::new(&ctx, &grid, cart);
            let _ = ws.field_data("nope", 0);
        });
    }
}
