//! # mpix-core
//!
//! The user-facing operator API — the analogue of Devito's `Operator`
//! (paper Listing 1):
//!
//! ```
//! use mpix_core::prelude::*;
//!
//! let mut ctx = Context::new();
//! let grid = Grid::new(&[4, 4], &[2.0, 2.0]);
//! let u = ctx.add_time_function("u", &grid, 2, 1);
//! let eq = Eq::new(u.dt(), u.laplace());                      // u_t = ∇²u
//! let stencil = eq.solve_for(&u.forward(), &ctx).unwrap();    // explicit update
//! let op = Operator::build(ctx, grid, vec![stencil]).unwrap();
//!
//! // Run on 4 simulated MPI ranks, zero changes to the "user code":
//! let out = op.apply_distributed(4, None, &ApplyOptions::default().with_nt(1), |ws| {
//!     ws.field_data_mut("u", 0).fill_global_slice(&[1..3, 1..3], 1.0);
//! }, |ws| ws.gather("u"));
//! assert_eq!(out[0].len(), 16);
//! ```
//!
//! `Operator::build` runs the full compilation pipeline of Fig. 1:
//! equation lowering → clustering → flop-reduction (parameter hoisting +
//! CSE) → halo-exchange detection → schedule tree → IET with HaloSpots.
//! `apply*` lowers the HaloSpots for the selected MPI mode (basic /
//! diagonal / full) and executes the result on every rank.

// Numerical kernels index several arrays with one loop variable; the
// clippy suggestion (iterators + zip) hurts clarity in stencil code.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod autotune;
pub mod operator;
pub mod workspace;

pub use autotune::TuneReport;
pub use operator::{ApplyOptions, BuildError, Operator};
pub use workspace::Workspace;

/// Convenient glob imports for examples and downstream crates.
pub mod prelude {
    pub use crate::{ApplyOptions, Operator, Workspace};
    pub use mpix_comm::{CartComm, Comm, Universe};
    pub use mpix_dmp::{Decomposition, DistArray, HaloMode, SparsePoints};
    pub use mpix_symbolic::{Context, Eq, Expr, FieldHandle, Grid, Stagger};
}
