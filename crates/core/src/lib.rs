//! # mpix-core
//!
//! The user-facing operator API — the analogue of Devito's `Operator`
//! (paper Listing 1):
//!
//! ```
//! use mpix_core::prelude::*;
//!
//! let mut ctx = Context::new();
//! let grid = Grid::new(&[4, 4], &[2.0, 2.0]);
//! let u = ctx.add_time_function("u", &grid, 2, 1);
//! let eq = Eq::new(u.dt(), u.laplace());                      // u_t = ∇²u
//! let stencil = eq.solve_for(&u.forward(), &ctx).unwrap();    // explicit update
//! let op = Operator::build(ctx, grid, vec![stencil]).unwrap();
//!
//! // Run on 4 simulated MPI ranks, zero changes to the "user code":
//! let out = op.run(&ApplyOptions::default().with_nt(1).with_ranks(4), |ws| {
//!     ws.field_data_mut("u", 0).fill_global_slice(&[1..3, 1..3], 1.0);
//! }, |ws| ws.gather("u"));
//! assert_eq!(out.results[0].len(), 16);
//! assert_eq!(out.summary.ranks, 4);   // per-rank PerfSummary rides along
//! ```
//!
//! `Operator::build` runs the full compilation pipeline of Fig. 1:
//! equation lowering → clustering → flop-reduction (parameter hoisting +
//! CSE) → halo-exchange detection → schedule tree → IET with HaloSpots.
//! `Operator::run` lowers the HaloSpots for the MPI mode selected in
//! [`ApplyOptions`] (basic / diagonal / full), executes the result on
//! every rank, and returns the extracted values together with a
//! cross-rank performance summary.

// Numerical kernels index several arrays with one loop variable; the
// clippy suggestion (iterators + zip) hurts clarity in stencil code.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod autotune;
pub mod operator;
pub mod serve;
pub mod workspace;

pub use autotune::TuneReport;
pub use operator::{Applied, ApplyOptions, BuildError, Operator};
pub use serve::{
    CacheSnapshot, Job, JobRecord, JobStatus, OperatorCache, OperatorKey, RankPool, RecordSink,
    ServeConfig, ServeReport, Server,
};
pub use workspace::Workspace;
// The backend vocabulary, so callers can select/enumerate backends
// without depending on mpix-codegen directly.
pub use mpix_codegen::{available_backends, Backend, BackendError};
// The observability vocabulary, so downstream code needs only mpix-core.
pub use mpix_analysis::{AnalysisConfig, AnalysisReport};
pub use mpix_trace::{Diagnostic, PerfSummary, Section, Severity, TraceLevel, TraceReport};

/// Convenient glob imports for examples and downstream crates.
pub mod prelude {
    pub use crate::{Applied, ApplyOptions, Backend, Operator, PerfSummary, TraceLevel, Workspace};
    pub use mpix_comm::{CartComm, Comm, Universe};
    pub use mpix_dmp::{Decomposition, DistArray, HaloMode, SparsePoints};
    pub use mpix_symbolic::{Context, Eq, Expr, FieldHandle, Grid, Stagger};
}
