//! `mpix-serve`: a long-running solver service on top of [`Operator`].
//!
//! The pre-serve flow paid full compilation on every `Operator::run`:
//! mode lowering, cluster compilation, and (on the `jit` backend) native
//! module encoding were rebuilt per call. A service answering many
//! solver jobs — the same handful of kernels at different sizes, modes,
//! and rank counts, submitted by different tenants — would recompile
//! the same operator hundreds of times. This module makes compilation a
//! *cached, content-addressed* step:
//!
//! * [`OperatorKey`] — the cache key is a content hash of the lowered
//!   operator ([`Operator::content_key`]: mode-lowered IET structure and
//!   expressions, compiled cluster bytecode, backend, interpreter lane
//!   width). Pointer identity plays no part: two `Operator`s built from
//!   the same equations share one compiled artifact; same-geometry
//!   operators with different expressions do not.
//! * [`OperatorCache`] — a concurrent map from key to compiled
//!   [`OperatorExec`] with **single-flight** compilation: when N jobs
//!   race on a cold key, exactly one compiles while the other N−1 wait
//!   on the slot, then share the artifact. [`CacheStats`] counts hits,
//!   misses, and compiles (`compiles == misses == unique keys` is the
//!   invariant `tests/serve_load.rs` pins).
//! * [`RankPool`] — admission-controlled scheduling: the pool owns a
//!   fixed number of simulated-MPI rank slots; a job's rank request is
//!   acquired all-or-nothing before it runs and released after.
//!   Admission is priced by [`mpix_perf::price_job`] (roofline
//!   rank-seconds from the operator's compile-time op counts), so a job
//!   that would monopolize the pool is rejected *before* compiling.
//! * [`Server`] — worker threads draining a job queue. Each finished
//!   job streams one JSON record (cache hit/miss, admission price, the
//!   full [`PerfSummary`] with diagnostics) through the sink; shutdown
//!   streams a final summary record with the cache hit rate.
//!
//! Tenant isolation is by construction: every job's `run` builds a
//! fresh communicator world ([`mpix_comm::Comm::world_id`] is unique
//! per run), so no message, barrier, or sanitizer state crosses jobs —
//! only the immutable compiled artifacts are shared.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mpix_codegen::OperatorExec;
use mpix_json::{json, Value};
use mpix_perf::machine::archer2_node;

use crate::operator::{ApplyOptions, Operator};
use crate::workspace::Workspace;

// ---------------------------------------------------------------------------
// Cache key
// ---------------------------------------------------------------------------

/// Content hash identifying one compiled operator artifact (see
/// [`Operator::content_key`] for what it covers). Displayed as 16 hex
/// digits in job records.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OperatorKey(pub u64);

impl OperatorKey {
    /// Compute the key for an operator under the given run options.
    pub fn of(op: &Operator, opts: &ApplyOptions) -> OperatorKey {
        OperatorKey(op.content_key(opts))
    }
}

impl fmt::Display for OperatorKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

// ---------------------------------------------------------------------------
// Cache statistics
// ---------------------------------------------------------------------------

/// Hit/miss/compile counters for one [`OperatorCache`]. Counters are
/// cache-local (not process-global) so concurrent tests and servers in
/// one process never perturb each other's numbers.
#[derive(Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time copy of [`CacheStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Requests served from an already-compiled (or in-flight) slot.
    pub hits: u64,
    /// Requests that found no slot and triggered a compile.
    pub misses: u64,
    /// Compilations actually executed. Equal to `misses` — the
    /// single-flight invariant — and to the number of unique keys seen.
    pub compiles: u64,
    /// Ready slots dropped by the LRU capacity bound (always 0 for an
    /// unbounded cache). A re-request of an evicted key recompiles, so
    /// `compiles` can exceed the number of *live* keys by `evictions`.
    pub evictions: u64,
}

impl CacheSnapshot {
    /// Fraction of requests served without compiling (0.0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    pub fn to_json(&self) -> Value {
        json!({
            "hits": self.hits,
            "misses": self.misses,
            "compiles": self.compiles,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate(),
        })
    }
}

// ---------------------------------------------------------------------------
// The operator cache (single-flight)
// ---------------------------------------------------------------------------

/// One cache slot. `state` moves `Compiling → Ready` exactly once;
/// `Poisoned` records a compile panic so waiters fail loudly instead of
/// hanging or silently recompiling.
enum SlotState {
    Compiling,
    Ready(Arc<OperatorExec>),
    Poisoned(String),
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

/// Marks the slot poisoned if the compiling thread unwinds before
/// storing a result, and wakes every waiter either way.
struct CompileGuard<'a> {
    slot: &'a Slot,
    armed: bool,
}

impl Drop for CompileGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            *self.slot.state.lock().unwrap() =
                SlotState::Poisoned("compile panicked; see the compiling job's error".into());
        }
        self.slot.ready.notify_all();
    }
}

/// One cache entry: the slot plus its recency stamp for LRU eviction.
struct Entry {
    slot: Arc<Slot>,
    last_used: u64,
}

/// The mutex-protected cache interior: the key map and a monotone use
/// counter (incremented per request) that stamps entries for LRU order.
#[derive(Default)]
struct CacheMap {
    slots: HashMap<OperatorKey, Entry>,
    tick: u64,
}

/// A concurrent, content-addressed map from [`OperatorKey`] to compiled
/// executable, with single-flight compilation: for each key, exactly one
/// requester compiles; concurrent requesters for the same key block
/// until the artifact is ready and then share it.
///
/// By default entries are never evicted — compiled operators are small
/// (bytecode programs plus JIT module tables) and a serving process
/// wants its whole working set warm. A long-lived multi-tenant server
/// seeing unbounded distinct operators can bound the map with
/// [`bounded`](Self::bounded) (`MPIX_SERVE_CACHE_CAP` at the server
/// level): inserting past the capacity evicts least-recently-used
/// **non-in-flight** slots. A slot still compiling is never evicted —
/// removing it would break single-flight (a concurrent request for the
/// same key would start a second compile while waiters block on the
/// orphaned slot). Evicting a Ready slot is safe: running jobs keep
/// their `Arc<OperatorExec>`; only the cache's reference is dropped.
#[derive(Default)]
pub struct OperatorCache {
    map: Mutex<CacheMap>,
    /// Maximum live slots; `None` = unbounded.
    cap: Option<usize>,
    stats: CacheStats,
}

impl OperatorCache {
    /// An unbounded cache (entries live until the server drops).
    pub fn new() -> OperatorCache {
        OperatorCache::default()
    }

    /// A cache holding at most `cap` slots, LRU-evicting beyond that.
    pub fn bounded(cap: usize) -> OperatorCache {
        assert!(cap >= 1, "the operator cache needs at least one slot");
        OperatorCache {
            cap: Some(cap),
            ..OperatorCache::default()
        }
    }

    /// Fetch the artifact for `key`, compiling it with `compile` if this
    /// is the first request. Returns the shared executable and whether
    /// the request was a cache hit (`false` exactly for the one request
    /// per key that ran `compile`).
    ///
    /// If `compile` panics, the panic propagates to this caller, the
    /// slot is poisoned, and every waiter on the same key panics with
    /// the poison message — a broken operator fails all its jobs rather
    /// than deadlocking the pool.
    pub fn get_or_compile<F>(&self, key: OperatorKey, compile: F) -> (Arc<OperatorExec>, bool)
    where
        F: FnOnce() -> Arc<OperatorExec>,
    {
        let (slot, we_compile) = {
            let mut m = self.map.lock().unwrap();
            m.tick += 1;
            let tick = m.tick;
            match m.slots.get_mut(&key) {
                Some(e) => {
                    e.last_used = tick;
                    (Arc::clone(&e.slot), false)
                }
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Compiling),
                        ready: Condvar::new(),
                    });
                    m.slots.insert(
                        key,
                        Entry {
                            slot: Arc::clone(&slot),
                            last_used: tick,
                        },
                    );
                    if let Some(cap) = self.cap {
                        self.evict_over(&mut m, cap);
                    }
                    (slot, true)
                }
            }
        };

        if we_compile {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            self.stats.compiles.fetch_add(1, Ordering::Relaxed);
            let mut guard = CompileGuard {
                slot: &slot,
                armed: true,
            };
            // Compile outside both locks: waiters block on the slot, and
            // other keys stay servable while this one compiles.
            let exec = compile();
            *slot.state.lock().unwrap() = SlotState::Ready(Arc::clone(&exec));
            guard.armed = false;
            drop(guard); // notify_all
            return (exec, false);
        }

        self.stats.hits.fetch_add(1, Ordering::Relaxed);
        let mut state = slot.state.lock().unwrap();
        loop {
            match &*state {
                SlotState::Ready(exec) => return (Arc::clone(exec), true),
                SlotState::Poisoned(msg) => {
                    panic!("operator cache: key {key} poisoned: {msg}")
                }
                SlotState::Compiling => state = slot.ready.wait(state).unwrap(),
            }
        }
    }

    /// Drop least-recently-used non-in-flight slots until at most `cap`
    /// remain (or nothing evictable is left — a map full of compiling
    /// slots may transiently exceed the capacity rather than stall
    /// admission or break single-flight).
    fn evict_over(&self, m: &mut CacheMap, cap: usize) {
        while m.slots.len() > cap {
            let victim = m
                .slots
                .iter()
                .filter(|(_, e)| {
                    // try_lock: a contended state mutex means the slot is
                    // mid-compile or being handed to waiters — in-flight
                    // either way, so it is not a candidate.
                    e.slot
                        .state
                        .try_lock()
                        .is_ok_and(|s| !matches!(&*s, SlotState::Compiling))
                })
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    m.slots.remove(&k);
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Number of keys currently live in the map (evicted keys are gone;
    /// an unbounded cache never shrinks).
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            compiles: self.stats.compiles.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// The rank pool
// ---------------------------------------------------------------------------

/// A fixed budget of simulated-MPI rank slots shared by every running
/// job. Acquisition is all-or-nothing (a job holds either all of its
/// ranks or none — partial holds would deadlock two half-admitted
/// jobs) and blocking, in arrival order of the wakeups.
pub struct RankPool {
    total: usize,
    avail: Mutex<usize>,
    freed: Condvar,
}

impl RankPool {
    /// A pool of `total` rank slots. `total == 0` is a configuration
    /// error (no job could ever run).
    pub fn new(total: usize) -> RankPool {
        assert!(total >= 1, "rank pool needs at least one slot");
        RankPool {
            total,
            avail: Mutex::new(total),
            freed: Condvar::new(),
        }
    }

    /// Pool capacity (the admission bound on a single job's ranks).
    pub fn capacity(&self) -> usize {
        self.total
    }

    /// Rank slots not currently held by a running job.
    pub fn available(&self) -> usize {
        *self.avail.lock().unwrap()
    }

    /// Block until `n` slots are free, then take them. Panics if `n`
    /// exceeds capacity — such a job can never be satisfied, and the
    /// scheduler rejects it at admission instead of calling this.
    pub fn acquire(self: &Arc<Self>, n: usize) -> RankPermit {
        assert!(
            n >= 1 && n <= self.total,
            "cannot acquire {n} ranks from a pool of {}",
            self.total
        );
        let mut avail = self.avail.lock().unwrap();
        while *avail < n {
            avail = self.freed.wait(avail).unwrap();
        }
        *avail -= n;
        RankPermit {
            pool: Arc::clone(self),
            n,
        }
    }
}

/// RAII hold on `n` rank slots; dropping returns them and wakes waiters.
pub struct RankPermit {
    pool: Arc<RankPool>,
    n: usize,
}

impl RankPermit {
    /// How many slots this permit holds.
    pub fn ranks(&self) -> usize {
        self.n
    }
}

impl Drop for RankPermit {
    fn drop(&mut self) {
        let mut avail = self.pool.avail.lock().unwrap();
        *avail += self.n;
        self.pool.freed.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Server configuration. Like [`ApplyOptions`], builders set the
/// baseline and [`env_overrides`](Self::env_overrides) lets job scripts
/// retune a fixed binary; set-but-malformed values panic.
///
/// | variable                | overrides    | values                     |
/// |-------------------------|--------------|----------------------------|
/// | `MPIX_SERVE_WORKERS`    | `workers`    | worker threads, >= 1       |
/// | `MPIX_SERVE_POOL_RANKS` | `pool_ranks` | rank slots, >= 1           |
/// | `MPIX_SERVE_MAX_COST`   | `max_cost`   | rank-seconds bound (> 0), or `off` |
/// | `MPIX_SERVE_CACHE_CAP`  | `cache_cap`  | max cached operators (>= 1), or `off` |
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Concurrent job-executing worker threads.
    pub workers: usize,
    /// Total simulated-MPI rank slots in the [`RankPool`].
    pub pool_ranks: usize,
    /// Reject jobs whose roofline admission price exceeds this many
    /// rank-seconds on the reference machine. `None` = no price bound
    /// (capacity bounds still apply).
    pub max_cost: Option<f64>,
    /// Bound the [`OperatorCache`] to this many compiled operators,
    /// LRU-evicting non-in-flight slots beyond it. `None` = unbounded
    /// (every compiled operator stays warm for the server's lifetime).
    pub cache_cap: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            pool_ranks: 16,
            max_cost: None,
            cache_cap: None,
        }
    }
}

impl ServeConfig {
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "a server needs at least one worker");
        self.workers = workers;
        self
    }
    pub fn with_pool_ranks(mut self, pool_ranks: usize) -> Self {
        assert!(pool_ranks >= 1, "the rank pool needs at least one slot");
        self.pool_ranks = pool_ranks;
        self
    }
    pub fn with_max_cost(mut self, rank_seconds: f64) -> Self {
        assert!(rank_seconds > 0.0, "max cost must be positive");
        self.max_cost = Some(rank_seconds);
        self
    }
    pub fn with_cache_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "the operator cache needs at least one slot");
        self.cache_cap = Some(cap);
        self
    }

    /// Apply `MPIX_SERVE_*` environment overrides (env wins; unset
    /// leaves the builder value; set-but-malformed panics — the same
    /// contract as [`ApplyOptions::env_overrides`]).
    pub fn env_overrides(mut self) -> Self {
        if let Ok(v) = std::env::var("MPIX_SERVE_WORKERS") {
            self.workers = match v.parse() {
                Ok(w) if w >= 1 => w,
                _ => panic!("MPIX_SERVE_WORKERS={v:?}: expected a worker count >= 1"),
            };
        }
        if let Ok(v) = std::env::var("MPIX_SERVE_POOL_RANKS") {
            self.pool_ranks = match v.parse() {
                Ok(r) if r >= 1 => r,
                _ => panic!("MPIX_SERVE_POOL_RANKS={v:?}: expected a rank-slot count >= 1"),
            };
        }
        if let Ok(v) = std::env::var("MPIX_SERVE_MAX_COST") {
            self.max_cost = match v.to_ascii_lowercase().as_str() {
                "off" | "none" => None,
                _ => match v.parse::<f64>() {
                    Ok(c) if c > 0.0 && c.is_finite() => Some(c),
                    _ => panic!("MPIX_SERVE_MAX_COST={v:?}: expected rank-seconds > 0, or off"),
                },
            };
        }
        if let Ok(v) = std::env::var("MPIX_SERVE_CACHE_CAP") {
            self.cache_cap = match v.to_ascii_lowercase().as_str() {
                "off" | "none" => None,
                _ => match v.parse::<usize>() {
                    Ok(c) if c >= 1 => Some(c),
                    _ => panic!("MPIX_SERVE_CACHE_CAP={v:?}: expected a slot count >= 1, or off"),
                },
            };
        }
        self
    }

    /// Defaults plus environment overrides.
    pub fn from_env() -> Self {
        ServeConfig::default().env_overrides()
    }
}

// ---------------------------------------------------------------------------
// Jobs and records
// ---------------------------------------------------------------------------

/// One solver job: an operator, its run options, and a data initializer,
/// tagged with the submitting tenant. The operator rides in an `Arc` so
/// many jobs can share one build; sharing of *compiled* artifacts is by
/// content key, so distinct `Operator` instances with identical physics
/// still share.
pub struct Job {
    /// Submitting tenant, echoed in the job record. Isolation between
    /// tenants is structural (fresh communicator world per run), not
    /// name-based.
    pub tenant: String,
    pub op: Arc<Operator>,
    pub opts: ApplyOptions,
    /// Seeds each rank's workspace before time stepping (global
    /// indexing, as in `Operator::run`).
    pub init: Arc<dyn Fn(&mut Workspace) + Send + Sync>,
}

impl Job {
    /// A job with a no-op initializer (zero-filled fields).
    pub fn new(tenant: &str, op: Arc<Operator>, opts: ApplyOptions) -> Job {
        Job {
            tenant: tenant.to_string(),
            op,
            opts,
            init: Arc::new(|_| {}),
        }
    }

    pub fn with_init(mut self, init: impl Fn(&mut Workspace) + Send + Sync + 'static) -> Job {
        self.init = Arc::new(init);
        self
    }
}

/// Terminal status of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion; the record carries the `PerfSummary`.
    Done,
    /// Refused at admission (over pool capacity or over the price
    /// bound); never compiled, never held pool slots.
    Rejected,
    /// Panicked while compiling or running; the worker survived and the
    /// record carries the panic message.
    Failed,
}

impl JobStatus {
    fn name(self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Rejected => "rejected",
            JobStatus::Failed => "failed",
        }
    }
}

/// Everything the server knows about one finished job — the struct
/// behind the streamed JSON record.
pub struct JobRecord {
    pub job: u64,
    pub tenant: String,
    pub status: JobStatus,
    /// Content key, when the job got far enough to compute one.
    pub key: Option<OperatorKey>,
    /// Whether the compiled artifact came from cache. `None` for jobs
    /// that never reached the cache.
    pub cache_hit: Option<bool>,
    /// Roofline admission price.
    pub cost: Option<mpix_perf::JobCost>,
    /// Communicator world id of the run — unique per job, the tenant-
    /// isolation witness.
    pub world_id: Option<u64>,
    /// Why the job was rejected or failed.
    pub reason: Option<String>,
    /// The run's performance summary (with diagnostics), when it ran.
    pub summary: Option<mpix_trace::PerfSummary>,
}

impl JobRecord {
    /// The streamed JSON form (`"record": "job"` lines in the stream).
    pub fn to_json(&self) -> Value {
        json!({
            "record": "job",
            "job": self.job,
            "tenant": &self.tenant,
            "status": self.status.name(),
            "key": self.key.map(|k| k.to_string()),
            "cache": self.cache_hit.map(|h| if h { "hit" } else { "miss" }),
            "cost": self.cost.as_ref().map(|c| c.to_json()),
            "world_id": self.world_id,
            "reason": self.reason.clone(),
            "summary": self.summary.as_ref().map(|s| s.to_json()),
        })
    }
}

/// Aggregate result of a server's lifetime, returned by
/// [`Server::shutdown`] and streamed as the final `"record": "serve.summary"`
/// line.
#[derive(Clone, Debug)]
pub struct ServeReport {
    pub jobs: u64,
    pub done: u64,
    pub rejected: u64,
    pub failed: u64,
    pub cache: CacheSnapshot,
}

impl ServeReport {
    pub fn to_json(&self) -> Value {
        json!({
            "record": "serve.summary",
            "jobs": self.jobs,
            "done": self.done,
            "rejected": self.rejected,
            "failed": self.failed,
            "cache": self.cache.to_json(),
        })
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// Where finished-job records go. Called once per job (and once at
/// shutdown) from worker threads; implementations must be cheap or
/// internally buffered.
pub type RecordSink = Arc<dyn Fn(&Value) + Send + Sync>;

struct ServerShared {
    cache: OperatorCache,
    pool: Arc<RankPool>,
    cfg: ServeConfig,
    sink: RecordSink,
    done: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
}

/// The serving loop: `workers` threads drain a submission queue, admit
/// jobs against the [`RankPool`], compile through the shared
/// [`OperatorCache`], run, and stream a [`JobRecord`] per job.
///
/// ```
/// use std::sync::Arc;
/// use mpix_core::prelude::*;
/// use mpix_core::serve::{Job, RecordSink, ServeConfig, Server};
///
/// let mut ctx = Context::new();
/// let grid = Grid::new(&[8, 8], &[7.0, 7.0]);
/// let u = ctx.add_time_function("u", &grid, 2, 2);
/// let eq = Eq::new(u.dt(), u.laplace());
/// let stencil = eq.solve_for(&u.forward(), &ctx).unwrap();
/// let op = Arc::new(Operator::build(ctx, grid, vec![stencil]).unwrap());
///
/// let sink: RecordSink = Arc::new(|_record| { /* stream it */ });
/// let server = Server::start(ServeConfig::default().with_workers(2), sink);
/// for _ in 0..4 {
///     server.submit(Job::new(
///         "tenant-a",
///         Arc::clone(&op),
///         ApplyOptions::default().with_nt(1).with_ranks(2),
///     ));
/// }
/// let report = server.shutdown();
/// assert_eq!(report.done, 4);
/// assert_eq!(report.cache.compiles, 1); // one artifact, shared 4 ways
/// ```
pub struct Server {
    shared: Arc<ServerShared>,
    tx: Option<mpsc::Sender<(u64, Job)>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Server {
    /// Spawn the worker threads and return the handle jobs are submitted
    /// through.
    pub fn start(cfg: ServeConfig, sink: RecordSink) -> Server {
        assert!(cfg.workers >= 1, "a server needs at least one worker");
        let shared = Arc::new(ServerShared {
            cache: match cfg.cache_cap {
                Some(cap) => OperatorCache::bounded(cap),
                None => OperatorCache::new(),
            },
            pool: Arc::new(RankPool::new(cfg.pool_ranks)),
            cfg,
            sink,
            done: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        });
        let (tx, rx) = mpsc::channel::<(u64, Job)>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..shared.cfg.workers)
            .map(|w| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mpix-serve-{w}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only to dequeue; running
                        // the job must not serialize the other workers.
                        let next = rx.lock().unwrap().recv();
                        match next {
                            Ok((id, job)) => run_job(&shared, id, job),
                            Err(_) => break, // queue closed: shutdown
                        }
                    })
                    .expect("spawn serve worker")
            })
            .collect();
        Server {
            shared,
            tx: Some(tx),
            workers,
            next_id: AtomicU64::new(1),
        }
    }

    /// Enqueue a job; returns its id (stamped into the streamed record).
    /// Submission never blocks — admission happens on the worker.
    pub fn submit(&self, job: Job) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.tx
            .as_ref()
            .expect("server accepting jobs")
            .send((id, job))
            .expect("serve queue alive while the server holds workers");
        id
    }

    /// The shared artifact cache (for inspection/tests).
    pub fn cache(&self) -> &OperatorCache {
        &self.shared.cache
    }

    /// The rank pool (for inspection/tests).
    pub fn pool(&self) -> &RankPool {
        &self.shared.pool
    }

    /// Close the queue, drain every submitted job, join the workers, and
    /// stream + return the lifetime summary.
    pub fn shutdown(mut self) -> ServeReport {
        drop(self.tx.take()); // close the queue; workers drain and exit
        for w in self.workers.drain(..) {
            w.join().expect("serve worker exited cleanly");
        }
        let report = ServeReport {
            jobs: self.next_id.load(Ordering::Relaxed) - 1,
            done: self.shared.done.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            cache: self.shared.cache.stats(),
        };
        (self.shared.sink)(&report.to_json());
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown` consumed the fields; a dropped-without-shutdown
        // server still drains its queue rather than stranding jobs.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Execute one job end to end on a worker thread and stream its record.
fn run_job(shared: &ServerShared, id: u64, job: Job) {
    let mut record = JobRecord {
        job: id,
        tenant: job.tenant.clone(),
        status: JobStatus::Failed,
        key: None,
        cache_hit: None,
        cost: None,
        world_id: None,
        reason: None,
        summary: None,
    };

    // Admission: price from compile-time counts — no full compilation,
    // no pool slots spent on a job we refuse. Per-point work comes from
    // the memoized bytecode flop count (what the executor actually
    // runs), not a per-solver constant, so pricing tracks compiler
    // improvements like the CSE fix instead of a stale snapshot.
    let counts = job.op.op_counts();
    let cost = mpix_perf::price_job(
        job.op.bytecode_flops() as f64,
        counts.bytes() as f64,
        job.op.grid().num_points() as u64,
        job.opts.nt.max(0) as u64,
        job.opts.ranks,
        &archer2_node(),
    );
    let over_capacity = job.opts.ranks > shared.pool.capacity();
    let over_price = shared
        .cfg
        .max_cost
        .is_some_and(|max| cost.rank_seconds > max);
    record.cost = Some(cost);
    if over_capacity || over_price {
        record.status = JobStatus::Rejected;
        record.reason = Some(if over_capacity {
            format!(
                "requested {} ranks; pool capacity is {}",
                job.opts.ranks,
                shared.pool.capacity()
            )
        } else {
            format!(
                "admission price {:.3e} rank-seconds exceeds MPIX_SERVE_MAX_COST {:.3e}",
                record.cost.as_ref().unwrap().rank_seconds,
                shared.cfg.max_cost.unwrap()
            )
        });
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        (shared.sink)(&record.to_json());
        return;
    }

    // Compile (or fetch) the shared artifact, then run under a pool
    // permit. Panics — a broken operator, a failed verification gate, a
    // sanitizer-poisoned world — fail this job, not the worker.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let key = OperatorKey::of(&job.op, &job.opts);
        let (exec, hit) = shared
            .cache
            .get_or_compile(key, || Arc::new(job.op.compile_executable_for(&job.opts)));
        let _permit = shared.pool.acquire(job.opts.ranks.max(1));
        let init = Arc::clone(&job.init);
        let applied = job.op.run_with_exec(
            &exec,
            &job.opts,
            move |ws| init(ws),
            |ws| ws.cart.comm().world_id(),
        );
        (key, hit, applied)
    }));

    match outcome {
        Ok((key, hit, applied)) => {
            record.status = JobStatus::Done;
            record.key = Some(key);
            record.cache_hit = Some(hit);
            record.world_id = applied.results.first().copied();
            record.summary = Some(applied.summary);
            shared.done.fetch_add(1, Ordering::Relaxed);
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "job panicked".to_string());
            record.status = JobStatus::Failed;
            record.reason = Some(msg);
            shared.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    (shared.sink)(&record.to_json());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_exec_factory(calls: &AtomicU64) -> impl Fn() -> Arc<OperatorExec> + '_ {
        move || {
            calls.fetch_add(1, Ordering::Relaxed);
            // Build a tiny real executable: serve tests at module level
            // use real operators; unit tests here only need *an* exec.
            let mut ctx = mpix_symbolic::Context::new();
            let grid = mpix_symbolic::Grid::new(&[4, 4], &[3.0, 3.0]);
            let u = ctx.add_time_function("u", &grid, 2, 1);
            let eq = mpix_symbolic::Eq::new(u.dt(), u.laplace());
            let st = eq.solve_for(&u.forward(), &ctx).unwrap();
            let op = Operator::build(ctx, grid, vec![st]).unwrap();
            Arc::new(op.compile_executable_for(&ApplyOptions::default()))
        }
    }

    #[test]
    fn cache_counts_hits_misses_and_compiles() {
        let cache = OperatorCache::new();
        let calls = AtomicU64::new(0);
        let factory = dummy_exec_factory(&calls);
        let (a, hit_a) = cache.get_or_compile(OperatorKey(1), &factory);
        let (b, hit_b) = cache.get_or_compile(OperatorKey(1), &factory);
        let (_c, hit_c) = cache.get_or_compile(OperatorKey(2), &factory);
        assert!(!hit_a && hit_b && !hit_c);
        assert!(Arc::ptr_eq(&a, &b), "same key shares one artifact");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.compiles), (1, 2, 2));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(cache.len(), 2);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_cache_evicts_lru_instead_of_growing() {
        const CAP: usize = 2;
        let cache = OperatorCache::bounded(CAP);
        let calls = AtomicU64::new(0);
        let factory = dummy_exec_factory(&calls);

        // 3×cap distinct keys: the map must stop growing at the cap
        // rather than monotonically accreting every key it ever saw.
        for k in 0..(3 * CAP as u64) {
            cache.get_or_compile(OperatorKey(k), &factory);
            assert!(
                cache.len() <= CAP,
                "cache grew to {} slots past cap {CAP}",
                cache.len()
            );
        }
        let s = cache.stats();
        assert_eq!(s.compiles, 3 * CAP as u64, "every distinct key compiled");
        assert_eq!(
            s.evictions,
            2 * CAP as u64,
            "all but the last cap keys were evicted"
        );
        assert_eq!(cache.len(), CAP);

        // LRU order, not insertion order: touch key 4 (making key 5 the
        // least recently used), insert a fresh key, and key 4 survives
        // (hit, no compile) while key 5 is gone (recompiles on return).
        let before = cache.stats().compiles;
        let (_, hit) = cache.get_or_compile(OperatorKey(4), &factory);
        assert!(hit, "key 4 is still cached");
        cache.get_or_compile(OperatorKey(100), &factory);
        let (_, hit4) = cache.get_or_compile(OperatorKey(4), &factory);
        assert!(hit4, "recently used key survived the eviction");
        let (_, hit5) = cache.get_or_compile(OperatorKey(5), &factory);
        assert!(!hit5, "LRU key 5 was the victim");
        assert_eq!(cache.stats().compiles, before + 2, "keys 100 and 5");
    }

    #[test]
    fn compiling_slots_are_never_evicted() {
        // A capacity-1 cache with a slow compile in flight: a second
        // distinct key inserted mid-compile must not evict the compiling
        // slot (that would break single-flight); the map transiently
        // holds both, then the *ready* slot is evictable next insert.
        let cache = Arc::new(OperatorCache::bounded(1));
        let calls = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            let slow = {
                let cache = Arc::clone(&cache);
                let calls = Arc::clone(&calls);
                s.spawn(move || {
                    let factory = dummy_exec_factory(&calls);
                    cache.get_or_compile(OperatorKey(1), || {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        factory()
                    })
                })
            };
            // Give the slow compile time to claim its slot.
            std::thread::sleep(std::time::Duration::from_millis(10));
            let factory = dummy_exec_factory(&calls);
            cache.get_or_compile(OperatorKey(2), &factory);
            let (_, hit) = cache.get_or_compile(OperatorKey(1), &factory);
            assert!(hit, "in-flight slot survived the over-cap insert");
            slow.join().unwrap();
        });
        assert_eq!(
            calls.load(Ordering::Relaxed),
            2,
            "single-flight held for key 1 throughout"
        );
    }

    #[test]
    fn single_flight_under_concurrent_identical_requests() {
        let cache = Arc::new(OperatorCache::new());
        let calls = Arc::new(AtomicU64::new(0));
        let execs: Vec<Arc<OperatorExec>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let calls = Arc::clone(&calls);
                    s.spawn(move || {
                        let factory = dummy_exec_factory(&calls);
                        let (exec, _hit) = cache.get_or_compile(OperatorKey(42), || {
                            // Widen the race window: the slow compile is
                            // exactly when duplicates pile up.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            factory()
                        });
                        exec
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "exactly one compile");
        for e in &execs[1..] {
            assert!(Arc::ptr_eq(&execs[0], e), "all callers share the artifact");
        }
        let s = cache.stats();
        assert_eq!(s.compiles, 1);
        assert_eq!(s.hits + s.misses, 8);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn poisoned_slot_fails_waiters_loudly() {
        let cache = Arc::new(OperatorCache::new());
        let compiler = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_compile(OperatorKey(7), || panic!("boom"))
                }));
            })
        };
        compiler.join().unwrap();
        let waiter = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let calls = AtomicU64::new(0);
            cache.get_or_compile(OperatorKey(7), dummy_exec_factory(&calls))
        }));
        assert!(waiter.is_err(), "waiters on a poisoned key must fail");
    }

    #[test]
    fn rank_pool_blocks_until_released() {
        let pool = Arc::new(RankPool::new(4));
        let permit = pool.acquire(3);
        assert_eq!(pool.available(), 1);
        let pool2 = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || {
            let p = pool2.acquire(2); // must wait for the 3 to come back
            p.ranks()
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!waiter.is_finished(), "2-rank acquire must block at 1 free");
        drop(permit);
        assert_eq!(waiter.join().unwrap(), 2);
        drop(pool);
    }

    #[test]
    #[should_panic(expected = "cannot acquire")]
    fn rank_pool_rejects_over_capacity_acquire() {
        let pool = Arc::new(RankPool::new(2));
        let _ = pool.acquire(3);
    }

    #[test]
    fn serve_config_env_overrides_parse_and_panic() {
        // Env is process-global: one serialized test, like ApplyOptions'.
        std::env::set_var("MPIX_SERVE_WORKERS", "3");
        std::env::set_var("MPIX_SERVE_POOL_RANKS", "9");
        std::env::set_var("MPIX_SERVE_MAX_COST", "2.5");
        let cfg = ServeConfig::from_env();
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.pool_ranks, 9);
        assert_eq!(cfg.max_cost, Some(2.5));

        std::env::set_var("MPIX_SERVE_MAX_COST", "off");
        assert_eq!(ServeConfig::from_env().max_cost, None);

        // Zero workers/ranks are misconfigurations, not "round up to 1".
        std::env::set_var("MPIX_SERVE_WORKERS", "0");
        let r = std::panic::catch_unwind(ServeConfig::from_env);
        assert!(r.is_err(), "MPIX_SERVE_WORKERS=0 must panic");
        std::env::set_var("MPIX_SERVE_WORKERS", "3");

        std::env::set_var("MPIX_SERVE_POOL_RANKS", "banana");
        let r = std::panic::catch_unwind(ServeConfig::from_env);
        assert!(r.is_err(), "malformed MPIX_SERVE_POOL_RANKS must panic");

        std::env::remove_var("MPIX_SERVE_WORKERS");
        std::env::remove_var("MPIX_SERVE_POOL_RANKS");
        std::env::remove_var("MPIX_SERVE_MAX_COST");
    }
}
