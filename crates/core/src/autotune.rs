//! Automated runtime tuning — the paper's §IV-F future work items:
//! "an automated tuning system for selecting the best-performing MPI
//! pattern without exploring all three options manually, and another
//! level of automated tuning for custom decompositions for the *full*
//! mode", plus the loop-blocking autotuning mentioned in §IV-C.
//!
//! The tuner runs short timed trials of the compiled operator on
//! scratch workspaces (leaving user data untouched) and picks the
//! fastest configuration.

use std::time::Instant;

use mpix_codegen::{available_backends, Backend};
use mpix_comm::dims_create;
use mpix_dmp::HaloMode;

use crate::operator::{ApplyOptions, Operator};
use crate::workspace::Workspace;

/// Result of a tuning sweep: the chosen configuration plus the measured
/// trial times for transparency.
#[derive(Clone, Debug)]
pub struct TuneReport<C> {
    pub best: C,
    /// `(candidate, seconds)` for every trial, in sweep order.
    pub trials: Vec<(C, f64)>,
}

/// Pick the fastest trial with a *total* order on times. `total_cmp`
/// sorts every NaN after every real number, so a pathological trial
/// (e.g. a zero-duration clock anomaly propagated through a division)
/// loses to any finite measurement instead of panicking the whole sweep
/// the way `partial_cmp(..).unwrap()` did.
fn best_trial<C: Clone>(trials: &[(C, f64)]) -> C {
    trials
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("tuning sweep ran at least one trial")
        .0
        .clone()
}

impl Operator {
    /// One candidate measurement: an untimed warm-up run amortizes
    /// first-touch allocation, lazy compilation, and thread-pool spin-up
    /// effects, then an identical run is timed. Every tuner goes through
    /// this helper so no sweep accidentally times its cold run.
    fn timed_trial<FI>(&self, opts: &ApplyOptions, init: &FI) -> f64
    where
        FI: Fn(&mut Workspace) + Send + Sync,
    {
        self.run(opts, init, |_| ());
        let t0 = Instant::now();
        self.run(opts, init, |_| ());
        t0.elapsed().as_secs_f64()
    }

    /// Select the fastest halo-exchange pattern for this operator at the
    /// given rank count by running `trial_nt` timed steps per mode on
    /// scratch data (model parameters seeded by `init`).
    pub fn autotune_mode<FI>(
        &self,
        nranks: usize,
        topology: Option<Vec<usize>>,
        base: &ApplyOptions,
        trial_nt: i64,
        init: FI,
    ) -> TuneReport<HaloMode>
    where
        FI: Fn(&mut Workspace) + Send + Sync,
    {
        let mut trials = Vec::new();
        for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
            let mut opts = base
                .clone()
                .with_mode(mode)
                .with_nt(trial_nt)
                .with_ranks(nranks);
            opts.topology = topology.clone();
            trials.push((mode, self.timed_trial(&opts, &init)));
        }
        let best = best_trial(&trials);
        TuneReport { best, trials }
    }

    /// Select the fastest cache-blocking tile from `candidates` with
    /// single-rank trials (blocking is a per-rank concern). Thin wrapper
    /// over [`autotune_exec`](Self::autotune_exec) with the vector width
    /// pinned to the base option's value.
    pub fn autotune_block<FI>(
        &self,
        base: &ApplyOptions,
        trial_nt: i64,
        candidates: &[usize],
        init: FI,
    ) -> TuneReport<usize>
    where
        FI: Fn(&mut Workspace) + Send + Sync,
    {
        let report = self.autotune_exec(base, trial_nt, candidates, &[base.vector_width], init);
        TuneReport {
            best: report.best.0,
            trials: report
                .trials
                .into_iter()
                .map(|((b, _), t)| (b, t))
                .collect(),
        }
    }

    /// Sweep the per-rank execution-engine knobs jointly: cache-blocking
    /// tile × interpreter lane width (`(block, vector_width)` pairs).
    /// The two interact — a tile must hold several full strips to keep
    /// the vector path off the scalar remainder — so a joint sweep beats
    /// tuning each axis in isolation.
    pub fn autotune_exec<FI>(
        &self,
        base: &ApplyOptions,
        trial_nt: i64,
        blocks: &[usize],
        widths: &[usize],
        init: FI,
    ) -> TuneReport<(usize, usize)>
    where
        FI: Fn(&mut Workspace) + Send + Sync,
    {
        assert!(!blocks.is_empty() && !widths.is_empty());
        let mut trials = Vec::new();
        for &block in blocks {
            for &vw in widths {
                let mut opts = base
                    .clone()
                    .with_block(block)
                    .with_vector_width(vw)
                    .with_nt(trial_nt)
                    .with_ranks(1);
                opts.topology = None;
                trials.push(((block, vw), self.timed_trial(&opts, &init)));
            }
        }
        let best = best_trial(&trials);
        TuneReport { best, trials }
    }

    /// Select the fastest execution backend on this host. Sweeps every
    /// entry of [`available_backends`] (so an absent JIT is simply never
    /// tried) with single-rank trials — backend choice, like blocking,
    /// is a per-rank concern. The bytecode interpreter's lane width
    /// rides along from `base`; the JIT ignores it.
    pub fn autotune_backend<FI>(
        &self,
        base: &ApplyOptions,
        trial_nt: i64,
        init: FI,
    ) -> TuneReport<Backend>
    where
        FI: Fn(&mut Workspace) + Send + Sync,
    {
        let mut trials = Vec::new();
        for backend in available_backends() {
            let mut opts = base
                .clone()
                .with_backend(backend)
                .with_nt(trial_nt)
                .with_ranks(1);
            opts.topology = None;
            trials.push((backend, self.timed_trial(&opts, &init)));
        }
        let best = best_trial(&trials);
        TuneReport { best, trials }
    }

    /// Tune the process-grid topology for the *full* pattern (§IV-F:
    /// "customizing the decomposition to only split in x and y" can beat
    /// the balanced default). Sweeps the balanced factorization plus the
    /// axis-restricted variants that keep the innermost dimension
    /// contiguous.
    pub fn autotune_topology<FI>(
        &self,
        nranks: usize,
        base: &ApplyOptions,
        trial_nt: i64,
        init: FI,
    ) -> TuneReport<Vec<usize>>
    where
        FI: Fn(&mut Workspace) + Send + Sync,
    {
        let nd = self.grid().ndim();
        let mut candidates: Vec<Vec<usize>> = vec![dims_create(nranks, nd)];
        if nd == 3 {
            // Split only x/y (keep z whole: unbroken vector dimension).
            let mut xy = dims_create(nranks, 2);
            xy.push(1);
            candidates.push(xy);
            // Split only x (maximal slabs).
            candidates.push(vec![nranks, 1, 1]);
        } else if nd == 2 {
            candidates.push(vec![nranks, 1]);
        }
        candidates.retain(|c| {
            c.iter()
                .zip(self.grid().shape.iter())
                .all(|(&p, &s)| p <= s)
        });
        candidates.dedup();
        let mut trials = Vec::new();
        for topo in candidates {
            let opts = base
                .clone()
                .with_nt(trial_nt)
                .with_ranks(nranks)
                .with_topology(&topo);
            let secs = self.timed_trial(&opts, &init);
            trials.push((topo, secs));
        }
        let best = best_trial(&trials);
        TuneReport { best, trials }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_symbolic::{Context, Eq, Grid};

    fn op() -> Operator {
        let mut ctx = Context::new();
        let grid = Grid::new(&[16, 16], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &grid, 4, 1);
        let eq = Eq::new(u.dt(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        Operator::build(ctx, grid, vec![st]).unwrap()
    }

    #[test]
    fn mode_tuner_tries_all_three_and_picks_a_valid_mode() {
        let op = op();
        let base = ApplyOptions::default().with_dt(0.001);
        let report = op.autotune_mode(4, None, &base, 3, |ws| {
            ws.field_data_mut("u", 0)
                .fill_global_slice(&[4..12, 4..12], 1.0);
        });
        assert_eq!(report.trials.len(), 3);
        assert!(report.trials.iter().any(|(m, _)| *m == report.best));
        assert!(report.trials.iter().all(|(_, t)| *t > 0.0));
    }

    #[test]
    fn block_tuner_picks_from_candidates() {
        let op = op();
        let base = ApplyOptions::default().with_dt(0.001);
        let report = op.autotune_block(&base, 2, &[0, 4, 8], |_| ());
        assert!([0, 4, 8].contains(&report.best));
        assert_eq!(report.trials.len(), 3);
    }

    #[test]
    fn exec_tuner_sweeps_block_width_cross_product() {
        let op = op();
        let base = ApplyOptions::default().with_dt(0.001);
        let report = op.autotune_exec(&base, 2, &[0, 8], &[0, 8, 16], |_| ());
        assert_eq!(report.trials.len(), 6);
        assert!(report.trials.iter().any(|(c, _)| *c == report.best));
        assert!([0usize, 8].contains(&report.best.0));
        assert!([0usize, 8, 16].contains(&report.best.1));
        assert!(report.trials.iter().all(|(_, t)| *t > 0.0));
    }

    #[test]
    fn topology_tuner_includes_axis_restricted_candidates() {
        let op = op();
        let base = ApplyOptions::default()
            .with_dt(0.001)
            .with_mode(mpix_dmp::HaloMode::Full);
        let report = op.autotune_topology(4, &base, 2, |_| ());
        // 2-D grid: balanced [2,2] plus slab [4,1].
        assert!(report.trials.len() >= 2);
        let topos: Vec<&Vec<usize>> = report.trials.iter().map(|(t, _)| t).collect();
        assert!(topos.contains(&&vec![2, 2]));
        assert!(topos.contains(&&vec![4, 1]));
    }

    #[test]
    fn backend_tuner_sweeps_every_available_backend() {
        let op = op();
        let base = ApplyOptions::default().with_dt(0.001);
        let report = op.autotune_backend(&base, 2, |_| ());
        let avail = available_backends();
        assert_eq!(report.trials.len(), avail.len());
        assert!(avail.contains(&report.best));
        assert!(report.trials.iter().all(|(_, t)| *t > 0.0));
    }

    #[test]
    fn best_trial_is_nan_safe() {
        // A NaN trial time must lose to every finite time, not panic the
        // sweep (the old partial_cmp(..).unwrap() selection did).
        let trials = vec![("nan", f64::NAN), ("fast", 0.1), ("slow", 0.9)];
        assert_eq!(super::best_trial(&trials), "fast");
        // Even an all-NaN sweep picks *something* deterministically.
        let all_nan = vec![("a", f64::NAN), ("b", f64::NAN)];
        assert_eq!(super::best_trial(&all_nan), "a");
    }

    #[test]
    #[should_panic]
    fn block_tuner_requires_candidates() {
        let op = op();
        let base = ApplyOptions::default();
        op.autotune_block(&base, 1, &[], |_| ());
    }
}
