//! The `Operator`: compile once, apply at any rank count and MPI mode.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use mpix_codegen::executor::{mpi_mode_of, ExecOptions, ExecStats, Fault, OperatorExec};
use mpix_codegen::Backend;
use mpix_comm::{dims_create, CartComm, Universe};
use mpix_dmp::HaloMode;
use mpix_ir::cluster::{clusterize, Cluster};
use mpix_ir::halo::{detect_halo_exchanges, HaloPlan};
use mpix_ir::iet::{build_iet, Node};
use mpix_ir::lowering::{lower_equations, LoweringError};
use mpix_ir::opcount::{op_counts, OpCounts};
use mpix_ir::passes::{cse_cluster, lower_halo_spots};
use mpix_ir::schedule::ScheduleTree;
use mpix_perf::machine::archer2_node;
use mpix_symbolic::{Context, Eq, Grid};
use mpix_trace::{PerfSummary, TraceLevel, TraceReport};

use crate::workspace::Workspace;

/// Compilation failures surfaced to the user.
#[derive(Debug)]
pub enum BuildError {
    Lowering(LoweringError),
    /// The operator has no equations.
    Empty,
}

impl From<LoweringError> for BuildError {
    fn from(e: LoweringError) -> Self {
        BuildError::Lowering(e)
    }
}

/// The one runtime configuration for [`Operator::run`] — the paper's
/// `DEVITO_MPI` mode, blocking tile, thread count, time stepping, rank
/// topology, and instrumentation level, in a single struct.
///
/// The documented configuration path is: start from the builder
/// (`ApplyOptions::default().with_mode(...).with_ranks(4)...`), then let
/// the environment override it with [`env_overrides`](Self::env_overrides).
/// Environment values always win over builder values, mirroring how the
/// paper's job scripts control a fixed binary:
///
/// | variable       | overrides | values                                 |
/// |----------------|-----------|----------------------------------------|
/// | `MPIX_MPI`     | `mode`    | `basic`, `diag`/`diag2`, `full`        |
/// | `MPIX_BLOCK`   | `block`   | tile edge (0 = off)                    |
/// | `MPIX_THREADS` | `threads` | like `OMP_NUM_THREADS`                 |
/// | `MPIX_RANKS`   | `ranks`   | simulated MPI ranks                    |
/// | `MPIX_TRACE`   | `trace`   | `off`, `summary`, `full`               |
/// | `MPIX_VW`      | `vector_width` | `0`/`1` (scalar), `8`, `16`, `32` |
/// | `MPIX_BACKEND` | `backend` | `c`, `bytecode`, `jit`                 |
/// | `MPIX_VERIFY`  | `verify`  | `0`/`off`/`false`, `1`/`on`/`true`     |
/// | `MPIX_SAN`     | `sanitize`| `0`/`off`/`false`, `1`/`on`/`true`     |
#[derive(Clone, Debug)]
pub struct ApplyOptions {
    pub mode: HaloMode,
    pub block: usize,
    pub threads: usize,
    /// Lane width for the strip-vectorized interpreter (the runtime
    /// analogue of the paper's `#pragma omp simd`); `0`/`1` = scalar.
    /// Ignored by the `jit` backend, whose lane count is fixed by the
    /// instruction set.
    pub vector_width: usize,
    /// Execution backend compiling the kernel bodies (see
    /// [`mpix_codegen::Backend`]): `bytecode` (default, portable),
    /// `jit` (native SIMD), or `c` (paper-style C emission; executes
    /// through the interpreter). Results are bitwise identical across
    /// backends — only speed differs.
    pub backend: Backend,
    /// Number of time steps.
    pub nt: i64,
    /// First time index (enables external stepping: run `nt` steps from
    /// `t0`, inspect, continue from `t0 + nt` with rotation preserved).
    pub t0: i64,
    /// Time-step size; if `None`, a default of 1.0 is used.
    pub dt: Option<f64>,
    /// Extra runtime scalars beyond `dt`/`h_*`.
    pub scalars: Vec<(String, f32)>,
    /// Simulated MPI ranks for [`Operator::run`].
    pub ranks: usize,
    /// Explicit Cartesian topology; `None` = balanced `dims_create`.
    pub topology: Option<Vec<usize>>,
    /// Instrumentation level (see `mpix_trace`); `Off` costs a branch.
    pub trace: TraceLevel,
    /// Label stamped into the [`PerfSummary`] (e.g. `acoustic-so4`).
    pub label: String,
    /// Run the `mpix-analysis` self-verification passes over the
    /// operator's artifacts before executing (the run configuration
    /// only; the `mpix-verify` binary sweeps the full matrix). Errors
    /// panic — executing a provably broken schedule would produce wrong
    /// numerics or deadlock; warnings ride along on the
    /// [`PerfSummary::diagnostics`]. Defaults to on in debug builds.
    pub verify: bool,
    /// Run under the `mpix-san` happens-before sanitizer: vector clocks
    /// on every message/barrier plus shadow state on halo regions, with
    /// findings appended to [`PerfSummary::diagnostics`] and printed to
    /// stderr. Off by default — when off the only cost anywhere in the
    /// runtime is one `Option` branch per hook site.
    pub sanitize: bool,
    /// Test-only fault injection for the sanitizer's mutant corpus:
    /// makes the executor misbehave in a specific way so the owning
    /// detector can prove it fires. Never set this outside tests.
    #[doc(hidden)]
    pub fault: Option<Fault>,
}

impl Default for ApplyOptions {
    fn default() -> Self {
        ApplyOptions {
            mode: HaloMode::Basic,
            block: 0,
            threads: 1,
            vector_width: 0,
            backend: Backend::Bytecode,
            nt: 1,
            t0: 0,
            dt: None,
            scalars: Vec::new(),
            ranks: 1,
            topology: None,
            trace: TraceLevel::Off,
            label: "operator".to_string(),
            verify: cfg!(debug_assertions),
            sanitize: false,
            fault: None,
        }
    }
}

impl ApplyOptions {
    pub fn with_mode(mut self, mode: HaloMode) -> Self {
        self.mode = mode;
        self
    }
    pub fn with_nt(mut self, nt: i64) -> Self {
        self.nt = nt;
        self
    }
    pub fn with_t0(mut self, t0: i64) -> Self {
        self.t0 = t0;
        self
    }
    pub fn with_dt(mut self, dt: f64) -> Self {
        self.dt = Some(dt);
        self
    }
    pub fn with_block(mut self, block: usize) -> Self {
        self.block = block;
        self
    }
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
    pub fn with_vector_width(mut self, vw: usize) -> Self {
        self.vector_width = mpix_codegen::executor::validate_vector_width(vw);
        self
    }
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
    pub fn with_scalar(mut self, name: &str, v: f32) -> Self {
        self.scalars.push((name.to_string(), v));
        self
    }
    pub fn with_ranks(mut self, ranks: usize) -> Self {
        self.ranks = ranks.max(1);
        self
    }
    pub fn with_topology(mut self, dims: &[usize]) -> Self {
        self.topology = Some(dims.to_vec());
        self
    }
    pub fn with_trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }
    pub fn with_sanitize(mut self, sanitize: bool) -> Self {
        self.sanitize = sanitize;
        self
    }

    /// Apply environment overrides on top of the builder values (env
    /// wins — see the table on [`ApplyOptions`]). Unset variables leave
    /// the builder value untouched; a set-but-unparseable value panics,
    /// like [`TraceLevel::from_env`] — silently ignoring a typo'd job
    /// script is worse.
    pub fn env_overrides(mut self) -> Self {
        if let Ok(v) = std::env::var("MPIX_MPI") {
            self.mode = HaloMode::parse(&v)
                .unwrap_or_else(|| panic!("MPIX_MPI={v:?}: expected basic|diag|diag2|full"));
        }
        if let Ok(v) = std::env::var("MPIX_BLOCK") {
            self.block = v
                .parse()
                .unwrap_or_else(|_| panic!("MPIX_BLOCK={v:?}: expected a block size"));
        }
        if let Ok(v) = std::env::var("MPIX_THREADS") {
            // Zero is as malformed as a typo: clamping `MPIX_THREADS=0`
            // to 1 would silently run a misconfigured job script, which
            // the contract above promises never happens.
            self.threads = match v.parse() {
                Ok(t) if t >= 1 => t,
                _ => panic!("MPIX_THREADS={v:?}: expected a thread count >= 1"),
            };
        }
        if let Ok(v) = std::env::var("MPIX_RANKS") {
            self.ranks = match v.parse() {
                Ok(r) if r >= 1 => r,
                _ => panic!("MPIX_RANKS={v:?}: expected a rank count >= 1"),
            };
        }
        if std::env::var("MPIX_TRACE").is_ok() {
            self.trace = TraceLevel::from_env();
        }
        if let Ok(v) = std::env::var("MPIX_VW") {
            let vw: usize = v
                .parse()
                .unwrap_or_else(|_| panic!("MPIX_VW={v:?}: expected a lane width (0|1|8|16|32)"));
            self.vector_width = mpix_codegen::executor::validate_vector_width(vw);
        }
        if let Ok(v) = std::env::var("MPIX_BACKEND") {
            self.backend = v
                .parse()
                .unwrap_or_else(|e| panic!("MPIX_BACKEND={v:?}: {e}"));
        }
        if let Ok(v) = std::env::var("MPIX_VERIFY") {
            self.verify = match v.to_ascii_lowercase().as_str() {
                "1" | "on" | "true" => true,
                "0" | "off" | "false" => false,
                _ => panic!("MPIX_VERIFY={v:?}: expected 0|1|on|off|true|false"),
            };
        }
        if let Ok(v) = std::env::var("MPIX_SAN") {
            self.sanitize = match v.to_ascii_lowercase().as_str() {
                "1" | "on" | "true" => true,
                "0" | "off" | "false" => false,
                _ => panic!("MPIX_SAN={v:?}: expected 0|1|on|off|true|false"),
            };
        }
        self
    }

    /// Defaults plus environment overrides — the paper's job-script
    /// path for a binary with no hard-coded configuration.
    pub fn from_env() -> Self {
        ApplyOptions::default().env_overrides()
    }
}

/// User-facing label of a halo mode, as stamped into [`PerfSummary`].
fn mode_label(mode: HaloMode) -> &'static str {
    match mode {
        HaloMode::Basic => "basic",
        HaloMode::Diagonal => "diag",
        HaloMode::Full => "full",
    }
}

/// The result of one [`Operator::run`]: every rank's extracted value
/// plus the aggregated performance readout.
pub struct Applied<R> {
    /// Per-rank results from the `extract` closure, rank order.
    pub results: Vec<R>,
    /// Cross-rank performance aggregate (timings are real even at
    /// `TraceLevel::Off`; section/message detail needs `Summary`/`Full`).
    pub summary: PerfSummary,
}

/// A compiled operator: the product of the Fig. 1 pipeline, plus enough
/// metadata to print every IR level.
pub struct Operator {
    ctx: Context,
    grid: Grid,
    clusters: Vec<Cluster>,
    plan: HaloPlan,
    iet: Node,
    counts: OpCounts,
    /// Executables already lowered for a `(mode, backend)` pair. Lowering
    /// and kernel compilation (including the JIT's per-geometry native
    /// modules, which live *inside* the cached [`OperatorExec`]) happen
    /// once per pair per operator; every later [`run`](Self::run) reuses
    /// the same kernels. This is the per-operator face of the serve
    /// layer's content-keyed [`crate::serve::OperatorCache`].
    execs: std::sync::Mutex<HashMap<(HaloMode, Backend), Arc<OperatorExec>>>,
    /// Memoized per-point bytecode flop count (see
    /// [`bytecode_flops`](Self::bytecode_flops)).
    bc_flops: std::sync::OnceLock<usize>,
}

impl Operator {
    /// Run the compilation pipeline on explicit update equations
    /// (each `Eq` must already be in `target = stencil` form; use
    /// [`Eq::solve_for`] first for implicit PDE statements).
    pub fn build(ctx: Context, grid: Grid, eqs: Vec<Eq>) -> Result<Operator, BuildError> {
        if eqs.is_empty() {
            return Err(BuildError::Empty);
        }
        let lowered = lower_equations(&eqs, &ctx)?;
        let mut clusters = clusterize(&lowered);
        let mut next_param = 0;
        for cl in &mut clusters {
            cse_cluster(cl, &mut next_param);
        }
        let plan = detect_halo_exchanges(&clusters, &ctx);
        let counts = op_counts(&clusters);
        let iet = build_iet(clusters.clone(), &plan, "Kernel", 0, true);
        Ok(Operator {
            ctx,
            grid,
            clusters,
            plan,
            iet,
            counts,
            execs: std::sync::Mutex::new(HashMap::new()),
            bc_flops: std::sync::OnceLock::new(),
        })
    }

    pub fn ctx(&self) -> &Context {
        &self.ctx
    }
    pub fn grid(&self) -> &Grid {
        &self.grid
    }
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }
    pub fn halo_plan(&self) -> &HaloPlan {
        &self.plan
    }
    /// Compile-time operation counts (OI, flops/pt, streams) — the
    /// paper's §IV-C compile-time metrics.
    pub fn op_counts(&self) -> &OpCounts {
        &self.counts
    }

    /// Per-point flop count of the bytecode the executor actually runs:
    /// the sum over clusters of the fused program's
    /// [`CompiledCluster::flop_count`](mpix_codegen::CompiledCluster::flop_count)
    /// (fused ops are costed at full arithmetic weight, so fusion never
    /// changes the number). Admission pricing derives per-point work
    /// from this — re-computed from the compiler on every build, never
    /// a per-solver constant — so it tracks compiler improvements (e.g.
    /// the CSE fix that dropped viscoelastic to ~580 flops/pt)
    /// automatically. Memoized: the bytecode compile is cheap but not
    /// free, and serve prices every job at admission.
    pub fn bytecode_flops(&self) -> usize {
        *self.bc_flops.get_or_init(|| {
            self.clusters
                .iter()
                .map(|cl| {
                    mpix_codegen::fuse_cluster(mpix_codegen::compile_cluster(cl)).flop_count()
                })
                .sum()
        })
    }

    /// The schedule tree (Listing 4).
    pub fn schedule_tree(&self) -> String {
        ScheduleTree::build(&self.clusters, &self.plan, &self.ctx).to_string()
    }

    /// The IET with HaloSpots (Listing 5).
    pub fn iet_string(&self) -> String {
        format!(
            "{}",
            mpix_ir::iet::IetPrinter {
                node: &self.iet,
                ctx: &self.ctx
            }
        )
    }

    /// Generated C code for the mode selected in `opts` (Listing 11).
    pub fn c_code_for(&self, opts: &ApplyOptions) -> String {
        let lowered = lower_halo_spots(self.iet.clone(), mpi_mode_of(opts.mode));
        mpix_codegen::cgen::emit_c(&lowered, &self.ctx)
    }

    /// Executable lowered for the mode and backend selected in `opts`,
    /// compiled **once** per `(mode, backend)` pair and shared across
    /// every subsequent `run` of this operator. The JIT's per-geometry
    /// native-module cache lives inside the returned executable, so
    /// repeated runs of the same geometry reuse machine code instead of
    /// re-encoding AVX on every call (the pre-serve code rebuilt a fresh
    /// `JitKernel` with an empty module cache per run).
    ///
    /// Panics with the backend-availability listing if the requested
    /// backend cannot run on this host (e.g. `jit` without AVX) — a
    /// silently substituted backend would invalidate benchmark numbers.
    pub fn executable_for(&self, opts: &ApplyOptions) -> Arc<OperatorExec> {
        let key = (opts.mode, opts.backend);
        // The lock is held across compilation deliberately: concurrent
        // first requests for one pair must compile once, not race
        // (single-flight at per-operator granularity; the serve layer's
        // OperatorCache adds the same guarantee across operators).
        let mut cache = self.execs.lock().unwrap();
        if let Some(exec) = cache.get(&key) {
            return Arc::clone(exec);
        }
        let exec = Arc::new(self.compile_executable_for(opts));
        cache.insert(key, Arc::clone(&exec));
        exec
    }

    /// Compile a fresh executable for `opts`, bypassing the cache. This
    /// is the raw compile [`executable_for`](Self::executable_for)
    /// memoizes; benchmarks use it to time compilation itself.
    pub fn compile_executable_for(&self, opts: &ApplyOptions) -> OperatorExec {
        let lowered = lower_halo_spots(self.iet.clone(), mpi_mode_of(opts.mode));
        OperatorExec::with_backend(lowered, &self.ctx, opts.backend)
            .unwrap_or_else(|e| panic!("operator '{}': {e}", opts.label))
    }

    /// Content hash of this operator as lowered for `opts` — the serve
    /// layer's cache key. Two operators collide exactly when their
    /// mode-lowered IET (structure *and* expressions, via the C
    /// emission), their compiled cluster bytecode, the execution
    /// backend, and the interpreter lane width all agree; pointer
    /// identity plays no part. Same-geometry operators with different
    /// expressions hash apart (different coefficients/opcodes); the same
    /// equations built twice hash together.
    pub fn content_key(&self, opts: &ApplyOptions) -> u64 {
        let lowered = lower_halo_spots(self.iet.clone(), mpi_mode_of(opts.mode));
        let mut h = std::collections::hash_map::DefaultHasher::new();
        // IET structure + expressions + halo call sites for this mode.
        mpix_codegen::cgen::emit_c(&lowered, &self.ctx).hash(&mut h);
        // The compiled cluster bodies (post-fusion bytecode listing).
        mpix_codegen::create_lowering(Backend::Bytecode)
            .expect("bytecode backend is always available")
            .emit(&lowered, &self.ctx)
            .hash(&mut h);
        opts.backend.to_string().hash(&mut h);
        opts.vector_width.hash(&mut h);
        h.finish()
    }

    /// Default runtime scalars: `dt` and the grid spacings.
    pub fn default_scalars(&self, opts: &ApplyOptions) -> HashMap<String, f32> {
        let mut m = HashMap::new();
        m.insert("dt".to_string(), opts.dt.unwrap_or(1.0) as f32);
        for d in 0..self.grid.ndim() {
            m.insert(Grid::spacing_symbol_name(d), self.grid.spacing(d) as f32);
        }
        for (k, v) in &opts.scalars {
            m.insert(k.clone(), *v);
        }
        m
    }

    /// Run the `mpix-analysis` self-verification passes over this
    /// operator's artifacts for an explicit configuration sweep. This is
    /// the programmatic face of the `mpix-verify` binary; [`run`](Self::run)
    /// calls it implicitly (for the run configuration only) when
    /// `opts.verify` is set.
    pub fn verify(&self, cfg: &mpix_analysis::AnalysisConfig) -> mpix_analysis::AnalysisReport {
        mpix_analysis::verify_operator(&self.ctx, &self.grid, &self.clusters, &self.plan, cfg)
    }

    /// Run on an existing per-rank workspace (the low-level entry point;
    /// `apply_distributed` wraps it).
    pub fn apply(&self, ws: &mut Workspace, exec: &OperatorExec, opts: &ApplyOptions) -> ExecStats {
        let scalars = self.default_scalars(opts);
        let Workspace {
            cart,
            fields,
            sparse,
            ..
        } = ws;
        exec.run(
            cart,
            fields,
            &scalars,
            sparse,
            opts.t0,
            opts.nt,
            &ExecOptions {
                mode: opts.mode,
                block: opts.block,
                threads: opts.threads,
                vector_width: opts.vector_width,
                trace: opts.trace,
                fault: opts.fault,
            },
        )
    }

    /// The paper's zero-code-change promise, with observability: run the
    /// same operator on `opts.ranks` simulated MPI ranks. `init` seeds
    /// each rank's data (global indexing — every rank runs the same
    /// code, as with the distributed NumPy arrays); `extract` pulls
    /// per-rank results. The returned [`Applied`] carries both the
    /// extracted values and a cross-rank [`PerfSummary`] with the
    /// roofline ceiling of the reference machine attached.
    pub fn run<R, FI, FX>(&self, opts: &ApplyOptions, init: FI, extract: FX) -> Applied<R>
    where
        R: Send,
        FI: Fn(&mut Workspace) + Send + Sync,
        FX: Fn(&mut Workspace) -> R + Send + Sync,
    {
        let exec = self.executable_for(opts);
        self.run_with_exec(&exec, opts, init, extract)
    }

    /// [`run`](Self::run) against an explicitly provided executable —
    /// the serve layer's entry point, where the executable comes from a
    /// cross-operator [`crate::serve::OperatorCache`] rather than this
    /// operator's own per-`(mode, backend)` cache. The executable must
    /// have been lowered for the same mode and backend `opts` selects.
    pub fn run_with_exec<R, FI, FX>(
        &self,
        exec: &OperatorExec,
        opts: &ApplyOptions,
        init: FI,
        extract: FX,
    ) -> Applied<R>
    where
        R: Send,
        FI: Fn(&mut Workspace) + Send + Sync,
        FX: Fn(&mut Workspace) -> R + Send + Sync,
    {
        assert_eq!(
            exec.backend(),
            opts.backend,
            "operator '{}': executable was compiled by the {} backend but \
             the run options select {}",
            opts.label,
            exec.backend(),
            opts.backend
        );
        // Validate the lane width once at the entry point: builders and
        // `env_overrides` already validate, but `vector_width` is a pub
        // field — a raw struct write could otherwise carry an arbitrary
        // width all the way into the executor.
        let _ = mpix_codegen::executor::validate_vector_width(opts.vector_width);

        let nranks = opts.ranks.max(1);
        let dims = opts
            .topology
            .clone()
            .unwrap_or_else(|| dims_create(nranks, self.grid.ndim()));

        // Self-verification gate: prove the artifacts sound for this run
        // configuration before executing them. Errors abort — running a
        // provably broken plan deadlocks or silently corrupts numerics.
        let mut diagnostics = if opts.verify {
            let cfg = mpix_analysis::AnalysisConfig::for_run(
                opts.mode,
                nranks,
                opts.threads,
                opts.vector_width,
                opts.backend,
            );
            let report = self.verify(&cfg);
            assert!(
                !report.has_errors(),
                "operator '{}' failed self-verification:\n{report}",
                opts.label
            );
            report.diagnostics
        } else {
            Vec::new()
        };

        // Sanitizer: `with_sanitize(true)` forces it on; otherwise defer
        // to `MPIX_SAN` so job scripts can arm it without a rebuild (the
        // same path a bare `Universe::run` takes).
        let san = if opts.sanitize {
            Some(std::sync::Arc::new(mpix_san::San::new(nranks)))
        } else {
            mpix_san::San::from_env(nranks)
        };

        let per_rank = Universe::run_with_san(nranks, san.clone(), |comm| {
            let cart = CartComm::new(comm, &dims);
            let mut ws = Workspace::new(&self.ctx, &self.grid, cart);
            init(&mut ws);
            let stats = self.apply(&mut ws, exec, opts);
            ws.last_stats = Some(stats.clone());
            ws.final_t = opts.t0 + opts.nt;
            (extract(&mut ws), stats)
        });

        // Drain sanitizer findings into the summary (run_with_san already
        // finalized the leak check and echoed them to stderr).
        if let Some(s) = &san {
            diagnostics.extend(s.take_reports());
        }

        let mut results = Vec::with_capacity(per_rank.len());
        let mut rank_totals = Vec::with_capacity(per_rank.len());
        let mut reports: Vec<TraceReport> = Vec::new();
        for (r, stats) in per_rank {
            rank_totals.push((stats.total_secs(), stats.points_updated));
            if let Some(tr) = stats.trace {
                reports.push(tr);
            }
            results.push(r);
        }

        let oi = self.counts.oi();
        let machine = archer2_node();
        let ceiling = (machine.peak_flops).min(machine.mem_bw * oi) / 1e9;
        let summary = PerfSummary::from_reports(
            &opts.label,
            mode_label(opts.mode),
            opts.nt,
            self.counts.flops() as f64,
            oi,
            &rank_totals,
            &reports,
        )
        .with_roofline(format!("{} (reference)", machine.name), ceiling)
        .with_diagnostics(diagnostics);

        Applied { results, summary }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_options_from_env_parses_job_script_values() {
        // Serialize ALL env mutation within this one test: the env is
        // process-global and tests run on parallel threads.
        std::env::set_var("MPIX_MPI", "diag2");
        std::env::set_var("MPIX_BLOCK", "16");
        std::env::set_var("MPIX_THREADS", "4");
        std::env::set_var("MPIX_RANKS", "8");
        std::env::set_var("MPIX_TRACE", "summary");
        std::env::set_var("MPIX_VW", "16");
        std::env::set_var("MPIX_BACKEND", "jit");
        std::env::set_var("MPIX_VERIFY", "on");
        std::env::set_var("MPIX_SAN", "on");
        let o = ApplyOptions::from_env();
        assert_eq!(o.mode, HaloMode::Diagonal);
        assert_eq!(o.block, 16);
        assert_eq!(o.threads, 4);
        assert_eq!(o.ranks, 8);
        assert_eq!(o.trace, TraceLevel::Summary);
        assert_eq!(o.vector_width, 16);
        assert_eq!(o.backend, Backend::Jit);
        assert!(o.verify);
        assert!(o.sanitize);
        std::env::set_var("MPIX_VERIFY", "0");
        std::env::set_var("MPIX_SAN", "off");
        let o = ApplyOptions::from_env();
        assert!(!o.verify);
        assert!(!o.sanitize);

        // Precedence: environment beats builder.
        let o = ApplyOptions::default()
            .with_mode(HaloMode::Full)
            .with_block(64)
            .with_trace(TraceLevel::Full)
            .env_overrides();
        assert_eq!(o.mode, HaloMode::Diagonal);
        assert_eq!(o.block, 16);
        assert_eq!(o.trace, TraceLevel::Summary);

        // Zero is malformed for THREADS/RANKS — fail loudly, never clamp
        // to 1 (a typo'd job script must not silently run serial).
        std::env::set_var("MPIX_THREADS", "0");
        assert!(std::panic::catch_unwind(ApplyOptions::from_env).is_err());
        std::env::set_var("MPIX_THREADS", "4");
        std::env::set_var("MPIX_RANKS", "0");
        assert!(std::panic::catch_unwind(ApplyOptions::from_env).is_err());
        std::env::set_var("MPIX_RANKS", "8");
        // Set-but-empty MPIX_TRACE is malformed, like every other knob.
        std::env::set_var("MPIX_TRACE", "");
        assert!(std::panic::catch_unwind(ApplyOptions::from_env).is_err());
        std::env::set_var("MPIX_TRACE", "summary");

        std::env::remove_var("MPIX_MPI");
        std::env::remove_var("MPIX_BLOCK");
        std::env::remove_var("MPIX_THREADS");
        std::env::remove_var("MPIX_RANKS");
        std::env::remove_var("MPIX_TRACE");
        std::env::remove_var("MPIX_VW");
        std::env::remove_var("MPIX_BACKEND");
        std::env::remove_var("MPIX_VERIFY");
        std::env::remove_var("MPIX_SAN");
        let o = ApplyOptions::from_env();
        assert_eq!(o.mode, HaloMode::Basic);
        assert_eq!(o.block, 0);
        assert_eq!(o.trace, TraceLevel::Off);
        assert_eq!(o.vector_width, 0);
        assert_eq!(o.backend, Backend::Bytecode);

        // Unset env leaves builder values untouched.
        let o = ApplyOptions::default()
            .with_mode(HaloMode::Full)
            .with_ranks(4)
            .env_overrides();
        assert_eq!(o.mode, HaloMode::Full);
        assert_eq!(o.ranks, 4);
    }
}
