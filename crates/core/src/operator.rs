//! The `Operator`: compile once, apply at any rank count and MPI mode.

use std::collections::HashMap;

use mpix_codegen::executor::{mpi_mode_of, ExecOptions, ExecStats, OperatorExec};
use mpix_comm::{dims_create, CartComm, Universe};
use mpix_dmp::HaloMode;
use mpix_ir::cluster::{clusterize, Cluster};
use mpix_ir::halo::{detect_halo_exchanges, HaloPlan};
use mpix_ir::iet::{build_iet, Node};
use mpix_ir::lowering::{lower_equations, LoweringError};
use mpix_ir::opcount::{op_counts, OpCounts};
use mpix_ir::passes::{cse_cluster, lower_halo_spots};
use mpix_ir::schedule::ScheduleTree;
use mpix_symbolic::{Context, Eq, Grid};

use crate::workspace::Workspace;

/// Compilation failures surfaced to the user.
#[derive(Debug)]
pub enum BuildError {
    Lowering(LoweringError),
    /// The operator has no equations.
    Empty,
}

impl From<LoweringError> for BuildError {
    fn from(e: LoweringError) -> Self {
        BuildError::Lowering(e)
    }
}

/// Runtime options for `apply` — the paper's `DEVITO_MPI` mode, blocking
/// tile, thread count and time-step configuration.
#[derive(Clone, Debug)]
pub struct ApplyOptions {
    pub mode: HaloMode,
    pub block: usize,
    pub threads: usize,
    /// Number of time steps.
    pub nt: i64,
    /// First time index (enables external stepping: run `nt` steps from
    /// `t0`, inspect, continue from `t0 + nt` with rotation preserved).
    pub t0: i64,
    /// Time-step size; if `None`, a default of 1.0 is used.
    pub dt: Option<f64>,
    /// Extra runtime scalars beyond `dt`/`h_*`.
    pub scalars: Vec<(String, f32)>,
}

impl Default for ApplyOptions {
    fn default() -> Self {
        ApplyOptions {
            mode: HaloMode::Basic,
            block: 0,
            threads: 1,
            nt: 1,
            t0: 0,
            dt: None,
            scalars: Vec::new(),
        }
    }
}

impl ApplyOptions {
    pub fn with_mode(mut self, mode: HaloMode) -> Self {
        self.mode = mode;
        self
    }
    pub fn with_nt(mut self, nt: i64) -> Self {
        self.nt = nt;
        self
    }
    pub fn with_t0(mut self, t0: i64) -> Self {
        self.t0 = t0;
        self
    }
    pub fn with_dt(mut self, dt: f64) -> Self {
        self.dt = Some(dt);
        self
    }
    pub fn with_block(mut self, block: usize) -> Self {
        self.block = block;
        self
    }
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
    pub fn with_scalar(mut self, name: &str, v: f32) -> Self {
        self.scalars.push((name.to_string(), v));
        self
    }

    /// Read runtime knobs from the environment, mirroring the paper's
    /// job scripts: `MPIX_MPI` (like `DEVITO_MPI`: `basic`, `diag`,
    /// `diag2`, `full`), `MPIX_BLOCK` (tile edge) and `MPIX_THREADS`
    /// (like `OMP_NUM_THREADS`).
    pub fn from_env() -> Self {
        let mut o = ApplyOptions::default();
        if let Ok(v) = std::env::var("MPIX_MPI") {
            if let Some(mode) = HaloMode::parse(&v) {
                o.mode = mode;
            }
        }
        if let Ok(v) = std::env::var("MPIX_BLOCK") {
            if let Ok(b) = v.parse() {
                o.block = b;
            }
        }
        if let Ok(v) = std::env::var("MPIX_THREADS") {
            if let Ok(t) = v.parse::<usize>() {
                o.threads = t.max(1);
            }
        }
        o
    }
}

/// A compiled operator: the product of the Fig. 1 pipeline, plus enough
/// metadata to print every IR level.
pub struct Operator {
    ctx: Context,
    grid: Grid,
    clusters: Vec<Cluster>,
    plan: HaloPlan,
    iet: Node,
    counts: OpCounts,
}

impl Operator {
    /// Run the compilation pipeline on explicit update equations
    /// (each `Eq` must already be in `target = stencil` form; use
    /// [`Eq::solve_for`] first for implicit PDE statements).
    pub fn build(ctx: Context, grid: Grid, eqs: Vec<Eq>) -> Result<Operator, BuildError> {
        if eqs.is_empty() {
            return Err(BuildError::Empty);
        }
        let lowered = lower_equations(&eqs, &ctx)?;
        let mut clusters = clusterize(&lowered);
        let mut next_param = 0;
        for cl in &mut clusters {
            cse_cluster(cl, &mut next_param);
        }
        let plan = detect_halo_exchanges(&clusters, &ctx);
        let counts = op_counts(&clusters);
        let iet = build_iet(clusters.clone(), &plan, "Kernel", 0, true);
        Ok(Operator {
            ctx,
            grid,
            clusters,
            plan,
            iet,
            counts,
        })
    }

    pub fn ctx(&self) -> &Context {
        &self.ctx
    }
    pub fn grid(&self) -> &Grid {
        &self.grid
    }
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }
    pub fn halo_plan(&self) -> &HaloPlan {
        &self.plan
    }
    /// Compile-time operation counts (OI, flops/pt, streams) — the
    /// paper's §IV-C compile-time metrics.
    pub fn op_counts(&self) -> &OpCounts {
        &self.counts
    }

    /// The schedule tree (Listing 4).
    pub fn schedule_tree(&self) -> String {
        ScheduleTree::build(&self.clusters, &self.plan, &self.ctx).to_string()
    }

    /// The IET with HaloSpots (Listing 5).
    pub fn iet_string(&self) -> String {
        format!(
            "{}",
            mpix_ir::iet::IetPrinter {
                node: &self.iet,
                ctx: &self.ctx
            }
        )
    }

    /// Generated C code for the given mode (Listing 11).
    pub fn c_code(&self, mode: HaloMode) -> String {
        let lowered = lower_halo_spots(self.iet.clone(), mpi_mode_of(mode));
        mpix_codegen::cgen::emit_c(&lowered, &self.ctx)
    }

    /// Mode-lowered executable.
    pub fn executable(&self, mode: HaloMode) -> OperatorExec {
        let lowered = lower_halo_spots(self.iet.clone(), mpi_mode_of(mode));
        OperatorExec::new(lowered, &self.ctx)
    }

    /// Default runtime scalars: `dt` and the grid spacings.
    pub fn default_scalars(&self, opts: &ApplyOptions) -> HashMap<String, f32> {
        let mut m = HashMap::new();
        m.insert("dt".to_string(), opts.dt.unwrap_or(1.0) as f32);
        for d in 0..self.grid.ndim() {
            m.insert(
                Grid::spacing_symbol_name(d),
                self.grid.spacing(d) as f32,
            );
        }
        for (k, v) in &opts.scalars {
            m.insert(k.clone(), *v);
        }
        m
    }

    /// Run on an existing per-rank workspace (the low-level entry point;
    /// `apply_distributed` wraps it).
    pub fn apply(&self, ws: &mut Workspace, exec: &OperatorExec, opts: &ApplyOptions) -> ExecStats {
        let scalars = self.default_scalars(opts);
        let Workspace {
            cart,
            fields,
            sparse,
            ..
        } = ws;
        exec.run(
            cart,
            fields,
            &scalars,
            sparse,
            opts.t0,
            opts.nt,
            &ExecOptions {
                mode: opts.mode,
                block: opts.block,
                threads: opts.threads,
            },
        )
    }

    /// The paper's zero-code-change promise: run the same operator on
    /// `nranks` simulated MPI ranks. `init` seeds each rank's data
    /// (global indexing — every rank runs the same code, as with the
    /// distributed NumPy arrays); `extract` pulls per-rank results.
    pub fn apply_distributed<R, FI, FX>(
        &self,
        nranks: usize,
        topology: Option<Vec<usize>>,
        opts: &ApplyOptions,
        init: FI,
        extract: FX,
    ) -> Vec<R>
    where
        R: Send,
        FI: Fn(&mut Workspace) + Send + Sync,
        FX: Fn(&mut Workspace) -> R + Send + Sync,
    {
        let dims = topology.unwrap_or_else(|| dims_create(nranks, self.grid.ndim()));
        let exec = self.executable(opts.mode);
        Universe::run(nranks, |comm| {
            let cart = CartComm::new(comm, &dims);
            let mut ws = Workspace::new(&self.ctx, &self.grid, cart);
            init(&mut ws);
            let stats = self.apply(&mut ws, &exec, opts);
            ws.last_stats = Some(stats);
            ws.final_t = opts.t0 + opts.nt;
            extract(&mut ws)
        })
    }

    /// Single-rank convenience (serial reference runs).
    pub fn apply_local<R>(
        &self,
        opts: &ApplyOptions,
        init: impl Fn(&mut Workspace) + Send + Sync,
        extract: impl Fn(&mut Workspace) -> R + Send + Sync,
    ) -> R
    where
        R: Send,
    {
        self.apply_distributed(1, None, opts, init, extract)
            .into_iter()
            .next()
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_options_from_env_parses_job_script_values() {
        // Serialize env mutation within this test.
        std::env::set_var("MPIX_MPI", "diag2");
        std::env::set_var("MPIX_BLOCK", "16");
        std::env::set_var("MPIX_THREADS", "4");
        let o = ApplyOptions::from_env();
        assert_eq!(o.mode, HaloMode::Diagonal);
        assert_eq!(o.block, 16);
        assert_eq!(o.threads, 4);
        std::env::remove_var("MPIX_MPI");
        std::env::remove_var("MPIX_BLOCK");
        std::env::remove_var("MPIX_THREADS");
        let o = ApplyOptions::from_env();
        assert_eq!(o.mode, HaloMode::Basic);
        assert_eq!(o.block, 0);
    }
}
