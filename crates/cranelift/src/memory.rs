//! W^X executable memory, allocated with raw Linux syscalls so the
//! crate stays dependency-free (the workspace has no `libc`).
//!
//! Lifecycle: `mmap` an anonymous read-write region, copy the code in,
//! then `mprotect` it read-execute — the region is never writable and
//! executable at the same time. `munmap` on drop.

/// A syscall failure while creating or releasing executable memory.
#[derive(Clone, Copy, Debug)]
pub struct MemError {
    /// Which syscall failed.
    pub stage: &'static str,
    /// Negated kernel return value (an errno).
    pub errno: i64,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed with errno {}", self.stage, self.errno)
    }
}

const PAGE: usize = 4096;

/// An owned read-execute mapping holding one compiled function.
pub struct ExecMem {
    ptr: *mut u8,
    /// Mapped length (page-rounded).
    map_len: usize,
    /// Actual code length.
    code_len: usize,
}

// The mapping is immutable (RX) after construction; sharing raw
// pointers to it across threads is sound.
unsafe impl Send for ExecMem {}
unsafe impl Sync for ExecMem {}

impl ExecMem {
    /// Map `code` into fresh executable memory.
    pub fn new(code: &[u8]) -> Result<ExecMem, MemError> {
        assert!(!code.is_empty(), "empty code buffer");
        let map_len = code.len().div_ceil(PAGE) * PAGE;
        let ptr = sys::map_rw(map_len)?;
        unsafe {
            std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len());
        }
        if let Err(e) = sys::protect_rx(ptr, map_len) {
            sys::unmap(ptr, map_len);
            return Err(e);
        }
        Ok(ExecMem {
            ptr,
            map_len,
            code_len: code.len(),
        })
    }

    /// Start of the executable region.
    pub fn ptr(&self) -> *const u8 {
        self.ptr
    }

    /// Code length in bytes.
    pub fn len(&self) -> usize {
        self.code_len
    }

    pub fn is_empty(&self) -> bool {
        self.code_len == 0
    }
}

impl Drop for ExecMem {
    fn drop(&mut self) {
        sys::unmap(self.ptr, self.map_len);
    }
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod sys {
    use super::MemError;

    const SYS_MMAP: i64 = 9;
    const SYS_MPROTECT: i64 = 10;
    const SYS_MUNMAP: i64 = 11;

    const PROT_READ: i64 = 1;
    const PROT_WRITE: i64 = 2;
    const PROT_EXEC: i64 = 4;
    const MAP_PRIVATE: i64 = 0x02;
    const MAP_ANONYMOUS: i64 = 0x20;

    #[inline]
    unsafe fn syscall6(n: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64, a6: i64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    pub fn map_rw(len: usize) -> Result<*mut u8, MemError> {
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len as i64,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if (-4095..0).contains(&ret) {
            return Err(MemError {
                stage: "mmap",
                errno: -ret,
            });
        }
        Ok(ret as *mut u8)
    }

    pub fn protect_rx(ptr: *mut u8, len: usize) -> Result<(), MemError> {
        let ret = unsafe {
            syscall6(
                SYS_MPROTECT,
                ptr as i64,
                len as i64,
                PROT_READ | PROT_EXEC,
                0,
                0,
                0,
            )
        };
        if ret != 0 {
            return Err(MemError {
                stage: "mprotect",
                errno: -ret,
            });
        }
        Ok(())
    }

    pub fn unmap(ptr: *mut u8, len: usize) {
        unsafe {
            syscall6(SYS_MUNMAP, ptr as i64, len as i64, 0, 0, 0, 0);
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod sys {
    use super::MemError;

    // Non-x86-64-Linux hosts never reach these (JitContext::finalize
    // rejects them first), but keep the crate compiling everywhere.
    pub fn map_rw(_len: usize) -> Result<*mut u8, MemError> {
        Err(MemError {
            stage: "mmap(unsupported host)",
            errno: 38, // ENOSYS
        })
    }

    pub fn protect_rx(_ptr: *mut u8, _len: usize) -> Result<(), MemError> {
        Err(MemError {
            stage: "mprotect(unsupported host)",
            errno: 38,
        })
    }

    pub fn unmap(_ptr: *mut u8, _len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    fn ret_only_function_is_callable() {
        let mem = ExecMem::new(&[0xC3]).unwrap(); // ret
        assert_eq!(mem.len(), 1);
        assert!(!mem.is_empty());
        let f: unsafe extern "C" fn() = unsafe { std::mem::transmute(mem.ptr()) };
        unsafe { f() };
    }
}
