//! # cranelift (local stand-in)
//!
//! The build environment has no registry access, so — following the
//! workspace's vendored-crate idiom (`rand`, `proptest`, `criterion`) —
//! this crate provides exactly the JIT surface `mpix-codegen` needs in
//! place of the real `cranelift`/`cranelift-jit` crates: a host target
//! probe, W^X executable-memory management, and an x86-64 assembler
//! with AVX (VEX-encoded) vector instructions and label fixups.
//!
//! The module layout mirrors a Cranelift-style backend (`types`,
//! `build`/[`asm`], [`memory`], and a [`JitContext`]/[`CompiledModule`]
//! pair) so a future swap to the real crates is a drop-in:
//!
//! * [`TargetInfo`] — host architecture/feature probe; JIT is gated on
//!   `x86_64-linux` with AVX.
//! * [`asm::Asm`] — instruction builder: GP moves/arithmetic, rel32
//!   branches with labels, and the 256-bit/scalar AVX ops a
//!   finite-difference kernel body needs (`vmovups`, `vbroadcastss`,
//!   `vaddps`/`vmulps`/`vdivps` and their `ss` forms).
//! * [`memory::ExecMem`] — `mmap`(RW) → copy → `mprotect`(RX) via raw
//!   syscalls (no libc dependency), unmapped on drop.
//! * [`CompiledModule`] — a finalized function: owns its executable
//!   mapping and exposes the entry pointer.
//!
//! Safety model: the assembler produces bytes, the module makes them
//! executable; *calling* the entry point is `unsafe` and the caller is
//! responsible for the generated code's correctness. `mpix-codegen`
//! discharges that obligation with the `mpix-analysis` bounds proofs and
//! the bytecode-oracle equivalence gate.

pub mod asm;
pub mod memory;

pub use asm::{Asm, Cc, Reg, Ymm};
pub use memory::{ExecMem, MemError};

/// Host target description — the stand-in for Cranelift's ISA builder.
#[derive(Clone, Copy, Debug)]
pub struct TargetInfo {
    pub arch: &'static str,
    pub os: &'static str,
    /// 256-bit AVX available at runtime (required by the vector bodies).
    pub has_avx: bool,
}

impl TargetInfo {
    /// Probe the host.
    pub fn host() -> TargetInfo {
        TargetInfo {
            arch: std::env::consts::ARCH,
            os: std::env::consts::OS,
            has_avx: detect_avx(),
        }
    }

    /// Whether this host can run the generated code at all: x86-64
    /// Linux with AVX. Everything else must stay on the interpreter.
    pub fn supports_jit(&self) -> bool {
        self.arch == "x86_64" && self.os == "linux" && self.has_avx
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_avx() -> bool {
    std::arch::is_x86_feature_detected!("avx")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_avx() -> bool {
    false
}

/// Compilation context — checks target support once and finalizes
/// assembled functions into executable modules.
#[derive(Clone, Copy, Debug)]
pub struct JitContext {
    target: TargetInfo,
}

/// Why a function could not be finalized into native code.
#[derive(Clone, Debug)]
pub enum JitError {
    /// Host is not x86-64 Linux with AVX.
    Unsupported(TargetInfo),
    /// Executable-memory syscall failed.
    Mem(MemError),
}

impl std::fmt::Display for JitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JitError::Unsupported(t) => write!(
                f,
                "jit unsupported on {}-{} (avx: {})",
                t.arch, t.os, t.has_avx
            ),
            JitError::Mem(e) => write!(f, "executable memory: {e}"),
        }
    }
}

impl JitContext {
    /// Create a context for the host target.
    pub fn new() -> JitContext {
        JitContext {
            target: TargetInfo::host(),
        }
    }

    pub fn target(&self) -> TargetInfo {
        self.target
    }

    /// Finalize an assembled function into an executable module.
    pub fn finalize(&self, asm: Asm) -> Result<CompiledModule, JitError> {
        if !self.target.supports_jit() {
            return Err(JitError::Unsupported(self.target));
        }
        let code = asm.finish();
        let mem = ExecMem::new(&code).map_err(JitError::Mem)?;
        Ok(CompiledModule { mem })
    }
}

impl Default for JitContext {
    fn default() -> Self {
        JitContext::new()
    }
}

/// A finalized native function: owns its RX mapping for its lifetime.
pub struct CompiledModule {
    mem: ExecMem,
}

impl CompiledModule {
    /// Entry point of the compiled function.
    pub fn entry_ptr(&self) -> *const u8 {
        self.mem.ptr()
    }

    /// Code size in bytes (diagnostics).
    pub fn code_len(&self) -> usize {
        self.mem.len()
    }

    /// Call as `extern "C" fn(*mut u8)` with one pointer argument.
    ///
    /// # Safety
    /// The generated code must implement exactly that ABI and only
    /// access memory reachable (and valid) through `arg`.
    pub unsafe fn call(&self, arg: *mut u8) {
        let f: unsafe extern "C" fn(*mut u8) = std::mem::transmute(self.entry_ptr());
        f(arg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// JIT `out[i] = a[i] + 2.0 * b[i]` over n floats (8-wide strips +
    /// scalar tail) and check it end to end — the whole stack in one
    /// test: assembler, W^X memory, ABI, AVX encodings, label fixups.
    #[test]
    fn jit_axpy_roundtrip() {
        let ctx = JitContext::new();
        if !ctx.target().supports_jit() {
            return; // nothing to test on non-x86-64 hosts
        }
        // args layout: [out: *mut f32, a: *const f32, b: *const f32,
        //               n: u64, k: *const f32]
        let mut a = Asm::new();
        use asm::Reg::*;
        a.mov_r_m(R8, Rdi, 0); // out
        a.mov_r_m(R9, Rdi, 8); // a
        a.mov_r_m(R10, Rdi, 16); // b
        a.mov_r_m(Rdx, Rdi, 24); // n
        a.mov_r_m(R11, Rdi, 32); // k
        a.vbroadcastss(Ymm(1), R11, 0); // ymm1 = splat k
        a.xor_r(Rcx);
        let vec_top = a.new_label();
        let tail = a.new_label();
        let done = a.new_label();
        a.bind(vec_top);
        a.lea(Rax, Rcx, 8);
        a.cmp_r_r(Rax, Rdx);
        a.jcc(Cc::A, tail);
        a.vmovups_load(Ymm(0), R10, Some(Rcx), 0); // b[i..]
        a.vmulps_rr(Ymm(0), Ymm(1), Ymm(0)); // k*b
        a.vaddps_rm(Ymm(0), Ymm(0), R9, Some(Rcx), 0); // + a[i..]
        a.vmovups_store(R8, Some(Rcx), 0, Ymm(0));
        a.add_r_imm(Rcx, 8);
        a.jmp(vec_top);
        a.bind(tail);
        a.cmp_r_r(Rcx, Rdx);
        a.jcc(Cc::Ae, done);
        a.vmovss_load(Ymm(0), R10, Some(Rcx), 0);
        a.vmulss_rm(Ymm(0), Ymm(0), R11, None, 0);
        a.vaddss_rm(Ymm(0), Ymm(0), R9, Some(Rcx), 0);
        a.vmovss_store(R8, Some(Rcx), 0, Ymm(0));
        a.inc_r(Rcx);
        a.jmp(tail);
        a.bind(done);
        a.vzeroupper();
        a.ret();

        let m = ctx.finalize(a).expect("finalize");
        let n = 13usize; // one full strip + 5-point tail
        let av: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let bv: Vec<f32> = (0..n).map(|i| (i as f32) - 3.0).collect();
        let mut out = vec![0.0f32; n];
        let k = 2.0f32;
        #[repr(C)]
        struct Args {
            out: *mut f32,
            a: *const f32,
            b: *const f32,
            n: u64,
            k: *const f32,
        }
        let mut args = Args {
            out: out.as_mut_ptr(),
            a: av.as_ptr(),
            b: bv.as_ptr(),
            n: n as u64,
            k: &k,
        };
        unsafe { m.call(&mut args as *mut Args as *mut u8) };
        for i in 0..n {
            let want = av[i] + k * bv[i];
            assert_eq!(out[i].to_bits(), want.to_bits(), "i={i}");
        }
    }

    #[test]
    fn div_matches_ieee() {
        let ctx = JitContext::new();
        if !ctx.target().supports_jit() {
            return;
        }
        // out[0] = 1.0 / x  — args: [out, x, one]
        let mut a = Asm::new();
        use asm::Reg::*;
        a.mov_r_m(R8, Rdi, 0);
        a.mov_r_m(R9, Rdi, 8);
        a.mov_r_m(R10, Rdi, 16);
        a.vmovss_load(Ymm(0), R9, None, 0);
        a.vmovss_load(Ymm(1), R10, None, 0);
        a.vdivss_rr(Ymm(0), Ymm(1), Ymm(0)); // 1.0 / x
        a.vmovss_store(R8, None, 0, Ymm(0));
        a.vzeroupper();
        a.ret();
        let m = ctx.finalize(a).unwrap();
        for x in [3.0f32, 0.1, -7.25, 1e-20] {
            let mut out = 0.0f32;
            let one = 1.0f32;
            let mut args = [
                &mut out as *mut f32 as usize,
                &x as *const f32 as usize,
                &one as *const f32 as usize,
            ];
            unsafe { m.call(args.as_mut_ptr() as *mut u8) };
            assert_eq!(out.to_bits(), (1.0f32 / x).to_bits(), "x={x}");
        }
    }
}
