//! x86-64 instruction builder: the general-purpose and AVX (VEX-encoded)
//! subset a finite-difference kernel body needs, with label-based rel32
//! branch fixups.
//!
//! Encoding conventions, chosen for uniformity over code size:
//!
//! * Memory operands are always `mod=10` (disp32) with a SIB byte —
//!   `[base + index*4 + disp32]` when an index register is given (the
//!   index is an f32 *element* counter, hence the fixed ×4 scale) or
//!   `[base + disp32]` without one. One form, no special cases for
//!   RBP/R12-class registers.
//! * Vector instructions always use the 3-byte `C4` VEX prefix, 256-bit
//!   (`L=1`) for the packed `ps` forms and `L=0` for the scalar `ss`
//!   forms. No legacy-SSE encodings are emitted, so `vzeroupper` before
//!   `ret` is the only transition-penalty concern.
//! * Three-operand AVX ops follow the VEX convention
//!   `op dst, src1, src2/mem`: `dst` in ModRM.reg, `src1` in `vvvv`,
//!   `src2` in ModRM.rm.

/// General-purpose 64-bit registers (hardware encoding in the value).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    #[inline]
    fn num(self) -> u8 {
        self as u8
    }
}

/// AVX vector register ymm0–ymm15.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ymm(pub u8);

/// Condition codes for `jcc` (unsigned compares + equality).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cc {
    /// Above (unsigned >).
    A,
    /// Above or equal (unsigned >=).
    Ae,
    /// Below (unsigned <).
    B,
    /// Below or equal (unsigned <=).
    Be,
    /// Equal.
    E,
    /// Not equal.
    Ne,
}

impl Cc {
    fn opcode(self) -> u8 {
        // Second byte of the 0F 8x near-jcc encoding.
        match self {
            Cc::A => 0x87,
            Cc::Ae => 0x83,
            Cc::B => 0x82,
            Cc::Be => 0x86,
            Cc::E => 0x84,
            Cc::Ne => 0x85,
        }
    }
}

/// A branch target; create with [`Asm::new_label`], place with
/// [`Asm::bind`]. Forward and backward references both work — rel32
/// displacements are patched in [`Asm::finish`].
#[derive(Clone, Copy, Debug)]
pub struct Label(usize);

/// Instruction buffer.
pub struct Asm {
    code: Vec<u8>,
    labels: Vec<Option<usize>>,
    /// `(offset of rel32 field, label)` pairs to patch at finish.
    fixups: Vec<(usize, usize)>,
}

impl Asm {
    pub fn new() -> Asm {
        Asm {
            code: Vec::with_capacity(256),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Current length in bytes (diagnostics).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Resolve all label fixups and return the finished machine code.
    ///
    /// Panics on a referenced-but-unbound label: that is a codegen bug,
    /// never a data-dependent condition.
    pub fn finish(mut self) -> Vec<u8> {
        for &(pos, label) in &self.fixups {
            let target = self.labels[label].expect("branch to unbound label");
            let rel = target as i64 - (pos as i64 + 4);
            let rel32 = i32::try_from(rel).expect("branch displacement exceeds rel32");
            self.code[pos..pos + 4].copy_from_slice(&rel32.to_le_bytes());
        }
        self.code
    }

    // ---- labels & branches ------------------------------------------

    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.code.len());
    }

    fn rel32(&mut self, l: Label) {
        self.fixups.push((self.code.len(), l.0));
        self.code.extend_from_slice(&[0, 0, 0, 0]);
    }

    /// `jmp rel32`.
    pub fn jmp(&mut self, l: Label) {
        self.code.push(0xE9);
        self.rel32(l);
    }

    /// `jcc rel32`.
    pub fn jcc(&mut self, cc: Cc, l: Label) {
        self.code.push(0x0F);
        self.code.push(cc.opcode());
        self.rel32(l);
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.code.push(0xC3);
    }

    // ---- encoding helpers -------------------------------------------

    fn rex_w(&mut self, reg: u8, index: u8, base: u8) {
        self.code
            .push(0x48 | ((reg >> 3) & 1) << 2 | ((index >> 3) & 1) << 1 | ((base >> 3) & 1));
    }

    /// ModRM + SIB + disp32 for `[base + index*4 + disp]` (index is an
    /// f32 element count) or `[base + disp]`.
    fn mem(&mut self, reg: u8, base: u8, index: Option<u8>, disp: i32) {
        self.code.push(0b1000_0100 | (reg & 7) << 3); // mod=10, rm=SIB
        let (scale_bits, idx) = match index {
            Some(i) => {
                assert!(i != Reg::Rsp as u8, "rsp cannot be an index register");
                (2u8, i & 7) // scale ×4
            }
            None => (0u8, 4), // index=100: none
        };
        self.code.push(scale_bits << 6 | idx << 3 | (base & 7));
        self.code.extend_from_slice(&disp.to_le_bytes());
    }

    fn modrm_rr(&mut self, reg: u8, rm: u8) {
        self.code.push(0xC0 | (reg & 7) << 3 | (rm & 7));
    }

    /// 3-byte VEX prefix. `mmmmm`: 1 = 0F map, 2 = 0F38 map. `pp`:
    /// 0 = none, 1 = 66, 2 = F3, 3 = F2. One parameter per VEX field —
    /// collapsing them into a struct would only obscure the encoding.
    #[allow(clippy::too_many_arguments)]
    fn vex3(&mut self, reg: u8, index: u8, base: u8, mmmmm: u8, vvvv: u8, l: u8, pp: u8) {
        self.code.push(0xC4);
        self.code.push(
            (!(reg >> 3) & 1) << 7 | (!(index >> 3) & 1) << 6 | (!(base >> 3) & 1) << 5 | mmmmm,
        );
        // W=0 for every instruction we emit.
        self.code.push((!vvvv & 0xF) << 3 | l << 2 | pp);
    }

    // ---- general-purpose ops ----------------------------------------

    /// `mov dst, qword [base + disp]`.
    pub fn mov_r_m(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex_w(dst.num(), 0, base.num());
        self.code.push(0x8B);
        self.mem(dst.num(), base.num(), None, disp);
    }

    /// `mov dst, src` (64-bit).
    pub fn mov_r_r(&mut self, dst: Reg, src: Reg) {
        self.rex_w(dst.num(), 0, src.num());
        self.code.push(0x8B);
        self.modrm_rr(dst.num(), src.num());
    }

    /// `lea dst, [base + disp]`.
    pub fn lea(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex_w(dst.num(), 0, base.num());
        self.code.push(0x8D);
        self.mem(dst.num(), base.num(), None, disp);
    }

    /// `add reg, imm32` (sign-extended).
    pub fn add_r_imm(&mut self, reg: Reg, imm: i32) {
        self.rex_w(0, 0, reg.num());
        self.code.push(0x81);
        self.modrm_rr(0, reg.num());
        self.code.extend_from_slice(&imm.to_le_bytes());
    }

    /// `cmp a, b` (64-bit; sets flags for `a <op> b`).
    pub fn cmp_r_r(&mut self, a: Reg, b: Reg) {
        self.rex_w(b.num(), 0, a.num());
        self.code.push(0x39);
        self.modrm_rr(b.num(), a.num());
    }

    /// `inc reg` (64-bit).
    pub fn inc_r(&mut self, reg: Reg) {
        self.rex_w(0, 0, reg.num());
        self.code.push(0xFF);
        self.modrm_rr(0, reg.num());
    }

    /// `xor reg, reg` — zero a register.
    pub fn xor_r(&mut self, reg: Reg) {
        self.rex_w(reg.num(), 0, reg.num());
        self.code.push(0x31);
        self.modrm_rr(reg.num(), reg.num());
    }

    // ---- AVX: moves and broadcast -----------------------------------

    /// `vmovups dst, ymmword [base + index*4 + disp]`.
    pub fn vmovups_load(&mut self, dst: Ymm, base: Reg, index: Option<Reg>, disp: i32) {
        let x = index.map_or(0, Reg::num);
        self.vex3(dst.0, x, base.num(), 1, 0, 1, 0);
        self.code.push(0x10);
        self.mem(dst.0, base.num(), index.map(Reg::num), disp);
    }

    /// `vmovups ymmword [base + index*4 + disp], src`.
    pub fn vmovups_store(&mut self, base: Reg, index: Option<Reg>, disp: i32, src: Ymm) {
        let x = index.map_or(0, Reg::num);
        self.vex3(src.0, x, base.num(), 1, 0, 1, 0);
        self.code.push(0x11);
        self.mem(src.0, base.num(), index.map(Reg::num), disp);
    }

    /// `vmovups dst, src` — full-width register move.
    pub fn vmovups_rr(&mut self, dst: Ymm, src: Ymm) {
        self.vex3(dst.0, 0, src.0, 1, 0, 1, 0);
        self.code.push(0x10);
        self.modrm_rr(dst.0, src.0);
    }

    /// `vbroadcastss dst, dword [base + disp]` — splat one f32 to all
    /// eight lanes.
    pub fn vbroadcastss(&mut self, dst: Ymm, base: Reg, disp: i32) {
        self.vex3(dst.0, 0, base.num(), 2, 0, 1, 1);
        self.code.push(0x18);
        self.mem(dst.0, base.num(), None, disp);
    }

    /// `vmovss dst, dword [base + index*4 + disp]`.
    pub fn vmovss_load(&mut self, dst: Ymm, base: Reg, index: Option<Reg>, disp: i32) {
        let x = index.map_or(0, Reg::num);
        self.vex3(dst.0, x, base.num(), 1, 0, 0, 2);
        self.code.push(0x10);
        self.mem(dst.0, base.num(), index.map(Reg::num), disp);
    }

    /// `vmovss dword [base + index*4 + disp], src`.
    pub fn vmovss_store(&mut self, base: Reg, index: Option<Reg>, disp: i32, src: Ymm) {
        let x = index.map_or(0, Reg::num);
        self.vex3(src.0, x, base.num(), 1, 0, 0, 2);
        self.code.push(0x11);
        self.mem(src.0, base.num(), index.map(Reg::num), disp);
    }

    // ---- AVX: packed arithmetic (256-bit) ---------------------------

    /// `vaddps dst, a, b`.
    pub fn vaddps_rr(&mut self, dst: Ymm, a: Ymm, b: Ymm) {
        self.ps_rr(0x58, dst, a, b);
    }

    /// `vaddps dst, a, ymmword [base + index*4 + disp]`.
    pub fn vaddps_rm(&mut self, dst: Ymm, a: Ymm, base: Reg, index: Option<Reg>, disp: i32) {
        self.ps_rm(0x58, dst, a, base, index, disp);
    }

    /// `vmulps dst, a, b`.
    pub fn vmulps_rr(&mut self, dst: Ymm, a: Ymm, b: Ymm) {
        self.ps_rr(0x59, dst, a, b);
    }

    /// `vmulps dst, a, ymmword [base + index*4 + disp]`.
    pub fn vmulps_rm(&mut self, dst: Ymm, a: Ymm, base: Reg, index: Option<Reg>, disp: i32) {
        self.ps_rm(0x59, dst, a, base, index, disp);
    }

    /// `vsubps dst, a, b` (computes `a - b`).
    pub fn vsubps_rr(&mut self, dst: Ymm, a: Ymm, b: Ymm) {
        self.ps_rr(0x5C, dst, a, b);
    }

    /// `vdivps dst, a, b` (computes `a / b`).
    pub fn vdivps_rr(&mut self, dst: Ymm, a: Ymm, b: Ymm) {
        self.ps_rr(0x5E, dst, a, b);
    }

    fn ps_rr(&mut self, op: u8, dst: Ymm, a: Ymm, b: Ymm) {
        self.vex3(dst.0, 0, b.0, 1, a.0, 1, 0);
        self.code.push(op);
        self.modrm_rr(dst.0, b.0);
    }

    fn ps_rm(&mut self, op: u8, dst: Ymm, a: Ymm, base: Reg, index: Option<Reg>, disp: i32) {
        let x = index.map_or(0, Reg::num);
        self.vex3(dst.0, x, base.num(), 1, a.0, 1, 0);
        self.code.push(op);
        self.mem(dst.0, base.num(), index.map(Reg::num), disp);
    }

    // ---- AVX: scalar arithmetic -------------------------------------

    /// `vaddss dst, a, b`.
    pub fn vaddss_rr(&mut self, dst: Ymm, a: Ymm, b: Ymm) {
        self.ss_rr(0x58, dst, a, b);
    }

    /// `vaddss dst, a, dword [base + index*4 + disp]`.
    pub fn vaddss_rm(&mut self, dst: Ymm, a: Ymm, base: Reg, index: Option<Reg>, disp: i32) {
        self.ss_rm(0x58, dst, a, base, index, disp);
    }

    /// `vmulss dst, a, b`.
    pub fn vmulss_rr(&mut self, dst: Ymm, a: Ymm, b: Ymm) {
        self.ss_rr(0x59, dst, a, b);
    }

    /// `vmulss dst, a, dword [base + index*4 + disp]`.
    pub fn vmulss_rm(&mut self, dst: Ymm, a: Ymm, base: Reg, index: Option<Reg>, disp: i32) {
        self.ss_rm(0x59, dst, a, base, index, disp);
    }

    /// `vsubss dst, a, b` (computes `a - b`).
    pub fn vsubss_rr(&mut self, dst: Ymm, a: Ymm, b: Ymm) {
        self.ss_rr(0x5C, dst, a, b);
    }

    /// `vdivss dst, a, b` (computes `a / b`).
    pub fn vdivss_rr(&mut self, dst: Ymm, a: Ymm, b: Ymm) {
        self.ss_rr(0x5E, dst, a, b);
    }

    fn ss_rr(&mut self, op: u8, dst: Ymm, a: Ymm, b: Ymm) {
        self.vex3(dst.0, 0, b.0, 1, a.0, 0, 2);
        self.code.push(op);
        self.modrm_rr(dst.0, b.0);
    }

    fn ss_rm(&mut self, op: u8, dst: Ymm, a: Ymm, base: Reg, index: Option<Reg>, disp: i32) {
        let x = index.map_or(0, Reg::num);
        self.vex3(dst.0, x, base.num(), 1, a.0, 0, 2);
        self.code.push(op);
        self.mem(dst.0, base.num(), index.map(Reg::num), disp);
    }

    /// `vzeroupper` — required before returning to SSE-unaware code.
    pub fn vzeroupper(&mut self) {
        self.code.extend_from_slice(&[0xC5, 0xF8, 0x77]);
    }
}

impl Default for Asm {
    fn default() -> Self {
        Asm::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-exact checks against hand-assembled references (verified
    /// against the Intel SDM encoding tables).
    #[test]
    fn known_encodings() {
        // vmovups ymm0, [rax + rcx*4 + 16]
        let mut a = Asm::new();
        a.vmovups_load(Ymm(0), Reg::Rax, Some(Reg::Rcx), 16);
        assert_eq!(
            a.finish(),
            vec![0xC4, 0xE1, 0x7C, 0x10, 0x84, 0x88, 16, 0, 0, 0]
        );

        // vbroadcastss ymm13, [r8 + 4]
        let mut a = Asm::new();
        a.vbroadcastss(Ymm(13), Reg::R8, 4);
        assert_eq!(
            a.finish(),
            vec![0xC4, 0x42, 0x7D, 0x18, 0xAC, 0x20, 4, 0, 0, 0]
        );

        // vaddps ymm1, ymm2, ymm3 ; vzeroupper ; ret
        let mut a = Asm::new();
        a.vaddps_rr(Ymm(1), Ymm(2), Ymm(3));
        a.vzeroupper();
        a.ret();
        assert_eq!(
            a.finish(),
            vec![0xC4, 0xE1, 0x6C, 0x58, 0xCB, 0xC5, 0xF8, 0x77, 0xC3]
        );

        // mov rdx, [rdi + 24]
        let mut a = Asm::new();
        a.mov_r_m(Reg::Rdx, Reg::Rdi, 24);
        assert_eq!(a.finish(), vec![0x48, 0x8B, 0x94, 0x27, 24, 0, 0, 0]);
    }

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new();
        let top = a.new_label();
        let out = a.new_label();
        a.bind(top);
        a.inc_r(Reg::Rcx); // 3 bytes
        a.cmp_r_r(Reg::Rcx, Reg::Rdx); // 3 bytes
        a.jcc(Cc::Ae, out); // 6 bytes
        a.jmp(top); // 5 bytes
        a.bind(out);
        a.ret();
        let code = a.finish();
        // jcc rel32 at offset 6, field at 8, next insn at 12, target 17.
        assert_eq!(&code[8..12], &5i32.to_le_bytes());
        // jmp rel32 field at 13, next insn at 17, target 0 → rel -17.
        assert_eq!(&code[13..17], &(-17i32).to_le_bytes());
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.jmp(l);
        a.finish();
    }
}
