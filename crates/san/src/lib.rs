//! `mpix-san` — a happens-before sanitizer for the simulated MPI
//! substrate (`mpix-comm`) and the distributed arrays layered on it.
//!
//! The static passes in `mpix-analysis` prove properties of *planned*
//! schedules; nothing there checks the *actual execution*. This crate is
//! the dynamic half of that story, in the spirit of ThreadSanitizer and
//! the MUST MPI checker: every send, receive, barrier and collective
//! ticks a per-rank [`VectorClock`], every halo exchange and unpack
//! updates coarse per-box shadow state, and five detectors turn
//! violations into the same structured [`Diagnostic`]s the static passes
//! emit — so one CI gate sees both.
//!
//! Detectors (pass names as reported):
//!
//! | pass                        | catches                                         |
//! |-----------------------------|-------------------------------------------------|
//! | `mpix-san/reuse-before-wait`| persistent-plan buffer restarted while ≥2 prior messages are still unmatched |
//! | `mpix-san/stale-halo`       | executor read of a halo box with no happens-before edge from the latest exchange |
//! | `mpix-san/msg-race`         | ambiguous (src, tag) matching: mixed plan/ad-hoc traffic on one channel |
//! | `mpix-san/slab-conflict`    | threaded space loop declaring overlapping or gapped write slabs |
//! | `mpix-san/leaked-request`   | messages still in flight when the universe finalizes |
//!
//! The sanitizer is entirely passive: it never panics and never alters
//! execution. When disabled (the default) the substrate pays exactly one
//! `Option<Arc<San>>` branch per hooked operation.
//!
//! ## Sharded state, matching the sharded substrate
//!
//! State is split so the sanitizer never reintroduces the global lock
//! the sharded mailboxes removed: per-rank clock mutexes (a rank's clock
//! is mutated only from its own events), per-`(src, dst, tag)`-hash
//! channel shards mirroring the mailbox shard idea, per-rank array
//! shadows, and separate barrier/report locks. Every hook takes one lock
//! at a time — clock snapshots travel by value between critical sections
//! — so there is no lock-order discipline to violate and the hb model
//! stays transport-agnostic. Clock ticks and merges remain *per event*
//! exactly as before; sharding changes only which mutex guards them.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use mpix_trace::{Diagnostic, Severity};

/// Pass name for detector 1: persistent send/recv buffer reuse before
/// the matching wait completed.
pub const PASS_REUSE: &str = "mpix-san/reuse-before-wait";
/// Pass name for detector 2: stale-halo reads.
pub const PASS_STALE_HALO: &str = "mpix-san/stale-halo";
/// Pass name for detector 3: ambiguous (src, tag) message matching.
pub const PASS_MSG_RACE: &str = "mpix-san/msg-race";
/// Pass name for detector 4: cross-thread slab-boundary write conflicts.
pub const PASS_SLAB: &str = "mpix-san/slab-conflict";
/// Pass name for detector 5: never-completed requests at finalize.
pub const PASS_LEAK: &str = "mpix-san/leaked-request";

/// Hard cap on retained reports; further findings are counted, not
/// stored, so a hot-loop bug cannot OOM the run it is diagnosing.
pub const MAX_REPORTS: usize = 256;

/// Number of channel-map shards. A power of two comfortably above any
/// plausible per-event contention (two ranks hit the same shard only
/// when their `(src, dst, tag)` hashes collide).
const CHANNEL_SHARDS: usize = 64;

/// A classic vector clock over `n` ranks: `clock[r]` counts the events
/// rank `r` has performed that this clock has (transitively) heard of.
///
/// `a.leq(b)` is the happens-before partial order: event A (with clock
/// snapshot `a`) happens-before event B (snapshot `b`) iff `a ≤ b`
/// pointwise. [`merge`](Self::merge) is the least upper bound, which is
/// what receiving a message (or leaving a barrier) does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    pub fn new(nranks: usize) -> VectorClock {
        VectorClock(vec![0; nranks])
    }

    /// Record one local event on `rank`.
    pub fn tick(&mut self, rank: usize) {
        self.0[rank] += 1;
    }

    /// Pointwise max — the least upper bound of two clocks.
    pub fn merge(&mut self, other: &VectorClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// `self ≤ other` pointwise: everything this clock has seen, the
    /// other has too (i.e. `self` happens-before-or-equals `other`).
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    pub fn components(&self) -> &[u64] {
        &self.0
    }
}

/// How a message entered the substrate: via a persistent plan slot or an
/// ad-hoc `send`/`isend`. The two matching disciplines must never share
/// a `(src, dst, tag)` channel — see [`PASS_MSG_RACE`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendKind {
    Adhoc,
    Persistent,
}

impl SendKind {
    fn label(self) -> &'static str {
        match self {
            SendKind::Adhoc => "ad-hoc",
            SendKind::Persistent => "persistent-plan",
        }
    }
}

/// One message the sanitizer knows is in flight: its matching
/// discipline and the sender's clock at the send event.
struct InFlight {
    kind: SendKind,
    clock: VectorClock,
}

/// Accumulator for one barrier generation: the lub of every arriving
/// rank's clock, handed back to each rank as it departs.
struct BarrierSlot {
    accum: VectorClock,
    departed: usize,
}

/// All barrier bookkeeping, under its own (cold-path) lock.
#[derive(Default)]
struct BarrierState {
    /// Next barrier generation each rank will join.
    gen: Vec<u64>,
    /// Open barrier generations (GC'd once every rank departed).
    slots: HashMap<u64, BarrierSlot>,
}

/// Coarse shadow state for one `DistArray` on one rank. Rather than
/// tracking every element, the sanitizer tracks *exchange epochs*: each
/// halo-exchange start bumps `epoch`, each completed unpack stamps its
/// halo box with the current epoch, and a read of a box stamped with an
/// older epoch has provably no happens-before edge from the remote
/// writes the exchange was supposed to deliver.
#[derive(Default)]
struct ArrayShadow {
    /// Number of exchanges begun on this array (0 = never exchanged;
    /// such arrays are not tracked at all).
    epoch: u64,
    /// Owned interior written since the last exchange began. Guards the
    /// dropped-exchange check so legitimately hoisted exchanges of
    /// constant fields are not flagged.
    dirty: bool,
    /// Per halo box (`[(lo, hi); nd]` key): the epoch whose unpack last
    /// wrote it.
    boxes: HashMap<Vec<(usize, usize)>, u64>,
    /// `(epoch, step)` of the most recent halo read.
    last_read: Option<(u64, i64)>,
    /// Epoch for which a dropped-exchange report was already emitted
    /// (one report per epoch, not one per timestep).
    reported_epoch: Option<u64>,
}

/// Report accumulation, under its own (leaf) lock.
#[derive(Default)]
struct Reports {
    reports: Vec<Diagnostic>,
    /// Reports dropped past [`MAX_REPORTS`].
    suppressed: usize,
    /// Reports already printed by `flush_to_stderr`.
    flushed: usize,
}

type ChannelMap = HashMap<(usize, usize, u32), VecDeque<InFlight>>;

/// The sanitizer. One instance is shared by every rank of a
/// [`Universe`](../mpix_comm/struct.Universe.html) run via
/// `Option<Arc<San>>`; state is sharded as described in the module docs.
pub struct San {
    nranks: usize,
    /// Per-rank vector clocks. Rank `r`'s clock is only *mutated* by
    /// events on `r`'s own thread; the mutex exists for cross-thread
    /// snapshot reads (`clock_snapshot`, barrier folds), so it is
    /// effectively uncontended.
    clocks: Vec<Mutex<VectorClock>>,
    /// In-flight messages per `(src, dst, tag)` channel, FIFO — the
    /// mailbox matches in arrival order, and with a single sender thread
    /// per source rank the sanitizer's queue order equals the mailbox's.
    /// Sharded by a hash of the channel key, mirroring the mailbox
    /// shards, so concurrent sends on different channels take different
    /// locks.
    channels: Box<[Mutex<ChannelMap>]>,
    /// Shadow state per rank (inner map keyed by array id); array events
    /// are rank-local, so per-rank locks make them contention-free.
    arrays: Vec<Mutex<HashMap<usize, ArrayShadow>>>,
    barriers: Mutex<BarrierState>,
    reports: Mutex<Reports>,
    /// Set when the run is unwinding via the poison protocol; suppresses
    /// the finalize-time leak check (peers legitimately abandon traffic).
    poisoned: AtomicBool,
}

/// A poisoned mutex only means another rank panicked mid-report; the
/// state is still a consistent snapshot worth reporting from.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl San {
    pub fn new(nranks: usize) -> San {
        San {
            nranks,
            clocks: (0..nranks)
                .map(|_| Mutex::new(VectorClock::new(nranks)))
                .collect(),
            channels: (0..CHANNEL_SHARDS)
                .map(|_| Mutex::new(ChannelMap::new()))
                .collect(),
            arrays: (0..nranks).map(|_| Mutex::new(HashMap::new())).collect(),
            barriers: Mutex::new(BarrierState {
                gen: vec![0; nranks],
                slots: HashMap::new(),
            }),
            reports: Mutex::new(Reports::default()),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Build from the `MPIX_SAN` environment variable: `1`/`on`/`true`
    /// enables, `0`/`off`/`false` or unset disables, anything else
    /// panics (silently ignoring a typo'd job script is worse).
    pub fn from_env(nranks: usize) -> Option<Arc<San>> {
        match std::env::var("MPIX_SAN") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "1" | "on" | "true" => Some(Arc::new(San::new(nranks))),
                "0" | "off" | "false" => None,
                _ => panic!("MPIX_SAN={v:?}: expected 0|1|on|off|true|false"),
            },
            Err(_) => None,
        }
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Channel shard for a `(src, dst, tag)` key — the same
    /// multiplicative-hash idea as the mailbox shards.
    fn channel_shard(&self, src: usize, dst: usize, tag: u32) -> &Mutex<ChannelMap> {
        let h = (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ (tag as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
        &self.channels[((h >> 32) as usize) & (CHANNEL_SHARDS - 1)]
    }

    fn push_report(&self, d: Diagnostic) {
        let mut g = lock(&self.reports);
        if g.reports.len() < MAX_REPORTS {
            g.reports.push(d);
        } else {
            g.suppressed += 1;
        }
    }

    // ----- message events -------------------------------------------------

    /// Record a send from `src` to `dest` with `tag`. MUST be called
    /// before the envelope is pushed into the destination mailbox, so
    /// the receiver cannot match (and call [`on_recv`](Self::on_recv))
    /// first. Runs detectors 1 (reuse-before-wait) and 3 (msg-race,
    /// sender side).
    pub fn on_send(&self, src: usize, dest: usize, tag: u32, kind: SendKind) {
        let snapshot = {
            let mut c = lock(&self.clocks[src]);
            c.tick(src);
            c.clone()
        };
        // Detector findings are staged and reported after the channel
        // lock drops — every hook holds at most one shard lock at a time.
        let mut found: Vec<Diagnostic> = Vec::new();
        {
            let mut shard = lock(self.channel_shard(src, dest, tag));
            let q = shard.entry((src, dest, tag)).or_default();
            let backlog = q.len();
            let mixed = q.iter().map(|m| m.kind).find(|&k| k != kind);
            if kind == SendKind::Persistent && backlog >= 2 {
                found.push(Diagnostic::error(
                    PASS_REUSE,
                    format!("rank {src} -> rank {dest}, tag {tag}"),
                    format!(
                        "persistent-plan send restarted with {backlog} earlier message(s) \
                         from the same slot still unmatched: the plan buffer is being \
                         reused before the receiver's wait_with/try_with completed \
                         (one in-flight restart is legal pipelining; two cannot happen \
                         in a correctly synchronized exchange loop)"
                    ),
                ));
            }
            if let Some(other) = mixed {
                found.push(Diagnostic::error(
                    PASS_MSG_RACE,
                    format!("rank {src} -> rank {dest}, tag {tag}"),
                    format!(
                        "{} send queued behind an in-flight {} message on the same \
                         (src, tag) channel: FIFO matching makes the pairing of sends \
                         to receives ambiguous — either message can satisfy either \
                         completion",
                        kind.label(),
                        other.label()
                    ),
                ));
            }
            q.push_back(InFlight {
                kind,
                clock: snapshot,
            });
        }
        for d in found {
            self.push_report(d);
        }
    }

    /// Record a successful receive on `dst` of a message from `src` with
    /// `tag`. Called at every match point (ad-hoc and persistent);
    /// merges the sender's clock — the happens-before edge — and runs
    /// detector 3 (msg-race, receiver side).
    pub fn on_recv(&self, dst: usize, src: usize, tag: u32, expected: SendKind) {
        let matched = {
            let mut shard = lock(self.channel_shard(src, dst, tag));
            shard.get_mut(&(src, dst, tag)).and_then(|q| q.pop_front())
        };
        if let Some(m) = matched {
            if m.kind != expected {
                self.push_report(Diagnostic::error(
                    PASS_MSG_RACE,
                    format!("rank {src} -> rank {dst}, tag {tag}"),
                    format!(
                        "a {} receive matched a {} send: two matching disciplines \
                         share one (src, tag) channel, so which send completes \
                         which receive depends on arrival timing",
                        expected.label(),
                        m.kind.label()
                    ),
                ));
            }
            let mut c = lock(&self.clocks[dst]);
            c.merge(&m.clock);
            c.tick(dst);
        } else {
            // A miss means the message predates sanitizer attachment;
            // still count the receive as a local event.
            lock(&self.clocks[dst]).tick(dst);
        }
    }

    // ----- barrier events -------------------------------------------------

    /// Record `rank` arriving at a barrier. Call before blocking on the
    /// real barrier so every arrival is folded into the generation's
    /// accumulator before any rank can depart.
    pub fn barrier_arrive(&self, rank: usize) {
        let nranks = self.nranks;
        let snapshot = {
            let mut c = lock(&self.clocks[rank]);
            c.tick(rank);
            c.clone()
        };
        let mut b = lock(&self.barriers);
        let gen = b.gen[rank];
        let slot = b.slots.entry(gen).or_insert_with(|| BarrierSlot {
            accum: VectorClock::new(nranks),
            departed: 0,
        });
        slot.accum.merge(&snapshot);
    }

    /// Record `rank` leaving the barrier: its clock becomes the lub of
    /// every participant's arrival clock, establishing the all-pairs
    /// happens-before edge a barrier promises.
    pub fn barrier_depart(&self, rank: usize) {
        let nranks = self.nranks;
        let accum = {
            let mut b = lock(&self.barriers);
            let gen = b.gen[rank];
            b.gen[rank] += 1;
            match b.slots.get_mut(&gen) {
                Some(slot) => {
                    slot.departed += 1;
                    let accum = slot.accum.clone();
                    if slot.departed == nranks {
                        b.slots.remove(&gen);
                    }
                    accum
                }
                // Unreachable in practice: depart without arrive.
                None => VectorClock::new(nranks),
            }
        };
        let mut c = lock(&self.clocks[rank]);
        c.merge(&accum);
        c.tick(rank);
    }

    // ----- distributed-array shadow state ---------------------------------

    /// A halo exchange with at least one message is beginning on
    /// `(rank, array)`: open a new epoch. Reads that later observe a box
    /// stamped with an older epoch have no happens-before edge from this
    /// exchange's remote writes.
    pub fn exchange_begin(&self, rank: usize, array: usize) {
        let mut arrays = lock(&self.arrays[rank]);
        let sh = arrays.entry(array).or_default();
        sh.epoch += 1;
        sh.dirty = false;
    }

    /// A receive for `bx` (the `[(lo, hi); nd]` local box) completed and
    /// its payload was unpacked into the array's halo.
    pub fn unpack(&self, rank: usize, array: usize, bx: &[(usize, usize)]) {
        let mut arrays = lock(&self.arrays[rank]);
        if let Some(sh) = arrays.get_mut(&array) {
            let epoch = sh.epoch;
            sh.boxes.insert(bx.to_vec(), epoch);
        }
    }

    /// The executor wrote the owned interior of `(rank, array)` (it is a
    /// written stream of some space loop). Arms the dropped-exchange
    /// check: stale data now *matters*.
    pub fn owned_write(&self, rank: usize, array: usize) {
        let mut arrays = lock(&self.arrays[rank]);
        if let Some(sh) = arrays.get_mut(&array) {
            sh.dirty = true;
        }
    }

    /// The executor is about to read `(rank, array)` with a nonzero
    /// stencil radius in a region that includes halo points, at timestep
    /// `step`. Runs detector 2, both flavors:
    ///
    /// * a box stamped with an older epoch than the current one means an
    ///   exchange *began* but this box's receive never completed before
    ///   the read (skipped/raced wait);
    /// * a repeat read in a *later* step with no intervening exchange,
    ///   while the owned interior changed, means the exchange that
    ///   should separate the steps was dropped or wrongly hoisted.
    ///
    /// Untracked arrays (never exchanged) are ignored: a read-only or
    /// boundary-only field with no exchange is not an error.
    pub fn halo_read(&self, rank: usize, array: usize, step: i64) {
        let mut found: Vec<Diagnostic> = Vec::new();
        {
            let mut arrays = lock(&self.arrays[rank]);
            let Some(sh) = arrays.get_mut(&array) else {
                return;
            };
            let epoch = sh.epoch;
            let mut stale: Vec<(Vec<(usize, usize)>, u64)> = Vec::new();
            for (k, e) in sh.boxes.iter_mut() {
                if *e < epoch {
                    stale.push((k.clone(), *e));
                    // Re-stamp so one missed wait yields one report per
                    // box, not one per read.
                    *e = epoch;
                }
            }
            let dropped = match sh.last_read {
                Some((le, ls)) if le == epoch && ls != step && sh.dirty => {
                    if sh.reported_epoch != Some(epoch) {
                        sh.reported_epoch = Some(epoch);
                        Some(ls)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            sh.last_read = Some((epoch, step));
            for (k, e) in stale {
                found.push(Diagnostic::error(
                    PASS_STALE_HALO,
                    format!("rank {rank} array {array:#x} box {}", fmt_box(&k)),
                    format!(
                        "halo box read at step {step} before its receive completed: \
                         exchange epoch {epoch} was begun but the box was last \
                         unpacked in epoch {e} — the read has no happens-before \
                         edge from the remote write it depends on"
                    ),
                ));
            }
            if let Some(ls) = dropped {
                found.push(Diagnostic::error(
                    PASS_STALE_HALO,
                    format!("rank {rank} array {array:#x}"),
                    format!(
                        "halo re-read at step {step} with no exchange since the read \
                         at step {ls}, although the owned interior changed in \
                         between: the separating exchange was dropped or wrongly \
                         hoisted, so neighbor contributions are one step stale"
                    ),
                ));
            }
        }
        for d in found {
            self.push_report(d);
        }
    }

    // ----- threaded slab partition ----------------------------------------

    /// A threaded space loop on `rank` is about to write `total` (a
    /// dim-0 row range) through per-worker slabs `declared`. Slabs must
    /// tile `total` exactly: any pairwise overlap is a cross-thread
    /// write conflict, any gap leaves rows silently not updated. Runs
    /// detector 4.
    pub fn slab_partition(&self, rank: usize, total: (usize, usize), declared: &[(usize, usize)]) {
        let mut cursor = total.0;
        for (i, &(lo, hi)) in declared.iter().enumerate() {
            if lo >= hi {
                continue; // empty slab: no writes, nothing to conflict
            }
            if lo < cursor {
                let prev = i.saturating_sub(1);
                self.push_report(Diagnostic::error(
                    PASS_SLAB,
                    format!("rank {rank} threaded space loop, workers {prev}/{i}"),
                    format!(
                        "write slabs overlap on rows [{lo}, {cursor}): two worker \
                         threads update the same rows of the same stream \
                         concurrently — a cross-thread write conflict"
                    ),
                ));
            } else if lo > cursor {
                self.push_report(Diagnostic::error(
                    PASS_SLAB,
                    format!("rank {rank} threaded space loop, worker {i}"),
                    format!(
                        "write slabs leave rows [{cursor}, {lo}) of [{}, {}) \
                         uncovered: those rows are silently never updated this \
                         step",
                        total.0, total.1
                    ),
                ));
            }
            cursor = cursor.max(hi);
        }
        if cursor < total.1 {
            self.push_report(Diagnostic::error(
                PASS_SLAB,
                format!("rank {rank} threaded space loop"),
                format!(
                    "write slabs leave trailing rows [{cursor}, {}) uncovered: \
                     those rows are silently never updated this step",
                    total.1
                ),
            ));
        }
    }

    // ----- lifecycle ------------------------------------------------------

    /// Run the finalize-time checks once every rank has joined cleanly:
    /// any message still in flight was sent but never received (detector
    /// 5). Skipped on poisoned runs — peers legitimately abandon
    /// in-flight traffic while unwinding.
    pub fn finalize(&self) {
        if self.poisoned.load(Ordering::SeqCst) {
            return;
        }
        let mut leaked: Vec<((usize, usize, u32), usize, SendKind)> = Vec::new();
        for shard in self.channels.iter() {
            let g = lock(shard);
            leaked.extend(
                g.iter()
                    .filter(|(_, q)| !q.is_empty())
                    .map(|(&k, q)| (k, q.len(), q.front().map(|m| m.kind).unwrap())),
            );
        }
        leaked.sort_by_key(|&(k, _, _)| k);
        for ((src, dst, tag), n, kind) in leaked {
            self.push_report(Diagnostic::error(
                PASS_LEAK,
                format!("rank {src} -> rank {dst}, tag {tag}"),
                format!(
                    "{n} {} message(s) were still in flight at finalize: the \
                     matching receive/wait never ran, so the communication this \
                     schedule planned never completed",
                    kind.label()
                ),
            ));
        }
    }

    /// Mark the run as unwinding via the poison protocol. Disables the
    /// finalize-time leak check; already-collected reports are kept so
    /// they can be flushed before the panic is re-raised.
    pub fn set_poisoned(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }

    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Print any not-yet-printed reports to stderr (without draining —
    /// [`take_reports`](Self::take_reports) still returns them). Used
    /// both at normal completion and, crucially, on the poison path:
    /// diagnostics must not be lost on exactly the runs that fail.
    pub fn flush_to_stderr(&self) {
        let mut g = lock(&self.reports);
        if g.flushed == g.reports.len() && g.suppressed == 0 {
            return;
        }
        for d in &g.reports[g.flushed..] {
            eprintln!("mpix-san: {d}");
        }
        g.flushed = g.reports.len();
        if g.suppressed > 0 {
            eprintln!(
                "mpix-san: {} further report(s) suppressed past the {MAX_REPORTS}-report cap",
                g.suppressed
            );
        }
    }

    /// Drain all collected reports (adding a summary line for any
    /// suppressed past the cap).
    pub fn take_reports(&self) -> Vec<Diagnostic> {
        let mut g = lock(&self.reports);
        let mut out = std::mem::take(&mut g.reports);
        g.flushed = 0;
        if g.suppressed > 0 {
            out.push(Diagnostic::new(
                Severity::Info,
                "mpix-san",
                "report cap",
                format!(
                    "{} further report(s) suppressed past the {MAX_REPORTS}-report cap",
                    g.suppressed
                ),
            ));
            g.suppressed = 0;
        }
        out
    }

    /// Non-draining view of the current reports (tests).
    pub fn snapshot_reports(&self) -> Vec<Diagnostic> {
        lock(&self.reports).reports.clone()
    }

    pub fn has_reports(&self) -> bool {
        let g = lock(&self.reports);
        !g.reports.is_empty() || g.suppressed > 0
    }

    /// Snapshot of `rank`'s current vector clock (tests and debugging).
    pub fn clock_snapshot(&self, rank: usize) -> VectorClock {
        lock(&self.clocks[rank]).clone()
    }
}

fn fmt_box(b: &[(usize, usize)]) -> String {
    let dims: Vec<String> = b.iter().map(|(lo, hi)| format!("{lo}..{hi}")).collect();
    format!("[{}]", dims.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_merge_is_lub_and_leq_is_partial_order() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        let mut m = a.clone();
        m.merge(&b);
        assert!(a.leq(&m));
        assert!(b.leq(&m));
        assert_eq!(m.components(), &[2, 1, 0]);
    }

    #[test]
    fn send_recv_establishes_happens_before() {
        let san = San::new(2);
        san.on_send(0, 1, 7, SendKind::Adhoc);
        let at_send = san.clock_snapshot(0);
        san.on_recv(1, 0, 7, SendKind::Adhoc);
        assert!(at_send.leq(&san.clock_snapshot(1)));
        assert!(!san.has_reports());
    }

    #[test]
    fn single_restart_is_legal_double_restart_reports() {
        let san = San::new(2);
        san.on_send(0, 1, 3, SendKind::Persistent);
        san.on_send(0, 1, 3, SendKind::Persistent); // backlog 1: pipelining
        assert!(!san.has_reports());
        san.on_send(0, 1, 3, SendKind::Persistent); // backlog 2: reuse
        let reports = san.snapshot_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].pass, PASS_REUSE);
    }

    #[test]
    fn adhoc_queue_depth_is_never_flagged() {
        let san = San::new(2);
        for _ in 0..10 {
            san.on_send(0, 1, 5, SendKind::Adhoc);
        }
        assert!(!san.has_reports());
        san.finalize();
        // ...but finalize sees them as leaked.
        let reports = san.snapshot_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].pass, PASS_LEAK);
    }

    #[test]
    fn slab_overlap_and_gap_both_report() {
        let san = San::new(1);
        san.slab_partition(0, (0, 10), &[(0, 5), (5, 10)]);
        assert!(!san.has_reports());
        san.slab_partition(0, (0, 10), &[(0, 6), (5, 10)]);
        san.slab_partition(0, (0, 10), &[(0, 4), (5, 10)]);
        san.slab_partition(0, (0, 10), &[(0, 5), (5, 9)]);
        let reports = san.snapshot_reports();
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|d| d.pass == PASS_SLAB));
    }

    #[test]
    fn report_cap_suppresses_floods() {
        let san = San::new(1);
        for _ in 0..(MAX_REPORTS + 40) {
            san.slab_partition(0, (0, 10), &[(0, 6), (5, 10)]);
        }
        assert_eq!(san.snapshot_reports().len(), MAX_REPORTS);
        let taken = san.take_reports();
        assert_eq!(taken.len(), MAX_REPORTS + 1);
        assert_eq!(taken.last().unwrap().severity, Severity::Info);
        assert!(!san.has_reports());
    }

    /// Channels in different shards (and the same shard) keep their
    /// independent FIFO disciplines: leak detection still sees every
    /// channel exactly once, in sorted key order.
    #[test]
    fn finalize_aggregates_across_channel_shards() {
        let san = San::new(4);
        san.on_send(0, 1, 7, SendKind::Adhoc);
        san.on_send(2, 3, 9, SendKind::Persistent);
        san.on_send(1, 0, 7, SendKind::Adhoc);
        san.on_recv(0, 1, 7, SendKind::Adhoc);
        san.finalize();
        let reports = san.snapshot_reports();
        assert_eq!(reports.len(), 2, "two channels still hold traffic");
        assert!(reports.iter().all(|d| d.pass == PASS_LEAK));
        // Sorted by (src, dst, tag): (0,1,7) before (2,3,9).
        assert!(reports[0].location.contains("rank 0 -> rank 1"));
        assert!(reports[1].location.contains("rank 2 -> rank 3"));
    }
}
