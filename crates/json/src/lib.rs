//! A minimal JSON library: a [`Value`] tree, a strict parser, compact and
//! pretty writers, and a small [`json!`] macro.
//!
//! The build environment has no registry access, so the workspace cannot
//! pull `serde`/`serde_json`. Everything the repo serializes (perf models,
//! trace reports, `PerfSummary`) goes through this crate instead. Object
//! key order is preserved (insertion order), which keeps emitted reports
//! stable and diffable.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers are carried as `f64` (as in JavaScript).
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup; `None` on non-arrays or out of range.
    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Arr(items) => items.get(i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64)
    }

    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().filter(|n| n.fract() == 0.0).map(|n| n as i64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parse a JSON document. Strict: trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Compact one-line rendering (same as `to_string()`).
    pub fn compact(&self) -> String {
        self.to_string()
    }

    /// Human-oriented rendering with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(depth + 1));
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Value::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(depth + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
            _ => out.push_str(&self.to_string()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write_num(f, *n),
            Value::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no Inf/NaN; emit null like serde_json does by default.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else {
        // Rust's shortest-roundtrip float formatting.
        write!(f, "{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are out of scope for the data
                            // we emit; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            offset: start,
            message: format!("bad number '{text}'"),
        })
    }
}

// ------------------------------------------------------------- conversions

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

macro_rules! from_num {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Num(v as f64)
            }
        })*
    };
}
from_num!(f64, f32, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::Str(v.clone())
    }
}

// `json!` arms can nest other `json!` calls thanks to the std reflexive
// `impl From<T> for T`.

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Arr(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

impl<K: Into<String>, T: Into<Value>> FromIterator<(K, T)> for Value {
    fn from_iter<I: IntoIterator<Item = (K, T)>>(iter: I) -> Value {
        Value::Obj(
            iter.into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }
}

impl<V: Into<Value> + Clone> From<&BTreeMap<String, V>> for Value {
    fn from(m: &BTreeMap<String, V>) -> Value {
        Value::Obj(
            m.iter()
                .map(|(k, v)| (k.clone(), v.clone().into()))
                .collect(),
        )
    }
}

/// Build a [`Value`] from literal-ish syntax. Values are ordinary
/// expressions converted through `Into<Value>`; nest objects/arrays by
/// nesting `json!` calls:
///
/// ```
/// use mpix_json::json;
/// let v = json!({ "name": "acoustic", "gpts": 1.25, "modes": json!([1, 2]) });
/// assert_eq!(v.get("gpts").unwrap().as_f64(), Some(1.25));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Arr(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Obj(vec![ $( ($key.to_string(), $crate::Value::from($val)) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = json!({
            "name": "acoustic",
            "ok": true,
            "none": json!(null),
            "gpts": 1.25,
            "counts": json!([1, 2, 3]),
            "nested": json!({ "a": "x\"y\n", "b": -0.5 }),
        });
        for text in [v.to_string(), v.pretty()] {
            assert_eq!(Value::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(json!(3.0).to_string(), "3");
        assert_eq!(json!(3.5).to_string(), "3.5");
        assert_eq!(json!(-0.0).to_string(), "0");
    }

    #[test]
    fn parse_errors_carry_offset() {
        let e = Value::parse("{\"a\": }").unwrap_err();
        assert_eq!(e.offset, 6);
        assert!(Value::parse("[1, 2,]").is_err());
        assert!(Value::parse("true false").is_err());
    }

    #[test]
    fn accessors() {
        let v = Value::parse(r#"{"a": [10, {"b": "c"}], "d": 2e3}"#).unwrap();
        assert_eq!(v.get("d").unwrap().as_f64(), Some(2000.0));
        assert_eq!(v.get("a").unwrap().idx(0).unwrap().as_u64(), Some(10));
        assert_eq!(
            v.get("a")
                .unwrap()
                .idx(1)
                .unwrap()
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("tab\t newline\n quote\" back\\ ctrl\u{01}".to_string());
        assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Value::parse(r#""A""#).unwrap(), Value::Str("A".into()));
    }
}
