//! The cross-rank [`PerfSummary`] aggregated by `core::Operator::run` —
//! the paper's §IV per-run readout (GPts/s, achieved GFlops/s vs. the
//! roofline ceiling, halo-wait share, message histograms).

use mpix_json::{json, Value};

use crate::{Diagnostic, MsgDir, MsgRecord, Section, TraceReport};

/// Message-size histogram with power-of-two byte buckets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MsgHistogram {
    /// `(bucket_max_bytes, messages)` sorted ascending; a message of `b`
    /// bytes lands in the smallest bucket with `bucket_max_bytes >= b`.
    pub buckets: Vec<(u64, u64)>,
}

impl MsgHistogram {
    /// Histogram of the *sent* messages in the given logs.
    pub fn of_sends<'a>(msgs: impl IntoIterator<Item = &'a MsgRecord>) -> MsgHistogram {
        let mut h = MsgHistogram::default();
        for m in msgs {
            if m.dir == MsgDir::Sent {
                h.add(m.bytes as u64);
            }
        }
        h
    }

    pub fn add(&mut self, bytes: u64) {
        let bucket = bytes.max(1).next_power_of_two();
        match self.buckets.binary_search_by_key(&bucket, |(b, _)| *b) {
            Ok(i) => self.buckets[i].1 += 1,
            Err(i) => self.buckets.insert(i, (bucket, 1)),
        }
    }

    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|(_, n)| n).sum()
    }

    pub fn to_json(&self) -> Value {
        Value::Arr(
            self.buckets
                .iter()
                .map(|&(b, n)| json!({ "le_bytes": b, "count": n }))
                .collect(),
        )
    }

    pub fn from_json(v: &Value) -> Result<MsgHistogram, String> {
        let mut h = MsgHistogram::default();
        for e in v.as_array().ok_or("histogram not an array")? {
            h.buckets.push((
                e.get("le_bytes")
                    .and_then(Value::as_u64)
                    .ok_or("bucket missing le_bytes")?,
                e.get("count")
                    .and_then(Value::as_u64)
                    .ok_or("bucket missing count")?,
            ));
        }
        Ok(h)
    }

    fn render(&self) -> String {
        if self.buckets.is_empty() {
            return "(no messages)".to_string();
        }
        self.buckets
            .iter()
            .map(|&(b, n)| format!("≤{}: {n}", human_bytes(b)))
            .collect::<Vec<_>>()
            .join("  ")
    }
}

/// One rank's slice of the summary.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankPerf {
    pub rank: usize,
    /// Total wall seconds the executor attributed to this rank.
    pub total_secs: f64,
    pub points_updated: u64,
    /// Local throughput, points/s / 1e9.
    pub gpts: f64,
    /// Seconds per named section, indexed like [`Section::ALL`].
    pub sections: [f64; crate::NSECTIONS],
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    /// Comm-layer buffer allocations during the run (pool misses). Zero
    /// in steady state is the persistent halo-plan contract.
    pub bufs_allocated: u64,
    /// Payload bytes the comm layer physically copied during the run.
    pub bytes_copied: u64,
}

impl RankPerf {
    pub fn section_secs(&self, s: Section) -> f64 {
        self.sections[s.index()]
    }

    pub fn to_json(&self) -> Value {
        let sections: Value = Section::ALL
            .iter()
            .map(|s| (s.name(), self.sections[s.index()]))
            .collect();
        json!({
            "rank": self.rank,
            "total_secs": self.total_secs,
            "points_updated": self.points_updated,
            "gpts": self.gpts,
            "sections": sections,
            "msgs_sent": self.msgs_sent,
            "bytes_sent": self.bytes_sent,
            "bufs_allocated": self.bufs_allocated,
            "bytes_copied": self.bytes_copied,
        })
    }

    pub fn from_json(v: &Value) -> Result<RankPerf, String> {
        let mut sections = [0.0; crate::NSECTIONS];
        for (name, secs) in v.get("sections").and_then(Value::as_object).unwrap_or(&[]) {
            let s = Section::from_name(name).ok_or_else(|| format!("unknown section {name:?}"))?;
            sections[s.index()] = secs.as_f64().ok_or("section secs not a number")?;
        }
        Ok(RankPerf {
            rank: v
                .get("rank")
                .and_then(Value::as_u64)
                .ok_or("rank missing")? as usize,
            total_secs: v
                .get("total_secs")
                .and_then(Value::as_f64)
                .ok_or("total_secs missing")?,
            points_updated: v.get("points_updated").and_then(Value::as_u64).unwrap_or(0),
            gpts: v.get("gpts").and_then(Value::as_f64).unwrap_or(0.0),
            sections,
            msgs_sent: v.get("msgs_sent").and_then(Value::as_u64).unwrap_or(0),
            bytes_sent: v.get("bytes_sent").and_then(Value::as_u64).unwrap_or(0),
            bufs_allocated: v.get("bufs_allocated").and_then(Value::as_u64).unwrap_or(0),
            bytes_copied: v.get("bytes_copied").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

/// The aggregated performance readout of one `Operator::run`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfSummary {
    /// Operator/kernel label (e.g. `acoustic-so4`).
    pub kernel: String,
    /// Halo mode label (`basic`/`diag`/`full`).
    pub mode: String,
    pub ranks: usize,
    pub timesteps: i64,
    /// Global points updated per step (sum over ranks / timesteps).
    pub points_per_step: u64,
    /// Wall time of the slowest rank.
    pub total_secs: f64,
    /// Aggregate throughput: total points updated / total_secs / 1e9.
    pub gpts: f64,
    /// Analytic flops per point (from the operation counts).
    pub flops_per_point: f64,
    /// Achieved GFlops/s = gpts * flops_per_point.
    pub gflops: f64,
    /// Operational intensity (flops/byte) of the kernel.
    pub oi: f64,
    /// Roofline ceiling `min(peak, bw·oi)` in GFlops/s, if a machine
    /// model was attached.
    pub roofline_gflops: Option<f64>,
    /// Name of the machine model behind the ceiling.
    pub roofline_machine: Option<String>,
    /// Share of the slowest rank's time spent in `halo.wait`.
    pub halo_wait_fraction: f64,
    /// Sent-message size histogram aggregated over ranks (this mode).
    pub histogram: MsgHistogram,
    pub per_rank: Vec<RankPerf>,
    /// Findings from the verification passes (`mpix-analysis`), when the
    /// run was gated by `ApplyOptions::verify`; empty otherwise.
    pub diagnostics: Vec<Diagnostic>,
}

impl PerfSummary {
    /// Assemble from per-rank reports. `flops_per_point`/`oi` come from
    /// the operator's op counts; the roofline fields may be filled in
    /// afterwards by whoever owns a machine model.
    pub fn from_reports(
        kernel: impl Into<String>,
        mode: impl Into<String>,
        timesteps: i64,
        flops_per_point: f64,
        oi: f64,
        rank_totals: &[(f64, u64)], // (total_secs, points_updated) per rank
        reports: &[TraceReport],
    ) -> PerfSummary {
        let ranks = rank_totals.len();
        let total_secs = rank_totals.iter().map(|(s, _)| *s).fold(0.0, f64::max);
        let total_points: u64 = rank_totals.iter().map(|(_, p)| *p).sum();
        let gpts = if total_secs > 0.0 {
            total_points as f64 / total_secs / 1e9
        } else {
            0.0
        };

        let mut per_rank = Vec::with_capacity(ranks);
        let mut histogram = MsgHistogram::default();
        for (rank, &(secs, points)) in rank_totals.iter().enumerate() {
            let report = reports.iter().find(|r| r.rank == rank);
            let mut rp = RankPerf {
                rank,
                total_secs: secs,
                points_updated: points,
                gpts: if secs > 0.0 {
                    points as f64 / secs / 1e9
                } else {
                    0.0
                },
                ..Default::default()
            };
            if let Some(r) = report {
                for s in Section::ALL {
                    rp.sections[s.index()] = r.section_secs(s);
                }
                rp.bufs_allocated = r.bufs_allocated;
                rp.bytes_copied = r.bytes_copied;
                for m in &r.messages {
                    if m.dir == MsgDir::Sent {
                        rp.msgs_sent += 1;
                        rp.bytes_sent += m.bytes as u64;
                        histogram.add(m.bytes as u64);
                    }
                }
            }
            per_rank.push(rp);
        }

        // Halo-wait share of the slowest rank (the paper's bottleneck view).
        let halo_wait_fraction = per_rank
            .iter()
            .max_by(|a, b| a.total_secs.total_cmp(&b.total_secs))
            .map(|r| {
                if r.total_secs > 0.0 {
                    r.section_secs(Section::HaloWait) / r.total_secs
                } else {
                    0.0
                }
            })
            .unwrap_or(0.0);

        PerfSummary {
            kernel: kernel.into(),
            mode: mode.into(),
            ranks,
            timesteps,
            points_per_step: if timesteps > 0 {
                total_points / timesteps as u64
            } else {
                0
            },
            total_secs,
            gpts,
            flops_per_point,
            gflops: gpts * flops_per_point,
            oi,
            roofline_gflops: None,
            roofline_machine: None,
            halo_wait_fraction,
            histogram,
            per_rank,
            diagnostics: Vec::new(),
        }
    }

    /// Attach a roofline ceiling (GFlops/s) from a machine model.
    pub fn with_roofline(mut self, machine: impl Into<String>, ceiling_gflops: f64) -> PerfSummary {
        self.roofline_machine = Some(machine.into());
        self.roofline_gflops = Some(ceiling_gflops);
        self
    }

    /// Attach verification findings (the `mpix-analysis` pass output).
    pub fn with_diagnostics(mut self, diagnostics: Vec<Diagnostic>) -> PerfSummary {
        self.diagnostics = diagnostics;
        self
    }

    pub fn to_json(&self) -> Value {
        json!({
            "kernel": &self.kernel,
            "mode": &self.mode,
            "ranks": self.ranks,
            "timesteps": self.timesteps,
            "points_per_step": self.points_per_step,
            "total_secs": self.total_secs,
            "gpts": self.gpts,
            "flops_per_point": self.flops_per_point,
            "gflops": self.gflops,
            "oi": self.oi,
            "roofline_gflops": self.roofline_gflops,
            "roofline_machine": self.roofline_machine.clone(),
            "halo_wait_fraction": self.halo_wait_fraction,
            "histogram": self.histogram.to_json(),
            "per_rank": Value::Arr(self.per_rank.iter().map(RankPerf::to_json).collect()),
            "diagnostics": Value::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
        })
    }

    pub fn from_json(v: &Value) -> Result<PerfSummary, String> {
        let mut per_rank = Vec::new();
        for r in v.get("per_rank").and_then(Value::as_array).unwrap_or(&[]) {
            per_rank.push(RankPerf::from_json(r)?);
        }
        Ok(PerfSummary {
            kernel: v
                .get("kernel")
                .and_then(Value::as_str)
                .ok_or("kernel missing")?
                .to_string(),
            mode: v
                .get("mode")
                .and_then(Value::as_str)
                .ok_or("mode missing")?
                .to_string(),
            ranks: v
                .get("ranks")
                .and_then(Value::as_u64)
                .ok_or("ranks missing")? as usize,
            timesteps: v.get("timesteps").and_then(Value::as_i64).unwrap_or(0),
            points_per_step: v
                .get("points_per_step")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            total_secs: v.get("total_secs").and_then(Value::as_f64).unwrap_or(0.0),
            gpts: v.get("gpts").and_then(Value::as_f64).unwrap_or(0.0),
            flops_per_point: v
                .get("flops_per_point")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            gflops: v.get("gflops").and_then(Value::as_f64).unwrap_or(0.0),
            oi: v.get("oi").and_then(Value::as_f64).unwrap_or(0.0),
            roofline_gflops: v.get("roofline_gflops").and_then(Value::as_f64),
            roofline_machine: v
                .get("roofline_machine")
                .and_then(Value::as_str)
                .map(str::to_string),
            halo_wait_fraction: v
                .get("halo_wait_fraction")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            histogram: v
                .get("histogram")
                .map(MsgHistogram::from_json)
                .transpose()?
                .unwrap_or_default(),
            per_rank,
            diagnostics: v
                .get("diagnostics")
                .and_then(Value::as_array)
                .unwrap_or(&[])
                .iter()
                .map(Diagnostic::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// The human-readable table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "PerfSummary — {} · mode={} · ranks={} · nt={}\n",
            self.kernel, self.mode, self.ranks, self.timesteps
        ));
        let roof = match (self.roofline_gflops, &self.roofline_machine) {
            (Some(c), Some(m)) if c > 0.0 => format!(
                " · roofline {c:.1} GFlops/s [{m}] ({:.1}% achieved)",
                100.0 * self.gflops / c
            ),
            _ => String::new(),
        };
        out.push_str(&format!(
            "  {:.4} s · {:.4} GPts/s · {:.2} GFlops/s (OI {:.2}){roof} · halo.wait {:.1}%\n",
            self.total_secs,
            self.gpts,
            self.gflops,
            self.oi,
            100.0 * self.halo_wait_fraction
        ));
        out.push_str(&format!(
            "  {:>4}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>8}  {:>6}  {:>9}\n",
            "rank",
            "compute",
            "halo.pack",
            "halo.send",
            "halo.wait",
            "halo.unpk",
            "remainder",
            "source",
            "receiver",
            "GPts/s",
            "msgs",
            "sent"
        ));
        for r in &self.per_rank {
            out.push_str(&format!(
                "  {:>4}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>8.4}  {:>6}  {:>9}\n",
                r.rank,
                fmt_secs(r.section_secs(Section::Compute)),
                fmt_secs(r.section_secs(Section::HaloPack)),
                fmt_secs(r.section_secs(Section::HaloSend)),
                fmt_secs(r.section_secs(Section::HaloWait)),
                fmt_secs(r.section_secs(Section::HaloUnpack)),
                fmt_secs(r.section_secs(Section::Remainder)),
                fmt_secs(r.section_secs(Section::Source)),
                fmt_secs(r.section_secs(Section::Receiver)),
                r.gpts,
                r.msgs_sent,
                human_bytes(r.bytes_sent),
            ));
        }
        out.push_str(&format!("  messages: {}\n", self.histogram.render()));
        out
    }
}

fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "-".to_string()
    } else if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

fn human_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MsgDir, MsgRecord, TraceLevel, Tracer};

    fn sample_summary() -> PerfSummary {
        let mut tr0 = Tracer::new(TraceLevel::Full);
        tr0.begin_step(0);
        tr0.add_secs(Section::Compute, 0.08);
        tr0.add_secs(Section::HaloWait, 0.02);
        let r0 = tr0.finish(
            0,
            vec![
                MsgRecord {
                    dir: MsgDir::Sent,
                    peer: 1,
                    tag: 64,
                    bytes: 300,
                    latency_secs: 0.0,
                },
                MsgRecord {
                    dir: MsgDir::Sent,
                    peer: 1,
                    tag: 65,
                    bytes: 5000,
                    latency_secs: 0.0,
                },
                MsgRecord {
                    dir: MsgDir::Received,
                    peer: 1,
                    tag: 64,
                    bytes: 300,
                    latency_secs: 1e-5,
                },
            ],
        );
        let mut tr1 = Tracer::new(TraceLevel::Full);
        tr1.begin_step(0);
        tr1.add_secs(Section::Compute, 0.1);
        let r1 = tr1.finish(
            1,
            vec![MsgRecord {
                dir: MsgDir::Sent,
                peer: 0,
                tag: 64,
                bytes: 300,
                latency_secs: 0.0,
            }],
        );
        PerfSummary::from_reports(
            "acoustic-so4",
            "diag",
            2,
            36.0,
            0.8,
            &[(0.1, 1_000_000), (0.1, 1_000_000)],
            &[r0, r1],
        )
        .with_roofline("archer2-node", 150.0)
    }

    #[test]
    fn aggregates_are_consistent() {
        let s = sample_summary();
        assert_eq!(s.ranks, 2);
        assert_eq!(s.points_per_step, 1_000_000);
        assert!((s.gpts - 2_000_000.0 / 0.1 / 1e9).abs() < 1e-12);
        assert!((s.gflops - s.gpts * 36.0).abs() < 1e-12);
        // Slowest-rank tie → either rank; both have total 0.1.
        assert!(s.halo_wait_fraction <= 0.2 + 1e-12);
        assert_eq!(s.histogram.total(), 3);
        // 300 B → 512 bucket (x2), 5000 B → 8192 bucket.
        assert_eq!(s.histogram.buckets, vec![(512, 2), (8192, 1)]);
        assert_eq!(s.per_rank[0].msgs_sent, 2);
        assert_eq!(s.per_rank[0].bytes_sent, 5300);
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let s = sample_summary();
        let text = s.to_json().pretty();
        let back = PerfSummary::from_json(&mpix_json::Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn table_renders_all_ranks_and_roofline() {
        let s = sample_summary();
        let t = s.table();
        assert!(t.contains("acoustic-so4"), "{t}");
        assert!(t.contains("roofline 150.0 GFlops/s"), "{t}");
        assert!(t.lines().count() > 4, "{t}");
        assert!(t.contains("halo.wait"), "{t}");
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = MsgHistogram::default();
        for b in [1u64, 2, 3, 1024, 1025, 0] {
            h.add(b);
        }
        assert!(h.buckets.iter().all(|(b, _)| b.is_power_of_two()));
        assert_eq!(h.total(), 6);
    }
}
