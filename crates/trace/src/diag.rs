//! Structured diagnostics emitted by the compiler self-verification
//! passes (`mpix-analysis`) and surfaced through the trace layer.
//!
//! A [`Diagnostic`] is one checkable claim that failed (or merits a
//! warning): which pass produced it, how severe it is, where in the IR it
//! points (a human-readable location like `cluster 2 / stream u[t+1]`),
//! and an explanation of the proof obligation that was violated. The type
//! lives here — not in the analysis crate — so `PerfSummary` can carry
//! verification results next to the performance readout, as text and as
//! JSON, without a dependency cycle.

use std::fmt;

use mpix_json::Value;

/// How bad a finding is. Ordering is by severity, so `max()` over a
/// report gives the overall verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a proof was discharged with a caveat.
    Info,
    /// Suspicious but not provably wrong (e.g. a redundant exchange the
    /// drop/merge pass should have removed — wasteful, not incorrect).
    Warning,
    /// A violated proof obligation: the artifact can produce wrong
    /// numerics, deadlock, or out-of-bounds access.
    Error,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding from a verification pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Short pass name (`halo-coverage`, `comm-schedule`, `bytecode`,
    /// `thread-safety`, `lint`).
    pub pass: String,
    /// IR location the finding anchors to, e.g. `cluster 1 / u[t+0]`.
    pub location: String,
    /// What proof obligation failed and why it matters.
    pub explanation: String,
    /// Stable machine-readable diagnostic code (`MPX001`, …) for findings
    /// from the lint registry; `None` for the ad-hoc verification passes.
    /// Codes survive rewording of `explanation`, so baselines and CI
    /// filters key on them.
    pub code: Option<String>,
}

impl Diagnostic {
    pub fn new(
        severity: Severity,
        pass: impl Into<String>,
        location: impl Into<String>,
        explanation: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity,
            pass: pass.into(),
            location: location.into(),
            explanation: explanation.into(),
            code: None,
        }
    }

    /// Attach a stable registry code (`MPX0xx`).
    pub fn with_code(mut self, code: impl Into<String>) -> Diagnostic {
        self.code = Some(code.into());
        self
    }

    pub fn error(
        pass: impl Into<String>,
        location: impl Into<String>,
        explanation: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic::new(Severity::Error, pass, location, explanation)
    }

    pub fn warning(
        pass: impl Into<String>,
        location: impl Into<String>,
        explanation: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic::new(Severity::Warning, pass, location, explanation)
    }

    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            (
                "severity".to_string(),
                Value::Str(self.severity.name().to_string()),
            ),
            ("pass".to_string(), Value::Str(self.pass.clone())),
            ("location".to_string(), Value::Str(self.location.clone())),
            (
                "explanation".to_string(),
                Value::Str(self.explanation.clone()),
            ),
        ];
        if let Some(code) = &self.code {
            fields.push(("code".to_string(), Value::Str(code.clone())));
        }
        Value::Obj(fields)
    }

    pub fn from_json(v: &Value) -> Result<Diagnostic, String> {
        let sev = v
            .get("severity")
            .and_then(Value::as_str)
            .ok_or("diagnostic missing severity")?;
        Ok(Diagnostic {
            severity: Severity::parse(sev).ok_or_else(|| format!("unknown severity {sev:?}"))?,
            pass: v
                .get("pass")
                .and_then(Value::as_str)
                .ok_or("diagnostic missing pass")?
                .to_string(),
            location: v
                .get("location")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            explanation: v
                .get("explanation")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            code: v.get("code").and_then(Value::as_str).map(|s| s.to_string()),
        })
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.code {
            Some(code) => write!(
                f,
                "[{}][{code}] {}: {} — {}",
                self.severity, self.pass, self.location, self.explanation
            ),
            None => write!(
                f,
                "[{}] {}: {} — {}",
                self.severity, self.pass, self.location, self.explanation
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::parse("error"), Some(Severity::Error));
        assert_eq!(Severity::parse("nope"), None);
    }

    #[test]
    fn json_roundtrip() {
        let d = Diagnostic::error(
            "halo-coverage",
            "cluster 0 / u[t+0]",
            "read radius [2, 2] exceeds exchanged radius [1, 2]",
        );
        let back = Diagnostic::from_json(&Value::parse(&d.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn code_roundtrips_and_renders() {
        let d = Diagnostic::warning("lint", "cluster 0", "dead store").with_code("MPX004");
        let back = Diagnostic::from_json(&Value::parse(&d.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.code.as_deref(), Some("MPX004"));
        let s = format!("{d}");
        assert!(s.contains("[MPX004]"), "{s}");
    }

    #[test]
    fn display_mentions_pass_and_location() {
        let d = Diagnostic::warning("comm-schedule", "step 1", "redundant exchange");
        let s = format!("{d}");
        assert!(s.contains("comm-schedule") && s.contains("step 1"), "{s}");
    }
}
