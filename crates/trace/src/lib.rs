//! Per-rank performance instrumentation (the paper's §IV evaluation
//! machinery, Devito-`perf`-style).
//!
//! Three layers, lowest to highest:
//!
//! 1. [`Tracer`] — a span clock with a fixed vocabulary of [`Section`]s
//!    (`compute`, `halo.pack`, `halo.send`, `halo.wait`, `halo.unpack`,
//!    `remainder`, `source`, `receiver`). Every runtime layer holds one
//!    and brackets its hot regions with [`Tracer::begin`]/[`Tracer::end`].
//!    When the level is [`TraceLevel::Off`] a span is two branch tests —
//!    no clock reads, no allocation.
//! 2. [`TraceReport`] — the per-rank result: per-section totals, optional
//!    per-timestep section breakdowns and the per-peer message log
//!    ([`MsgRecord`]: tag, bytes, enqueue→complete latency) at
//!    [`TraceLevel::Full`]. JSON round-trips via `mpix-json`.
//! 3. [`PerfSummary`] — the cross-rank aggregate built by
//!    `core::Operator::run`: GPts/s, achieved GFlops/s vs. the roofline
//!    ceiling, %time in halo wait, message-size histograms. Exportable as
//!    JSON and as a human-readable table.

use std::time::Instant;

pub mod diag;
pub mod msg;
pub mod sink;
pub mod summary;

pub use diag::{Diagnostic, Severity};
pub use msg::{MsgDir, MsgRecord};
pub use sink::{JsonlSink, MemorySink};
pub use summary::{MsgHistogram, PerfSummary, RankPerf};
// The JSON value type the to_json/from_json surface speaks.
pub use mpix_json::Value;

use mpix_json::json;

/// How much the runtime records. Parsed from `MPIX_TRACE`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceLevel {
    /// Record nothing; spans cost a branch.
    #[default]
    Off,
    /// Per-section totals per rank.
    Summary,
    /// Totals plus per-timestep breakdowns and the full message log.
    Full,
}

impl TraceLevel {
    /// Parse a user-facing spelling (`off`/`0`, `summary`/`1`, `full`/`2`).
    /// The empty string is *not* a spelling of `Off`: a set-but-empty
    /// `MPIX_TRACE` is as malformed as a typo and must fail loudly, like
    /// every other `MPIX_*` knob.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(TraceLevel::Off),
            "summary" | "1" | "on" => Some(TraceLevel::Summary),
            "full" | "2" | "all" => Some(TraceLevel::Full),
            _ => None,
        }
    }

    /// Read `MPIX_TRACE`; unset means [`TraceLevel::Off`], a bad value
    /// panics (silently ignoring a typo'd trace request is worse).
    pub fn from_env() -> TraceLevel {
        match std::env::var("MPIX_TRACE") {
            Err(_) => TraceLevel::Off,
            Ok(s) => TraceLevel::parse(&s)
                .unwrap_or_else(|| panic!("MPIX_TRACE={s:?}: expected off|summary|full")),
        }
    }

    pub fn enabled(self) -> bool {
        self != TraceLevel::Off
    }

    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Summary => "summary",
            TraceLevel::Full => "full",
        }
    }
}

/// The named sections of one timestep, in display order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Section {
    /// DOMAIN/CORE space loops.
    Compute,
    /// Packing send buffers (all halo modes).
    HaloPack,
    /// Enqueueing sends.
    HaloSend,
    /// Blocking on not-yet-arrived halo messages.
    HaloWait,
    /// Writing received halos back into the padded array.
    HaloUnpack,
    /// REMAINDER space loops (full/overlap mode).
    Remainder,
    /// Sparse source injection.
    Source,
    /// Sparse receiver sampling (incl. cross-rank interpolation).
    Receiver,
}

/// Number of [`Section`] variants.
pub const NSECTIONS: usize = 8;

impl Section {
    pub const ALL: [Section; NSECTIONS] = [
        Section::Compute,
        Section::HaloPack,
        Section::HaloSend,
        Section::HaloWait,
        Section::HaloUnpack,
        Section::Remainder,
        Section::Source,
        Section::Receiver,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Section::Compute => "compute",
            Section::HaloPack => "halo.pack",
            Section::HaloSend => "halo.send",
            Section::HaloWait => "halo.wait",
            Section::HaloUnpack => "halo.unpack",
            Section::Remainder => "remainder",
            Section::Source => "source",
            Section::Receiver => "receiver",
        }
    }

    pub fn from_name(name: &str) -> Option<Section> {
        Section::ALL.into_iter().find(|s| s.name() == name)
    }

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated time and span count for one section.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SectionAgg {
    pub secs: f64,
    pub count: u64,
}

/// One timestep's section breakdown ([`TraceLevel::Full`] only).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepTrace {
    /// The simulation time index.
    pub t: i64,
    pub secs: [f64; NSECTIONS],
}

/// An open span returned by [`Tracer::begin`]; pass back to
/// [`Tracer::end`]. Not `Clone` — each span closes exactly once.
#[must_use = "pass the span back to Tracer::end"]
pub struct SpanToken {
    section: Section,
    start: Option<Instant>,
}

/// Per-rank span clock. Cheap to create; create one per `run`.
#[derive(Clone, Debug)]
pub struct Tracer {
    level: TraceLevel,
    totals: [SectionAgg; NSECTIONS],
    steps: Vec<StepTrace>,
}

impl Tracer {
    pub fn new(level: TraceLevel) -> Tracer {
        Tracer {
            level,
            totals: Default::default(),
            steps: Vec::new(),
        }
    }

    /// A disabled tracer for code paths that need one unconditionally.
    pub fn off() -> Tracer {
        Tracer::new(TraceLevel::Off)
    }

    #[inline]
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.level.enabled()
    }

    /// Open a span. When tracing is off this is a branch and a `None`.
    #[inline]
    pub fn begin(&self, section: Section) -> SpanToken {
        SpanToken {
            section,
            start: if self.level.enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Close a span, attributing its wall time to the section.
    #[inline]
    pub fn end(&mut self, span: SpanToken) {
        if let Some(start) = span.start {
            self.add_secs(span.section, start.elapsed().as_secs_f64());
        }
    }

    /// Attribute an externally measured interval to a section.
    pub fn add_secs(&mut self, section: Section, secs: f64) {
        if !self.level.enabled() {
            return;
        }
        let agg = &mut self.totals[section.index()];
        agg.secs += secs;
        agg.count += 1;
        if self.level == TraceLevel::Full {
            if let Some(step) = self.steps.last_mut() {
                step.secs[section.index()] += secs;
            }
        }
    }

    /// Mark the start of timestep `t` (spans recorded after this land in
    /// its breakdown at [`TraceLevel::Full`]).
    pub fn begin_step(&mut self, t: i64) {
        if self.level == TraceLevel::Full {
            self.steps.push(StepTrace {
                t,
                ..Default::default()
            });
        }
    }

    pub fn section_secs(&self, section: Section) -> f64 {
        self.totals[section.index()].secs
    }

    /// Seal into a report, attaching the rank id and its message log.
    pub fn finish(self, rank: usize, messages: Vec<MsgRecord>) -> TraceReport {
        TraceReport {
            rank,
            level: self.level,
            sections: self.totals,
            steps: self.steps,
            messages,
            bufs_allocated: 0,
            bytes_copied: 0,
        }
    }
}

/// The sealed per-rank trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceReport {
    pub rank: usize,
    pub level: TraceLevel,
    pub sections: [SectionAgg; NSECTIONS],
    /// Per-timestep breakdowns ([`TraceLevel::Full`] only).
    pub steps: Vec<StepTrace>,
    /// Per-peer message log ([`TraceLevel::Full`] only).
    pub messages: Vec<MsgRecord>,
    /// Comm-layer heap buffer allocations during the run (pool misses).
    /// Zero in steady state is the persistent halo-plan contract.
    pub bufs_allocated: u64,
    /// Payload bytes the comm layer physically copied during the run
    /// (wire copy on send + completion copy on typed receive).
    pub bytes_copied: u64,
}

impl TraceReport {
    /// Attach the communicator's allocation/copy counters (deltas over
    /// the run) to the report.
    pub fn with_comm_counters(mut self, bufs_allocated: u64, bytes_copied: u64) -> TraceReport {
        self.bufs_allocated = bufs_allocated;
        self.bytes_copied = bytes_copied;
        self
    }
    pub fn section_secs(&self, section: Section) -> f64 {
        self.sections[section.index()].secs
    }

    pub fn section_count(&self, section: Section) -> u64 {
        self.sections[section.index()].count
    }

    /// Total time across all halo sections.
    pub fn halo_secs(&self) -> f64 {
        [
            Section::HaloPack,
            Section::HaloSend,
            Section::HaloWait,
            Section::HaloUnpack,
        ]
        .into_iter()
        .map(|s| self.section_secs(s))
        .sum()
    }

    /// Sent messages, filtered by a tag predicate (e.g. halo tags only).
    pub fn sends_matching(&self, mut pred: impl FnMut(&MsgRecord) -> bool) -> Vec<&MsgRecord> {
        self.messages
            .iter()
            .filter(|m| m.dir == MsgDir::Sent && pred(m))
            .collect()
    }

    pub fn to_json(&self) -> Value {
        let sections: Value = Section::ALL
            .iter()
            .filter(|s| self.sections[s.index()].count > 0)
            .map(|s| {
                let agg = self.sections[s.index()];
                (s.name(), json!({ "secs": agg.secs, "count": agg.count }))
            })
            .collect();
        let steps = Value::Arr(
            self.steps
                .iter()
                .map(|st| {
                    let mut fields = vec![("t".to_string(), Value::from(st.t))];
                    for s in Section::ALL {
                        if st.secs[s.index()] > 0.0 {
                            fields.push((s.name().to_string(), Value::from(st.secs[s.index()])));
                        }
                    }
                    Value::Obj(fields)
                })
                .collect(),
        );
        json!({
            "rank": self.rank,
            "level": self.level.name(),
            "sections": sections,
            "steps": steps,
            "messages": Value::Arr(self.messages.iter().map(MsgRecord::to_json).collect()),
            "bufs_allocated": self.bufs_allocated,
            "bytes_copied": self.bytes_copied,
        })
    }

    pub fn from_json(v: &Value) -> Result<TraceReport, String> {
        let rank = v
            .get("rank")
            .and_then(Value::as_u64)
            .ok_or("missing rank")? as usize;
        let level = v
            .get("level")
            .and_then(Value::as_str)
            .and_then(TraceLevel::parse)
            .ok_or("missing/bad level")?;
        let mut sections: [SectionAgg; NSECTIONS] = Default::default();
        for (name, agg) in v
            .get("sections")
            .and_then(Value::as_object)
            .ok_or("missing sections")?
        {
            let s = Section::from_name(name).ok_or_else(|| format!("unknown section {name:?}"))?;
            sections[s.index()] = SectionAgg {
                secs: agg
                    .get("secs")
                    .and_then(Value::as_f64)
                    .ok_or("section missing secs")?,
                count: agg
                    .get("count")
                    .and_then(Value::as_u64)
                    .ok_or("section missing count")?,
            };
        }
        let mut steps = Vec::new();
        for st in v.get("steps").and_then(Value::as_array).unwrap_or(&[]) {
            let mut step = StepTrace {
                t: st
                    .get("t")
                    .and_then(Value::as_i64)
                    .ok_or("step missing t")?,
                ..Default::default()
            };
            for s in Section::ALL {
                if let Some(secs) = st.get(s.name()).and_then(Value::as_f64) {
                    step.secs[s.index()] = secs;
                }
            }
            steps.push(step);
        }
        let mut messages = Vec::new();
        for m in v.get("messages").and_then(Value::as_array).unwrap_or(&[]) {
            messages.push(MsgRecord::from_json(m)?);
        }
        Ok(TraceReport {
            rank,
            level,
            sections,
            steps,
            messages,
            // Absent in pre-counter reports; default to zero.
            bufs_allocated: v.get("bufs_allocated").and_then(Value::as_u64).unwrap_or(0),
            bytes_copied: v.get("bytes_copied").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::off();
        tr.begin_step(0);
        let sp = tr.begin(Section::Compute);
        std::thread::sleep(std::time::Duration::from_millis(1));
        tr.end(sp);
        tr.add_secs(Section::HaloWait, 1.0);
        let rep = tr.finish(0, Vec::new());
        assert_eq!(rep.section_secs(Section::Compute), 0.0);
        assert_eq!(rep.section_secs(Section::HaloWait), 0.0);
        assert!(rep.steps.is_empty());
    }

    #[test]
    fn summary_level_accumulates_totals_without_steps() {
        let mut tr = Tracer::new(TraceLevel::Summary);
        tr.begin_step(0);
        tr.add_secs(Section::Compute, 0.25);
        tr.add_secs(Section::Compute, 0.25);
        tr.add_secs(Section::HaloWait, 0.1);
        let rep = tr.finish(3, Vec::new());
        assert_eq!(rep.rank, 3);
        assert_eq!(rep.section_secs(Section::Compute), 0.5);
        assert_eq!(rep.section_count(Section::Compute), 2);
        assert!(rep.steps.is_empty(), "steps only at Full");
    }

    #[test]
    fn full_level_attributes_spans_to_steps() {
        let mut tr = Tracer::new(TraceLevel::Full);
        tr.begin_step(10);
        tr.add_secs(Section::Compute, 0.5);
        tr.begin_step(11);
        tr.add_secs(Section::Compute, 0.125);
        tr.add_secs(Section::Remainder, 0.0625);
        let rep = tr.finish(0, Vec::new());
        assert_eq!(rep.steps.len(), 2);
        assert_eq!(rep.steps[0].t, 10);
        assert_eq!(rep.steps[0].secs[Section::Compute.index()], 0.5);
        assert_eq!(rep.steps[1].secs[Section::Remainder.index()], 0.0625);
        assert_eq!(rep.section_secs(Section::Compute), 0.625);
    }

    #[test]
    fn real_spans_measure_time() {
        let mut tr = Tracer::new(TraceLevel::Summary);
        let sp = tr.begin(Section::HaloWait);
        std::thread::sleep(std::time::Duration::from_millis(2));
        tr.end(sp);
        assert!(tr.section_secs(Section::HaloWait) >= 0.001);
    }

    #[test]
    fn report_json_roundtrip() {
        let mut tr = Tracer::new(TraceLevel::Full);
        tr.begin_step(0);
        tr.add_secs(Section::Compute, 0.5);
        tr.add_secs(Section::HaloWait, 0.25);
        let rep = tr.finish(
            2,
            vec![
                MsgRecord {
                    dir: MsgDir::Sent,
                    peer: 1,
                    tag: 64,
                    bytes: 320,
                    latency_secs: 0.0,
                },
                MsgRecord {
                    dir: MsgDir::Received,
                    peer: 0,
                    tag: 64,
                    bytes: 320,
                    latency_secs: 1e-4,
                },
            ],
        );
        let text = rep.to_json().pretty();
        let back = TraceReport::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn level_parsing() {
        assert_eq!(TraceLevel::parse("full"), Some(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("SUMMARY"), Some(TraceLevel::Summary));
        assert_eq!(TraceLevel::parse("0"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("banana"), None);
    }

    #[test]
    fn section_names_roundtrip() {
        for s in Section::ALL {
            assert_eq!(Section::from_name(s.name()), Some(s));
        }
        assert_eq!(Section::ALL.len(), NSECTIONS);
    }
}
