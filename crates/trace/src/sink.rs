//! JSON-lines streaming: one compact [`Value`] per line, flushed as it
//! is written. The serve layer streams one record per finished job
//! through a sink; consumers (`tail -f`, the load harness, CI greps)
//! see each record the moment the job completes rather than a document
//! at shutdown — which is the point of *streaming* results back.

use std::io::Write;
use std::sync::Mutex;

use mpix_json::Value;

/// A thread-safe JSON-lines writer. Lines are written and flushed under
/// one lock acquisition, so records from concurrent workers never
/// interleave mid-line.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Stream to any writer (a file, a pipe, an in-memory buffer).
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Stream to standard output.
    pub fn stdout() -> JsonlSink {
        JsonlSink::new(Box::new(std::io::stdout()))
    }

    /// Write one record as a compact single line and flush it.
    pub fn write(&self, v: &Value) {
        let line = v.compact();
        debug_assert!(!line.contains('\n'), "compact JSON is single-line");
        let mut out = self.out.lock().unwrap();
        // A dead pipe is the consumer's problem, not the solver's: keep
        // serving (matches `println!`'s behaviour minus the panic).
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// An in-memory sink for tests: collects every record for inspection.
#[derive(Default)]
pub struct MemorySink {
    records: Mutex<Vec<Value>>,
}

impl MemorySink {
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Append one record.
    pub fn write(&self, v: &Value) {
        self.records.lock().unwrap().push(v.clone());
    }

    /// Snapshot of every record written so far.
    pub fn records(&self) -> Vec<Value> {
        self.records.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_json::json;

    #[test]
    fn jsonl_lines_are_parseable_and_ordered() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(Mutex::new(buf));
        struct SharedWriter(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(SharedWriter(shared.clone())));
        for i in 0..3 {
            sink.write(&json!({ "i": i }));
        }
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let v = Value::parse(line).unwrap();
            assert_eq!(v.get("i").and_then(Value::as_u64), Some(i as u64));
        }
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        sink.write(&json!({ "a": 1 }));
        sink.write(&json!({ "a": 2 }));
        let recs = sink.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].get("a").and_then(Value::as_u64), Some(2));
    }
}
