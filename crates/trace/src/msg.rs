//! The per-peer message log recorded by `comm::Comm` at
//! [`TraceLevel::Full`](crate::TraceLevel::Full).

use mpix_json::{json, Value};

/// Direction of a logged message, from the recording rank's view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgDir {
    Sent,
    Received,
}

impl MsgDir {
    pub fn name(self) -> &'static str {
        match self {
            MsgDir::Sent => "sent",
            MsgDir::Received => "received",
        }
    }
}

/// One point-to-point message as seen by one rank.
#[derive(Clone, Debug, PartialEq)]
pub struct MsgRecord {
    pub dir: MsgDir,
    /// The other endpoint's rank.
    pub peer: usize,
    pub tag: u32,
    /// Payload bytes.
    pub bytes: usize,
    /// Enqueue→complete latency: how long the message sat in the mailbox
    /// before this rank matched it. Zero for sends (delivery is eager).
    pub latency_secs: f64,
}

impl MsgRecord {
    pub fn to_json(&self) -> Value {
        json!({
            "dir": self.dir.name(),
            "peer": self.peer,
            "tag": self.tag,
            "bytes": self.bytes,
            "latency_secs": self.latency_secs,
        })
    }

    pub fn from_json(v: &Value) -> Result<MsgRecord, String> {
        let dir = match v.get("dir").and_then(Value::as_str) {
            Some("sent") => MsgDir::Sent,
            Some("received") => MsgDir::Received,
            other => return Err(format!("bad msg dir {other:?}")),
        };
        Ok(MsgRecord {
            dir,
            peer: v
                .get("peer")
                .and_then(Value::as_u64)
                .ok_or("msg missing peer")? as usize,
            tag: v
                .get("tag")
                .and_then(Value::as_u64)
                .ok_or("msg missing tag")? as u32,
            bytes: v
                .get("bytes")
                .and_then(Value::as_u64)
                .ok_or("msg missing bytes")? as usize,
            latency_secs: v.get("latency_secs").and_then(Value::as_f64).unwrap_or(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let m = MsgRecord {
            dir: MsgDir::Received,
            peer: 7,
            tag: 129,
            bytes: 4096,
            latency_secs: 2.5e-5,
        };
        let back = MsgRecord::from_json(&Value::parse(&m.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn bad_dir_rejected() {
        assert!(
            MsgRecord::from_json(&json!({ "dir": "lost", "peer": 0, "tag": 0, "bytes": 0 }))
                .is_err()
        );
    }
}
