//! # mpix — Automated MPI-X code generation for scalable finite-difference solvers
//!
//! A Rust reproduction of *"Automated MPI-X code generation for scalable
//! finite-difference solvers"* (Bisbas et al., IPDPS 2025): a symbolic
//! finite-difference DSL and compiler that automatically generates
//! distributed-memory-parallel stencil code — halo-exchange detection,
//! three computation/communication patterns (basic / diagonal / full
//! overlap), distributed arrays, sparse sources/receivers — plus the four
//! seismic wave propagators and the scaling evaluation of the paper.
//!
//! This facade re-exports the workspace crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`symbolic`] | expressions, FD weights, grids, fields, equations |
//! | [`comm`] | the simulated MPI substrate (ranks as threads) |
//! | [`dmp`] | decomposition, distributed arrays, halo patterns, sparse points |
//! | [`ir`] | Cluster IR, halo detection, schedule tree, IET + passes |
//! | [`codegen`] | lowering backends: C emitter, bytecode engine, native JIT |
//! | [`core`] | the user-facing `Operator` |
//! | [`solvers`] | acoustic / TTI / elastic / viscoelastic propagators |
//! | [`perf`] | machine + network model, strong/weak scaling generators |
//! | [`trace`] | per-rank section timers, message logs, `PerfSummary` |
//! | [`analysis`] | compiler self-verification passes (`mpix-verify`) |
//!
//! Start with `examples/quickstart.rs` — the paper's Listing 1 end to end.

pub use mpix_analysis as analysis;
pub use mpix_codegen as codegen;
pub use mpix_comm as comm;
pub use mpix_core as core;
pub use mpix_dmp as dmp;
pub use mpix_ir as ir;
pub use mpix_perf as perf;
pub use mpix_solvers as solvers;
pub use mpix_symbolic as symbolic;
pub use mpix_trace as trace;

pub use mpix_core::prelude;

// The everyday vocabulary, importable straight off the facade:
// `use mpix::{Operator, ApplyOptions, TraceLevel, ...}`.
pub use mpix_core::{
    available_backends, Applied, ApplyOptions, Backend, Operator, PerfSummary, TraceLevel,
    Workspace,
};
pub use mpix_dmp::HaloMode;
