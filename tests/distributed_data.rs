//! Integration: the "logically centralized, physically distributed"
//! array contract (paper §III b, Listings 2–3) through the public facade.

use mpix::prelude::*;
use proptest::prelude::*;

fn diffusion_op(nx: usize, ny: usize) -> Operator {
    let mut ctx = Context::new();
    let grid = Grid::new(&[nx, ny], &[2.0, 2.0]);
    let u = ctx.add_time_function("u", &grid, 2, 1);
    let eq = Eq::new(u.dt(), u.laplace());
    let stencil = eq.solve_for(&u.forward(), &ctx).unwrap();
    Operator::build(ctx, grid, vec![stencil]).unwrap()
}

#[test]
fn listing2_exact_reproduction() {
    let op = diffusion_op(4, 4);
    let views = op
        .run(
            &ApplyOptions::default()
                .with_nt(0)
                .with_ranks(4)
                .with_topology(&[2, 2]),
            |ws| {
                ws.field_data_mut("u", 0)
                    .fill_global_slice(&[1..3, 1..3], 1.0)
            },
            |ws| ws.field_data("u", 0).local_view_string(),
        )
        .results;
    assert_eq!(
        views,
        vec![
            "[[0.00 0.00]\n [0.00 1.00]]",
            "[[0.00 0.00]\n [1.00 0.00]]",
            "[[0.00 1.00]\n [0.00 0.00]]",
            "[[1.00 0.00]\n [0.00 0.00]]",
        ]
    );
}

#[test]
fn global_write_lands_on_exactly_one_rank() {
    let op = diffusion_op(8, 8);
    for nranks in [2usize, 4, 8] {
        let owners: Vec<usize> = op
            .run(
                &ApplyOptions::default().with_nt(0).with_ranks(nranks),
                |ws| ws.field_data_mut("u", 0).set_global(&[3, 5], 7.0),
                |ws| {
                    let nonzero = ws
                        .field_data("u", 0)
                        .raw()
                        .iter()
                        .filter(|&&v| v != 0.0)
                        .count();
                    nonzero
                },
            )
            .results;
        assert_eq!(owners.iter().sum::<usize>(), 1, "nranks={nranks}");
    }
}

#[test]
fn gather_is_identical_on_every_rank_and_to_serial() {
    let op = diffusion_op(12, 10);
    let init = |ws: &mut Workspace| {
        for i in 0..12 {
            for j in 0..10 {
                ws.field_data_mut("u", 0)
                    .set_global(&[i, j], (i * 10 + j) as f32);
            }
        }
    };
    let serial = op
        .run(&ApplyOptions::default().with_nt(0), init, |ws| {
            ws.gather("u")
        })
        .results
        .remove(0);
    let all = op
        .run(
            &ApplyOptions::default().with_nt(0).with_ranks(6),
            init,
            |ws| ws.gather("u"),
        )
        .results;
    for g in &all {
        assert_eq!(g, &serial);
    }
}

#[test]
fn slices_crossing_rank_boundaries_cover_exactly_once() {
    let op = diffusion_op(16, 16);
    let total: f32 = op
        .run(
            &ApplyOptions::default()
                .with_nt(0)
                .with_ranks(4)
                .with_topology(&[2, 2]),
            |ws| {
                ws.field_data_mut("u", 0)
                    .fill_global_slice(&[5..13, 3..11], 1.0)
            },
            |ws| ws.field_data("u", 0).raw().iter().sum::<f32>(),
        )
        .results
        .iter()
        .sum();
    assert_eq!(total, 64.0); // 8x8 slice, each point exactly once
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn prop_random_slices_distribute_exactly(
        x0 in 0usize..10, w in 1usize..6,
        y0 in 0usize..10, h in 1usize..6,
        ranks in 1usize..6,
    ) {
        let op = diffusion_op(16, 16);
        let (x1, y1) = ((x0 + w).min(16), (y0 + h).min(16));
        let expected = ((x1 - x0) * (y1 - y0)) as f32;
        let total: f32 = op
            .run(
                &ApplyOptions::default().with_nt(0).with_ranks(ranks),
                move |ws| ws.field_data_mut("u", 0).fill_global_slice(&[x0..x1, y0..y1], 1.0),
                |ws| ws.field_data("u", 0).raw().iter().sum::<f32>(),
            )
            .results
            .iter()
            .sum();
        prop_assert_eq!(total, expected);
    }
}
