//! Empirical validation of the static precision certificates.
//!
//! For every solver kernel at space orders {4, 8, 12, 16}, this test
//! (1) builds the precision certificate `mpix-analysis::fp::certify`
//! emits under the shipped [`mpix_solvers::fp_profile`] assumptions,
//! (2) runs the operator for real through the f32 bytecode executor,
//! (3) replays the identical computation through an f64 shadow
//! interpreter over the cluster IR — same statement order, same
//! per-cluster sweeps, same time-buffer rotation, same zero-padded
//! halo — starting from the *exact* f32 initial state of the real run,
//! and (4) asserts the observed |f32 − f64| divergence of every written
//! field stays below the certified bound.
//!
//! The comparison budget is `bound_f32 + bound_f64`: the certificate
//! bounds each arm's distance from exact real arithmetic, so the
//! triangle inequality bounds the observable gap between the arms. A
//! certificate claiming a tighter bound than the machine can deliver
//! fails here — this is the teeth behind the JSON the `mpix-lint
//! --fp-certs` export ships.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Mutex;

use mpix_analysis::fp::{certify, FpAssumptions, PrecisionCertificate};
use mpix_ir::cluster::{Cluster, Stmt};
use mpix_ir::iexpr::{IExpr, IdxAccess};
use mpix_ir::precision::StoragePrecision;
use mpix_solvers::{fp_profile, KernelKind, ModelSpec, Propagator};

/// Time steps both arms run and the certificate is issued for.
const STEPS: i64 = 3;

const ORDERS: [u32; 4] = [4, 8, 12, 16];

fn spec_for(kind: KernelKind) -> ModelSpec {
    match kind {
        // The acoustic kernel supports 2-D; the coupled systems are 3-D.
        KernelKind::Acoustic => ModelSpec::new(&[24, 24]).with_nbl(4),
        _ => ModelSpec::new(&[12, 12, 12]).with_nbl(2),
    }
}

/// A smooth centred bump, amplitude 0.5 — inside the certified ±1
/// wavefield range, smooth enough that high-order stencils see realistic
/// (non-impulsive) data.
fn bump(pos: &[usize], shape: &[usize]) -> f32 {
    let mut r2 = 0.0f64;
    for d in 0..shape.len() {
        let x = pos[d] as f64 - shape[d] as f64 / 2.0;
        r2 += x * x;
    }
    (0.5 * (-r2 / 8.0).exp()) as f32
}

/// Row-major iteration over every point of `shape`.
fn for_each_point(shape: &[usize], mut f: impl FnMut(&[usize])) {
    let mut pos = vec![0usize; shape.len()];
    loop {
        f(&pos);
        let mut d = shape.len();
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            pos[d] += 1;
            if pos[d] < shape[d] {
                break;
            }
            pos[d] = 0;
        }
    }
}

/// The f64 shadow of the executor: global (single-rank) arrays per
/// (field, time buffer), reads past the domain see the padded zeros the
/// real run sees, stores commit in statement order.
struct Shadow {
    shape: Vec<usize>,
    strides: Vec<usize>,
    /// Buffer count per field, indexed by `FieldId.0`.
    nb: Vec<usize>,
    /// `data[field][buffer][linear index]`.
    data: Vec<Vec<Vec<f64>>>,
    scalars: BTreeMap<String, f64>,
    /// Loop-invariant precomputed parameters, evaluated in f64.
    params: Vec<f64>,
}

impl Shadow {
    fn buffer(&self, field: u32, t: i64, toff: i32) -> usize {
        let nb = self.nb[field as usize] as i64;
        (((t + toff as i64) % nb + nb) % nb) as usize
    }

    /// Linear index of `pos + deltas`; `None` = outside the domain
    /// (reads there yield the halo pad's zeros).
    fn lin(&self, pos: &[usize], deltas: &[i32]) -> Option<usize> {
        let mut lin = 0usize;
        for d in 0..pos.len() {
            let q = pos[d] as i64 + deltas[d] as i64;
            if q < 0 || q >= self.shape[d] as i64 {
                return None;
            }
            lin += q as usize * self.strides[d];
        }
        Some(lin)
    }

    fn load(&self, a: &IdxAccess, t: i64, pos: &[usize]) -> f64 {
        match self.lin(pos, &a.deltas) {
            Some(lin) => {
                self.data[a.field.0 as usize][self.buffer(a.field.0, t, a.time_offset)][lin]
            }
            None => 0.0,
        }
    }

    fn eval(&self, e: &IExpr, t: i64, pos: &[usize], temps: &[f64]) -> f64 {
        match e {
            IExpr::Const(c) => *c,
            IExpr::Sym(s) => *self
                .scalars
                .get(s)
                .unwrap_or_else(|| panic!("unbound scalar {s:?}")),
            IExpr::Param(i) => self.params[*i],
            IExpr::Temp(i) => temps[*i],
            IExpr::Load(a) => self.load(a, t, pos),
            IExpr::Add(xs) => xs.iter().map(|x| self.eval(x, t, pos, temps)).sum(),
            IExpr::Mul(xs) => xs
                .iter()
                .fold(1.0, |acc, x| acc * self.eval(x, t, pos, temps)),
            IExpr::Pow(b, e) => self.eval(b, t, pos, temps).powi(*e),
            IExpr::Func(f, b) => f.apply(self.eval(b, t, pos, temps)),
        }
    }

    /// One time step: every cluster in program order, full-domain sweep,
    /// per-point temporaries, stores committed immediately (preserving
    /// same-point reads of fresh values, as the real loop body does).
    fn step(&mut self, clusters: &[Cluster], t: i64) {
        let shape = self.shape.clone();
        for cl in clusters {
            let mut temps = vec![0.0f64; cl.num_temps];
            for_each_point(&shape, |pos| {
                for st in &cl.stmts {
                    match st {
                        Stmt::Let { temp, value } => {
                            temps[*temp] = self.eval(value, t, pos, &temps);
                        }
                        Stmt::Store { target, value } => {
                            let v = self.eval(value, t, pos, &temps);
                            let b = self.buffer(target.field.0, t, target.time_offset);
                            let lin = self
                                .lin(pos, &target.deltas)
                                .expect("stores stay inside the domain");
                            self.data[target.field.0 as usize][b][lin] = v;
                        }
                    }
                }
            });
        }
    }
}

/// Evaluate a grid-invariant parameter definition in f64.
fn eval_param(e: &IExpr, scalars: &BTreeMap<String, f64>, params: &[f64]) -> f64 {
    match e {
        IExpr::Const(c) => *c,
        IExpr::Sym(s) => *scalars
            .get(s)
            .unwrap_or_else(|| panic!("unbound scalar {s:?}")),
        IExpr::Param(i) => params[*i],
        IExpr::Add(xs) => xs.iter().map(|x| eval_param(x, scalars, params)).sum(),
        IExpr::Mul(xs) => xs
            .iter()
            .fold(1.0, |acc, x| acc * eval_param(x, scalars, params)),
        IExpr::Pow(b, e) => eval_param(b, scalars, params).powi(*e),
        IExpr::Func(f, b) => f.apply(eval_param(b, scalars, params)),
        IExpr::Load(_) | IExpr::Temp(_) => panic!("parameter definitions are grid-invariant"),
    }
}

/// Certified error budget for comparing the two arms on `field`.
fn budget(cert: &PrecisionCertificate, field: &str) -> f64 {
    let f32b = cert
        .abs_bound(field, StoragePrecision::F32)
        .unwrap_or_else(|| panic!("{}: no finite f32 bound for {field}", cert.operator));
    let f64b = cert
        .abs_bound(field, StoragePrecision::F64)
        .unwrap_or_else(|| panic!("{}: no finite f64 bound for {field}", cert.operator));
    f32b + f64b
}

fn validate(kind: KernelKind, so: u32) {
    let spec = spec_for(kind);
    let p = Propagator::build(kind, spec, so);
    let label = format!("{}-so{}", kind.name(), so);
    let ctx = p.op.ctx();
    let shape = p.spec.padded_shape();

    // The certificate, under exactly the assumptions the run satisfies.
    let profile = fp_profile(kind, &p.spec, p.dt);
    let mut assume = FpAssumptions::structural().with_steps(STEPS as u32);
    for (k, v) in &profile.scalars {
        assume = assume.with_scalar(k, *v);
    }
    for (name, lo, hi) in &profile.fields {
        let f = ctx
            .field_by_name(name)
            .unwrap_or_else(|| panic!("{label}: profile names unknown field {name}"));
        assume = assume.with_field(f.id, *lo, *hi);
    }
    let cert = certify(ctx, p.op.clusters(), &assume, &label);

    // Per-field layout facts, gathered up-front (the init closure
    // cannot see the context).
    let field_info: Vec<(String, usize)> = ctx
        .fields()
        .iter()
        .map(|f| (f.name.clone(), f.time_buffers()))
        .collect();
    let written: Vec<String> = cert
        .fields
        .iter()
        .filter(|r| r.written)
        .map(|r| r.name.clone())
        .collect();
    assert!(!written.is_empty(), "{label}: nothing written?");
    for name in &written {
        assert!(
            budget(&cert, name).is_finite(),
            "{label}: unbounded certificate for {name}"
        );
    }
    let seeds: Vec<(String, Vec<i64>)> = p
        .source_fields()
        .iter()
        .map(|&n| {
            let nb = field_info.iter().find(|(fi, _)| fi == n).unwrap().1;
            // Second-order-in-time fields start from a standing bump
            // (t = 0 and t = −1); first-order fields seed t = 0 only.
            let levels = if nb >= 3 { vec![0, -1] } else { vec![0] };
            (n.to_string(), levels)
        })
        .collect();

    // The f32 arm: the real executor (bytecode backend, one rank), with
    // the initial f32 state snapshotted for the shadow.
    let snapshot: Mutex<HashMap<(String, usize), Vec<f32>>> = Mutex::new(HashMap::new());
    let opts = p.apply_options(STEPS).with_verify(false);
    let shape_init = shape.clone();
    let finals =
        p.op.run(
            &opts,
            |ws| {
                p.init(ws);
                for (name, levels) in &seeds {
                    for &lvl in levels {
                        let arr = ws.field_data_mut(name, lvl);
                        for_each_point(&shape_init, |pos| {
                            arr.set_global(pos, bump(pos, &shape_init));
                        });
                    }
                }
                let mut snap = snapshot.lock().unwrap();
                for (name, nb) in &field_info {
                    for b in 0..*nb {
                        snap.insert((name.clone(), b), ws.gather_at(name, b as i64));
                    }
                }
            },
            |ws| {
                written
                    .iter()
                    .map(|n| (n.clone(), ws.gather(n)))
                    .collect::<Vec<_>>()
            },
        )
        .results
        .remove(0);

    // The f64 shadow arm, from the identical initial f32 bits.
    let snap = snapshot.into_inner().unwrap();
    let mut strides = vec![1usize; shape.len()];
    for d in (0..shape.len() - 1).rev() {
        strides[d] = strides[d + 1] * shape[d + 1];
    }
    let mut shadow = Shadow {
        shape: shape.clone(),
        strides,
        nb: field_info.iter().map(|(_, nb)| *nb).collect(),
        data: field_info
            .iter()
            .map(|(name, nb)| {
                (0..*nb)
                    .map(|b| snap[&(name.clone(), b)].iter().map(|&v| v as f64).collect())
                    .collect()
            })
            .collect(),
        scalars: profile.scalars.clone(),
        params: Vec::new(),
    };
    let max_param =
        p.op.clusters()
            .iter()
            .flat_map(|c| c.params.iter().map(|(i, _)| i + 1))
            .max()
            .unwrap_or(0);
    let mut params = vec![0.0f64; max_param];
    for cl in p.op.clusters() {
        for (i, def) in &cl.params {
            params[*i] = eval_param(def, &shadow.scalars, &params);
        }
    }
    shadow.params = params;
    for t in 0..STEPS {
        shadow.step(p.op.clusters(), t);
    }

    // Observed divergence vs certified budget, per written field.
    let mut moved = 0.0f32;
    for (name, got) in &finals {
        let fi = field_info.iter().position(|(n, _)| n == name).unwrap();
        let b = shadow.buffer(fi as u32, STEPS, 0);
        let reference = &shadow.data[fi][b];
        assert_eq!(got.len(), reference.len(), "{label}/{name}: shape mismatch");
        let observed = got
            .iter()
            .zip(reference)
            .map(|(&a, &b)| (a as f64 - b).abs())
            .fold(0.0f64, f64::max);
        let allowed = budget(&cert, name);
        assert!(
            observed <= allowed,
            "{label}: field {name} diverged {observed:.3e} > certified {allowed:.3e}"
        );
        moved += got.iter().map(|v| v.abs()).sum::<f32>();
    }
    // Guard against a vacuous pass: the run must have actually moved data.
    assert!(moved > 0.0, "{label}: all written fields are zero");
}

#[test]
fn acoustic_certified_bounds_hold_empirically() {
    for so in ORDERS {
        validate(KernelKind::Acoustic, so);
    }
}

#[test]
fn tti_certified_bounds_hold_empirically() {
    for so in ORDERS {
        validate(KernelKind::Tti, so);
    }
}

#[test]
fn elastic_certified_bounds_hold_empirically() {
    for so in ORDERS {
        validate(KernelKind::Elastic, so);
    }
}

#[test]
fn viscoelastic_certified_bounds_hold_empirically() {
    for so in ORDERS {
        validate(KernelKind::Viscoelastic, so);
    }
}
