//! Load test for `mpix-serve` (mpix_core::serve): ≥200 concurrent
//! mixed-size jobs through one server, with the compile-once,
//! hit-rate-reported, sanitizer-clean, and tenant-isolation guarantees
//! counter-asserted rather than eyeballed.
//!
//! All counters asserted here are **cache-local** (`CacheSnapshot`), so
//! the parallel tests in this binary cannot perturb each other's
//! numbers; the process-global `exec_compiles()` is only used by the
//! single-purpose `mpix-serve --smoke` binary.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use mpix_core::prelude::*;
use mpix_core::serve::{Job, OperatorKey, RecordSink, ServeConfig, Server};
use mpix_core::{available_backends, Backend};
use mpix_solvers::{KernelKind, ModelSpec, Propagator};
use mpix_trace::Value;

/// A sink that both collects records and never blocks workers.
fn collecting_sink() -> (RecordSink, Arc<Mutex<Vec<Value>>>) {
    let records: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
    let sink: RecordSink = {
        let records = Arc::clone(&records);
        Arc::new(move |v: &Value| records.lock().unwrap().push(v.clone()))
    };
    (sink, records)
}

/// The mixed workload: 2 kernels × 2 SDOs × 2 modes × {1, 2, 4} ranks,
/// tiny domains (different sizes per kernel). 24 distinct job shapes.
fn workload() -> Vec<(Arc<Propagator>, HaloMode, usize)> {
    let mut out = Vec::new();
    for kind in [KernelKind::Acoustic, KernelKind::Elastic] {
        for so in [4u32, 8] {
            let shape: &[usize] = match kind {
                KernelKind::Acoustic => &[20, 20],
                _ => &[12, 12, 12],
            };
            let prop = Arc::new(Propagator::build(
                kind,
                ModelSpec::new(shape).with_nbl(2),
                so,
            ));
            for mode in [HaloMode::Basic, HaloMode::Diagonal] {
                for ranks in [1usize, 2, 4] {
                    out.push((Arc::clone(&prop), mode, ranks));
                }
            }
        }
    }
    out
}

fn job_opts(prop: &Propagator, mode: HaloMode, ranks: usize, sanitize: bool) -> ApplyOptions {
    prop.apply_options(2)
        .with_mode(mode)
        .with_ranks(ranks)
        .with_verify(false)
        .with_sanitize(sanitize)
}

#[test]
fn load_200_concurrent_mixed_jobs_compile_once_per_key() {
    const JOBS: usize = 200;
    let work = workload();

    // Every unique content key the workload can produce.
    let mut expected_keys: HashSet<u64> = HashSet::new();
    for (prop, mode, ranks) in &work {
        expected_keys.insert(prop.op.content_key(&job_opts(prop, *mode, *ranks, true)));
    }

    let (sink, records) = collecting_sink();
    let server = Server::start(
        ServeConfig::default().with_workers(6).with_pool_ranks(8),
        sink,
    );
    let tenants = ["alice", "bob", "carol", "dave"];
    for i in 0..JOBS {
        let (prop, mode, ranks) = &work[i % work.len()];
        let opts = job_opts(prop, *mode, *ranks, true); // sanitizer armed
        let init_prop = Arc::clone(prop);
        server.submit(
            Job::new(tenants[i % tenants.len()], Arc::clone(&prop.op), opts)
                .with_init(move |ws| init_prop.init(ws)),
        );
    }
    let report = server.shutdown();

    // Everything ran; nothing was refused or died.
    assert_eq!(report.jobs, JOBS as u64);
    assert_eq!(report.done, JOBS as u64);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.failed, 0);

    // Compile-once: exactly one compilation per unique content key, and
    // every other request was a hit.
    assert_eq!(report.cache.compiles, expected_keys.len() as u64);
    assert_eq!(report.cache.misses, report.cache.compiles);
    assert_eq!(report.cache.hits, JOBS as u64 - report.cache.compiles);

    let records = records.lock().unwrap();
    let job_records: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("record").and_then(Value::as_str) == Some("job"))
        .collect();
    assert_eq!(job_records.len(), JOBS);

    // The streamed records agree with the counters: misses seen in the
    // stream == compiles, and every record carries a key.
    let streamed_misses = job_records
        .iter()
        .filter(|r| r.get("cache").and_then(Value::as_str) == Some("miss"))
        .count();
    assert_eq!(streamed_misses as u64, report.cache.compiles);
    let streamed_keys: HashSet<&str> = job_records
        .iter()
        .filter_map(|r| r.get("key").and_then(Value::as_str))
        .collect();
    assert_eq!(streamed_keys.len(), expected_keys.len());

    // Zero sanitizer findings across all 200 summaries.
    let san_findings = job_records
        .iter()
        .flat_map(|r| {
            r.get("summary")
                .and_then(|s| s.get("diagnostics"))
                .and_then(Value::as_array)
                .unwrap_or(&[])
                .iter()
        })
        .filter(|d| {
            d.get("pass")
                .and_then(Value::as_str)
                .is_some_and(|p| p.starts_with("mpix-san"))
        })
        .count();
    assert_eq!(san_findings, 0, "sanitizer must stay silent under load");

    // The hit rate is reported in the streamed JSON summary line.
    let summary = records
        .iter()
        .find(|r| r.get("record").and_then(Value::as_str) == Some("serve.summary"))
        .expect("a serve.summary record is streamed at shutdown");
    let hit_rate = summary
        .get("cache")
        .and_then(|c| c.get("hit_rate"))
        .and_then(Value::as_f64)
        .expect("summary reports the cache hit rate");
    assert!((hit_rate - report.cache.hit_rate()).abs() < 1e-12);
    assert!(hit_rate > 0.8, "200 jobs over few keys must mostly hit");
}

#[test]
fn concurrent_identical_jobs_single_flight() {
    // Many identical jobs racing on one cold key through many workers:
    // exactly one compile; everyone else waits and shares.
    let prop = Arc::new(Propagator::build(
        KernelKind::Acoustic,
        ModelSpec::new(&[16, 16]).with_nbl(2),
        4,
    ));
    let (sink, _records) = collecting_sink();
    let server = Server::start(
        ServeConfig::default().with_workers(8).with_pool_ranks(8),
        sink,
    );
    for _ in 0..32 {
        let opts = job_opts(&prop, HaloMode::Basic, 1, false);
        let init_prop = Arc::clone(&prop);
        server.submit(
            Job::new("racer", Arc::clone(&prop.op), opts).with_init(move |ws| init_prop.init(ws)),
        );
    }
    let report = server.shutdown();
    assert_eq!(report.done, 32);
    assert_eq!(report.cache.compiles, 1, "single-flight: one compile");
    assert_eq!(report.cache.misses, 1);
    assert_eq!(report.cache.hits, 31);
}

#[test]
fn same_geometry_different_expression_operators_hash_apart() {
    // Two operators over identical grids and stencil geometry but with
    // different expressions (different diffusivity coefficient) must
    // NOT share a compiled artifact; the same equations built twice
    // must. Pointer identity plays no part either way.
    let build = |alpha: f64| {
        let mut ctx = Context::new();
        let grid = Grid::new(&[12, 12], &[11.0, 11.0]);
        let u = ctx.add_time_function("u", &grid, 2, 2);
        let eq = Eq::new(u.dt(), u.laplace() * alpha);
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        Operator::build(ctx, grid, vec![st]).unwrap()
    };
    let opts = ApplyOptions::default().with_nt(1);
    let a1 = build(1.0);
    let a2 = build(1.0); // distinct instance, same physics
    let b = build(0.5); // same geometry, different expression

    assert_eq!(
        OperatorKey::of(&a1, &opts),
        OperatorKey::of(&a2, &opts),
        "identical physics from distinct builds shares one key"
    );
    assert_ne!(
        OperatorKey::of(&a1, &opts),
        OperatorKey::of(&b, &opts),
        "same geometry, different expression must hash apart"
    );

    // Backend and lane width are part of the key (a jit artifact is not
    // an interpreter artifact); mode Basic vs Diagonal is deliberately
    // NOT (they lower to the identical IET — the exchange pattern is a
    // launch parameter), while Full lowers differently and hashes apart.
    assert_ne!(
        OperatorKey::of(&a1, &opts),
        OperatorKey::of(&a1, &opts.clone().with_vector_width(8)),
    );
    assert_eq!(
        OperatorKey::of(&a1, &opts.clone().with_mode(HaloMode::Basic)),
        OperatorKey::of(&a1, &opts.clone().with_mode(HaloMode::Diagonal)),
    );
    assert_ne!(
        OperatorKey::of(&a1, &opts.clone().with_mode(HaloMode::Basic)),
        OperatorKey::of(&a1, &opts.clone().with_mode(HaloMode::Full)),
    );
}

#[test]
fn tenants_share_artifacts_but_not_worlds() {
    // Two tenants running the same physics share the compiled artifact
    // (one compile) but never a communicator world: every job's world
    // id is unique, so no message/barrier state can cross jobs.
    let prop = Arc::new(Propagator::build(
        KernelKind::Acoustic,
        ModelSpec::new(&[16, 16]).with_nbl(2),
        4,
    ));
    let (sink, records) = collecting_sink();
    let server = Server::start(
        ServeConfig::default().with_workers(4).with_pool_ranks(8),
        sink,
    );
    for tenant in ["alice", "bob", "alice", "carol", "bob", "alice"] {
        let opts = job_opts(&prop, HaloMode::Basic, 2, false);
        let init_prop = Arc::clone(&prop);
        server.submit(
            Job::new(tenant, Arc::clone(&prop.op), opts).with_init(move |ws| init_prop.init(ws)),
        );
    }
    let report = server.shutdown();
    assert_eq!(report.done, 6);
    // Eviction-free reuse: one artifact for the whole lifetime.
    assert_eq!(report.cache.compiles, 1);
    assert_eq!(report.cache.hits, 5);

    let records = records.lock().unwrap();
    let world_ids: Vec<u64> = records
        .iter()
        .filter(|r| r.get("record").and_then(Value::as_str) == Some("job"))
        .filter_map(|r| r.get("world_id").and_then(Value::as_u64))
        .collect();
    assert_eq!(world_ids.len(), 6, "every job reports its world id");
    let unique: HashSet<u64> = world_ids.iter().copied().collect();
    assert_eq!(unique.len(), 6, "communicator worlds are never shared");
}

#[test]
fn oversized_and_overpriced_jobs_are_rejected_not_run() {
    let prop = Arc::new(Propagator::build(
        KernelKind::Acoustic,
        ModelSpec::new(&[16, 16]).with_nbl(2),
        4,
    ));
    let (sink, records) = collecting_sink();
    let server = Server::start(
        ServeConfig::default()
            .with_workers(2)
            .with_pool_ranks(4)
            .with_max_cost(1e-12), // everything is over this price
        sink,
    );
    // Over capacity: wants 8 ranks from a 4-slot pool.
    server.submit(Job::new(
        "greedy",
        Arc::clone(&prop.op),
        job_opts(&prop, HaloMode::Basic, 8, false),
    ));
    // Over price: fits the pool but exceeds the rank-second bound.
    server.submit(Job::new(
        "pricey",
        Arc::clone(&prop.op),
        job_opts(&prop, HaloMode::Basic, 2, false),
    ));
    let report = server.shutdown();
    assert_eq!(report.rejected, 2);
    assert_eq!(report.done, 0);
    // Rejection happens at admission: nothing was compiled.
    assert_eq!(report.cache.compiles, 0);

    let records = records.lock().unwrap();
    for r in records
        .iter()
        .filter(|r| r.get("record").and_then(Value::as_str) == Some("job"))
    {
        assert_eq!(r.get("status").and_then(Value::as_str), Some("rejected"));
        assert!(r.get("reason").and_then(Value::as_str).is_some());
        assert!(r.get("cost").is_some(), "rejections still carry the price");
    }
}

#[test]
fn jit_modules_survive_across_runs_of_one_operator() {
    // The per-run recompile bug, pinned: repeated runs of one operator
    // reuse both the compiled executable (Arc identity) and the JIT's
    // per-geometry native modules (module count stable after warm-up).
    if !available_backends().contains(&Backend::Jit) {
        return; // host without AVX: the jit backend cannot run
    }
    let prop = Propagator::build(
        KernelKind::Acoustic,
        ModelSpec::new(&[16, 16]).with_nbl(2),
        4,
    );
    let opts = prop
        .apply_options(2)
        .with_backend(Backend::Jit)
        .with_ranks(2)
        .with_verify(false);
    let init = |ws: &mut Workspace| {
        mpix_solvers::acoustic::init_workspace(&prop.spec, ws);
    };

    let exec1 = prop.op.executable_for(&opts);
    prop.op.run(&opts, init, |_| ());
    let modules_after_first = exec1.cached_native_modules();
    assert!(
        modules_after_first > 0,
        "a jit run must have compiled native modules"
    );

    prop.op.run(&opts, init, |_| ());
    let exec2 = prop.op.executable_for(&opts);
    assert!(
        Arc::ptr_eq(&exec1, &exec2),
        "repeated runs share one executable instead of recompiling"
    );
    assert_eq!(
        exec2.cached_native_modules(),
        modules_after_first,
        "the second run reused the cached native modules"
    );
}

#[test]
fn admission_prices_from_bytecode_flop_count() {
    // The bytecode count must agree with the AST-level OpCounts for
    // every shipped kernel at SDO 8 — the two are derived independently
    // (IExpr walk vs. compiled-program op weights), so agreement means
    // neither has drifted into a stale snapshot of the compiler.
    for kind in KernelKind::all() {
        let shape: &[usize] = match kind {
            KernelKind::Acoustic => &[16, 16],
            _ => &[10, 10, 10],
        };
        let p = Propagator::build(kind, ModelSpec::new(shape).with_nbl(2), 8);
        assert_eq!(
            p.op.bytecode_flops(),
            p.op.op_counts().flops(),
            "{}: bytecode and AST flop counts drifted apart",
            p.kind.name()
        );
    }

    // Pin the post-CSE viscoelastic count, and pin the price the serve
    // layer actually admits it at to the price derived from that count:
    // reintroducing a pre-CSE per-solver constant (~700 flops/pt) would
    // change the recorded rank-seconds and fail here.
    let p = Arc::new(Propagator::build(
        KernelKind::Viscoelastic,
        ModelSpec::new(&[10, 10, 10]).with_nbl(2),
        8,
    ));
    assert_eq!(
        p.op.bytecode_flops(),
        580,
        "viscoelastic SDO-8 flops/pt after the CSE fix"
    );

    let opts = job_opts(&p, HaloMode::Basic, 2, false);
    let expected = mpix_perf::price_job(
        580.0,
        p.op.op_counts().bytes() as f64,
        p.op.grid().num_points() as u64,
        opts.nt as u64,
        opts.ranks,
        &mpix_perf::archer2_node(),
    );

    let (sink, records) = collecting_sink();
    let server = Server::start(
        ServeConfig::default().with_workers(1).with_pool_ranks(2),
        sink,
    );
    let init = Arc::clone(&p);
    server.submit(Job::new("priced", Arc::clone(&p.op), opts).with_init(move |ws| init.init(ws)));
    let report = server.shutdown();
    assert_eq!(report.done, 1);

    let records = records.lock().unwrap();
    let job = records
        .iter()
        .find(|r| r.get("record").and_then(Value::as_str) == Some("job"))
        .expect("one job record");
    let priced = job
        .get("cost")
        .and_then(|c| c.get("rank_seconds"))
        .and_then(Value::as_f64)
        .expect("job record carries the admission price");
    assert!(
        (priced - expected.rank_seconds).abs() <= 1e-9 * expected.rank_seconds,
        "admission priced {priced} rank-seconds; bytecode-derived price is {}",
        expected.rank_seconds
    );
}
