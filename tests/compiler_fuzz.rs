//! Differential fuzzing of the full compiler pipeline: random stencil
//! operators are compiled (lowering → clustering → CSE → halo detection →
//! IET → bytecode) and executed serially and distributed, then checked
//! against a naive direct evaluator that never touches the compiler.
//!
//! Any disagreement is a compiler bug: wrong index arithmetic, wrong CSE,
//! wrong halo width, wrong unpacking — this test catches them all.

// Linear indices are decoded into multi-dim points in place, so the
// index-based loops are the natural shape here.
#![allow(clippy::needless_range_loop)]
use mpix::prelude::*;
use proptest::prelude::*;

/// A randomly generated stencil term: `coeff * field[t][+off]`.
#[derive(Clone, Debug)]
struct Term {
    field: usize,
    offsets: Vec<i32>,
    coeff: f64,
}

/// A randomly generated operator: per written field, a list of terms
/// (all reads at time t).
#[derive(Clone, Debug)]
struct StencilSpec {
    shape: Vec<usize>,
    nfields: usize,
    space_order: u32,
    eqs: Vec<Vec<Term>>,
}

fn term_strategy(nfields: usize, nd: usize, radius: i32) -> impl Strategy<Value = Term> {
    (
        0..nfields,
        proptest::collection::vec(-radius..=radius, nd),
        -2.0f64..2.0,
    )
        .prop_map(|(field, offsets, coeff)| Term {
            field,
            offsets,
            // Quantize coefficients so f32 arithmetic orders can't create
            // borderline comparisons.
            coeff: (coeff * 4.0).round() / 4.0,
        })
}

fn spec_strategy() -> impl Strategy<Value = StencilSpec> {
    (2usize..=3, 1usize..=3, prop_oneof![Just(2u32), Just(4u32)]).prop_flat_map(
        |(nd, nfields, so)| {
            let radius = (so / 2) as i32;
            let shape = proptest::collection::vec(5usize..9, nd);
            let eq = proptest::collection::vec(term_strategy(nfields, nd, radius), 1..5);
            let eqs = proptest::collection::vec(eq, nfields);
            (shape, eqs).prop_map(move |(shape, eqs)| StencilSpec {
                shape,
                nfields,
                space_order: so,
                eqs,
            })
        },
    )
}

/// Build the operator from a spec.
fn build_operator(spec: &StencilSpec) -> Operator {
    let mut ctx = Context::new();
    let extent: Vec<f64> = spec.shape.iter().map(|&s| (s - 1) as f64).collect();
    let grid = Grid::new(&spec.shape, &extent);
    let fields: Vec<_> = (0..spec.nfields)
        .map(|i| ctx.add_time_function(&format!("f{i}"), &grid, spec.space_order, 1))
        .collect();
    let mut eqs = Vec::new();
    for (wi, terms) in spec.eqs.iter().enumerate() {
        let mut rhs = Expr::Const(0.0);
        for t in terms {
            rhs = rhs + Expr::Const(t.coeff) * fields[t.field].at(0, &t.offsets);
        }
        eqs.push(Eq::new(fields[wi].forward(), rhs));
    }
    Operator::build(ctx, grid, eqs).expect("random operator builds")
}

/// The naive reference: dense global arrays, direct evaluation, zero
/// out-of-bounds semantics (matching the executor's zero-initialized,
/// never-written physical boundary halo).
fn naive_run(spec: &StencilSpec, init: &[Vec<f32>], nt: usize) -> Vec<Vec<f32>> {
    let shape = &spec.shape;
    let total: usize = shape.iter().product();
    let nd = shape.len();
    let mut cur = init.to_vec();
    let idx_of = |idx: &[i64]| -> Option<usize> {
        let mut lin = 0usize;
        for d in 0..nd {
            if idx[d] < 0 || idx[d] >= shape[d] as i64 {
                return None;
            }
            lin = lin * shape[d] + idx[d] as usize;
        }
        Some(lin)
    };
    for _ in 0..nt {
        let mut next = vec![vec![0.0f32; total]; spec.nfields];
        // Enumerate all points.
        let mut point = vec![0i64; nd];
        for lin in 0..total {
            // Decode lin -> point.
            let mut rem = lin;
            for d in (0..nd).rev() {
                point[d] = (rem % shape[d]) as i64;
                rem /= shape[d];
            }
            for (wi, terms) in spec.eqs.iter().enumerate() {
                let mut acc = 0.0f32;
                for t in terms {
                    let sh: Vec<i64> = (0..nd).map(|d| point[d] + t.offsets[d] as i64).collect();
                    let v = idx_of(&sh).map(|k| cur[t.field][k]).unwrap_or(0.0);
                    acc += t.coeff as f32 * v;
                }
                next[wi][lin] = acc;
            }
        }
        cur = next;
    }
    cur
}

fn check_spec(spec: &StencilSpec, nt: usize, nranks: usize) -> Result<(), TestCaseError> {
    let op = build_operator(spec);
    let total: usize = spec.shape.iter().product();
    // Deterministic pseudo-random initial data.
    let init: Vec<Vec<f32>> = (0..spec.nfields)
        .map(|f| {
            (0..total)
                .map(|k| (((k * 2654435761 + f * 97) % 17) as f32 - 8.0) / 8.0)
                .collect()
        })
        .collect();
    let expected = naive_run(spec, &init, nt);

    let shape = spec.shape.clone();
    let nfields = spec.nfields;
    let init2 = init.clone();
    let opts = ApplyOptions::default().with_nt(nt as i64).with_dt(1.0);
    let seed = move |ws: &mut Workspace| {
        let nd = shape.len();
        for f in 0..nfields {
            let mut point = vec![0usize; nd];
            for lin in 0..init2[f].len() {
                let mut rem = lin;
                for d in (0..nd).rev() {
                    point[d] = rem % shape[d];
                    rem /= shape[d];
                }
                ws.field_data_mut(&format!("f{f}"), 0)
                    .set_global(&point, init2[f][lin]);
            }
        }
    };
    let got = op
        .run(&opts.clone().with_ranks(nranks), &seed, |ws| {
            (0..nfields)
                .map(|f| ws.gather(&format!("f{f}")))
                .collect::<Vec<_>>()
        })
        .results;
    for f in 0..nfields {
        for (k, (a, b)) in got[0][f].iter().zip(&expected[f]).enumerate() {
            let tol = 1e-4f32 * b.abs().max(1.0);
            prop_assert!(
                (a - b).abs() <= tol,
                "field {f} idx {k}: compiled {a} vs naive {b} (nranks={nranks}, spec {spec:?})"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn compiled_operator_matches_naive_serial(spec in spec_strategy()) {
        check_spec(&spec, 2, 1)?;
    }

    #[test]
    fn compiled_operator_matches_naive_4_ranks(spec in spec_strategy()) {
        check_spec(&spec, 2, 4)?;
    }
}

#[test]
fn regression_wide_offsets_cross_ranks() {
    // Hand-picked case: maximal offsets in every direction, three fields
    // reading each other, three time steps, six ranks.
    let spec = StencilSpec {
        shape: vec![7, 8, 6],
        nfields: 3,
        space_order: 4,
        eqs: vec![
            vec![
                Term {
                    field: 1,
                    offsets: vec![2, -2, 1],
                    coeff: 0.5,
                },
                Term {
                    field: 2,
                    offsets: vec![-2, 2, -2],
                    coeff: -0.75,
                },
            ],
            vec![
                Term {
                    field: 0,
                    offsets: vec![0, 0, 2],
                    coeff: 1.25,
                },
                Term {
                    field: 1,
                    offsets: vec![-1, 0, 0],
                    coeff: -0.25,
                },
            ],
            vec![
                Term {
                    field: 2,
                    offsets: vec![1, 1, 1],
                    coeff: 0.5,
                },
                Term {
                    field: 0,
                    offsets: vec![-2, -2, -2],
                    coeff: 0.25,
                },
            ],
        ],
    };
    check_spec(&spec, 3, 6).unwrap();
}

#[test]
fn elementary_functions_execute_end_to_end() {
    // u[t+1] = exp(-(u[t])²) + 0.5·sin(u[t,x+1]) — nonlinear pointwise
    // functions through the full pipeline, serial vs 4 ranks vs direct
    // evaluation.
    let mut ctx = Context::new();
    let grid = Grid::new(&[10, 9], &[1.0, 1.0]);
    let u = ctx.add_time_function("u", &grid, 2, 1);
    let rhs = (Expr::Const(-1.0) * u.center() * u.center()).exp() + 0.5 * u.at(0, &[1, 0]).sin();
    let eq = Eq::new(u.forward(), rhs);
    let op = Operator::build(ctx, grid, vec![eq]).unwrap();

    // The generated C uses the libm float functions.
    let c = op.c_code_for(&ApplyOptions::default().with_mode(HaloMode::Basic));
    assert!(c.contains("expf("), "{c}");
    assert!(c.contains("sinf("), "{c}");

    let init = |ws: &mut Workspace| {
        for i in 0..10 {
            for j in 0..9 {
                ws.field_data_mut("u", 0)
                    .set_global(&[i, j], ((i * 9 + j) % 5) as f32 * 0.3 - 0.6);
            }
        }
    };
    let opts = ApplyOptions::default().with_nt(3).with_dt(1.0);
    let serial = op.run(&opts, init, |ws| ws.gather("u")).results.remove(0);
    let dist = op
        .run(&opts.clone().with_ranks(4), init, |ws| ws.gather("u"))
        .results;
    for (a, b) in dist[0].iter().zip(&serial) {
        assert_eq!(a, b, "distributed != serial with elementary functions");
    }

    // Direct check of one interior point after one step.
    let one = op
        .run(
            &ApplyOptions::default().with_nt(1).with_dt(1.0),
            init,
            |ws| ws.gather("u"),
        )
        .results
        .remove(0);
    let u0 = |i: usize, j: usize| ((i * 9 + j) % 5) as f32 * 0.3 - 0.6;
    let want = (-(u0(4, 4) * u0(4, 4))).exp() + 0.5 * u0(5, 4).sin();
    let got = one[4 * 9 + 4];
    assert!((got - want).abs() < 1e-6, "{got} vs {want}");
}

// ===========================================================================
// Mutation testing of the self-verification passes (`mpix-analysis`):
// seed ≥30 deterministic mutants into compiler artifacts — deleted or
// shrunk halo exchanges, corrupted bytecode ops, broken comm schedules,
// racy slab tables — and assert every single one is caught by the pass
// that owns that obligation, while the unmutated artifacts verify clean.
// ===========================================================================

mod verification_oracle {
    use mpix::analysis::comm_schedule::{
        check_tag_windows, collect_schedules, match_schedule, RankPlan, ScheduleCtx,
    };
    use mpix::analysis::{
        bytecode_check, halo_coverage::check_halo_coverage, thread_safety, AnalysisConfig,
    };
    use mpix::codegen::bytecode::CoeffSrc;
    use mpix::codegen::{compile_cluster, fold_constants, fuse_cluster, CompiledCluster, Op};
    use mpix::ir::cluster::{clusterize, Cluster};
    use mpix::ir::halo::{detect_halo_exchanges, HaloPlan, HaloXchg};
    use mpix::ir::lowering::lower_equations;
    use mpix::solvers::{KernelKind, ModelSpec, Propagator};
    use mpix::symbolic::{Context, Grid};
    use mpix::trace::{Diagnostic, Severity};
    use mpix::HaloMode;

    /// The acoustic artifacts every mutant corrupts a copy of.
    fn artifacts() -> (Context, Vec<Cluster>, HaloPlan) {
        let mut ctx = Context::new();
        let g = Grid::new(&[32, 32], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 4, 2);
        let m = ctx.add_function("m", &g, 4);
        let pde = m.center() * u.dt2() - u.laplace();
        let st = mpix::symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
        let cl = clusterize(&lower_equations(&[st], &ctx).unwrap());
        let plan = detect_halo_exchanges(&cl, &ctx);
        (ctx, cl, plan)
    }

    fn fused() -> (Context, CompiledCluster) {
        let (ctx, cl, _) = artifacts();
        (ctx, fuse_cluster(compile_cluster(&cl[0])))
    }

    fn folded_and_fused() -> (CompiledCluster, CompiledCluster) {
        let (_, cl, _) = artifacts();
        let unfused = compile_cluster(&cl[0]);
        let mut folded = unfused.clone();
        fold_constants(&mut folded);
        (folded, fuse_cluster(unfused))
    }

    fn first_load(cc: &mut CompiledCluster) -> (&mut u32, &mut u32) {
        cc.ops
            .iter_mut()
            .find_map(|op| match op {
                Op::Load { stream, off }
                | Op::LoadMul { stream, off, .. }
                | Op::LoadMulAdd { stream, off, .. } => Some((stream, off)),
                _ => None,
            })
            .expect("cluster has at least one load")
    }

    #[test]
    fn analyzer_catches_every_seeded_mutant() {
        // (mutant name, pass expected to catch it, diagnostics produced)
        let mut cases: Vec<(&str, &str, Vec<Diagnostic>)> = Vec::new();

        // --- halo-coverage mutants (corrupt the compiler HaloPlan) ----
        {
            let (ctx, cl, mut plan) = artifacts();
            plan.per_cluster[0].clear();
            cases.push((
                "delete-cluster-exchanges",
                "halo-coverage",
                check_halo_coverage(&ctx, &cl, &plan),
            ));
        }
        for (name, radius) in [
            ("shrink-radius-dim0", vec![1usize, 2]),
            ("shrink-radius-dim1", vec![2, 1]),
            ("zero-radius", vec![0, 0]),
            ("radius-exceeds-halo", vec![5, 5]),
            ("radius-rank-mismatch", vec![2]),
            ("widen-radius", vec![3, 3]),
        ] {
            let (ctx, cl, mut plan) = artifacts();
            plan.per_cluster[0][0].radius = radius;
            cases.push((name, "halo-coverage", check_halo_coverage(&ctx, &cl, &plan)));
        }
        {
            let (ctx, cl, mut plan) = artifacts();
            let f = plan.per_cluster[0][0].field;
            plan.per_cluster[0].push(HaloXchg {
                field: f,
                time_offset: -1,
                radius: vec![1, 1],
            });
            cases.push((
                "redundant-exchange",
                "halo-coverage",
                check_halo_coverage(&ctx, &cl, &plan),
            ));
        }
        {
            let (ctx, cl, mut plan) = artifacts();
            let x = plan.per_cluster[0][0].clone();
            plan.hoisted.push(x);
            cases.push((
                "hoist-rewritten-buffer",
                "halo-coverage",
                check_halo_coverage(&ctx, &cl, &plan),
            ));
        }
        {
            let (ctx, cl, mut plan) = artifacts();
            plan.per_cluster.push(Vec::new());
            cases.push((
                "plan-length-mismatch",
                "halo-coverage",
                check_halo_coverage(&ctx, &cl, &plan),
            ));
        }

        // --- bytecode mutants (corrupt the compiled stack program) ----
        let structural = |name: &'static str, mutate: &dyn Fn(&mut CompiledCluster)| {
            let (ctx, mut cc) = fused();
            mutate(&mut cc);
            (
                name,
                "bytecode",
                bytecode_check::check_compiled(&ctx, 0, &cc, 8),
            )
        };
        cases.push(structural("load-stream-oob", &|cc| {
            *first_load(cc).0 = 99;
        }));
        cases.push(structural("load-offset-oob", &|cc| {
            *first_load(cc).1 = cc.offsets.len() as u32 + 7;
        }));
        cases.push(structural("cross-stream-offset", &|cc| {
            let (s, off) = {
                let (s, off) = first_load(cc);
                (*s, *off)
            };
            cc.offsets[off as usize].0 = (s + 1) % cc.streams.len() as u32;
        }));
        cases.push(structural("const-slot-oob", &|cc| {
            let n = cc.consts.len() as u32;
            for op in &mut cc.ops {
                if let Op::Const(k) = op {
                    *k = n + 3;
                    break;
                }
            }
            // No Const op? Insert an unbalanced OOB one — still bytecode.
            if !cc.ops.iter().any(|o| matches!(o, Op::Const(k) if *k > n)) {
                cc.ops.insert(0, Op::Const(n + 3));
            }
        }));
        cases.push(structural("scalar-slot-oob", &|cc| {
            let n = cc.scalars.len() as u32;
            cc.ops.insert(0, Op::Scalar(n + 2)); // also unbalances the stack
        }));
        cases.push(structural("temp-read-before-assign", &|cc| {
            let t = cc.num_temps as u32;
            cc.num_temps += 1;
            cc.ops.insert(0, Op::SetTemp(t));
            cc.ops.insert(0, Op::Temp(t));
        }));
        cases.push(structural("delete-trailing-op", &|cc| {
            cc.ops.pop();
        }));
        cases.push(structural("insert-add-underflow", &|cc| {
            cc.ops.insert(0, Op::Add);
        }));
        cases.push(structural("understate-max-stack", &|cc| {
            cc.max_stack = 0;
        }));
        cases.push(structural("store-unmarked-written", &|cc| {
            let s = cc.written.iter().position(|&w| w).unwrap();
            cc.written[s] = false;
        }));
        cases.push(structural("written-never-stored", &|cc| {
            let s = cc.written.iter().position(|&w| !w).unwrap();
            cc.written[s] = true;
        }));

        // Bounds mutants: stencil offsets escaping the allocated halo.
        for (name, mutate) in [
            ("delta-beyond-halo-positive", 7i32),
            ("delta-beyond-halo-negative", -7),
        ] {
            let (ctx, mut cc) = fused();
            cc.offsets[0].1[0] = mutate;
            cases.push((
                name,
                "bytecode",
                bytecode_check::check_bounds(&ctx, 0, &cc, &[12, 12], 2, &[8, 16, 32]),
            ));
        }
        {
            let (ctx, mut cc) = fused();
            let last = cc.offsets[0].1.len() - 1;
            cc.offsets[0].1[last] = 9; // inner (vectorized) dimension
            cases.push((
                "inner-delta-beyond-halo",
                "bytecode",
                bytecode_check::check_bounds(&ctx, 0, &cc, &[12, 12], 2, &[8, 16, 32]),
            ));
        }

        // Fusion-invariance mutants.
        {
            let (folded, mut fused) = folded_and_fused();
            fused.ops.push(Op::Const(0));
            fused.ops.push(Op::Pow(2)); // extra flop, unbalanced exit
            cases.push((
                "fusion-extra-flop",
                "bytecode",
                bytecode_check::check_fusion_invariance(0, &folded, &fused, true),
            ));
        }
        {
            let (folded, mut fused) = folded_and_fused();
            let swapped = fused.ops.iter_mut().any(|op| {
                if matches!(op, Op::Mul) {
                    *op = Op::Add;
                    true
                } else {
                    false
                }
            });
            assert!(swapped, "acoustic kernel has a Mul to corrupt");
            cases.push((
                "fusion-mul-to-add",
                "bytecode",
                bytecode_check::check_fusion_invariance(0, &folded, &fused, true),
            ));
        }
        {
            let (folded, mut fused) = folded_and_fused();
            let mut rotated = false;
            for op in &mut fused.ops {
                if let Op::LoadMul {
                    coeff: CoeffSrc::Const(k),
                    ..
                }
                | Op::LoadMulAdd {
                    coeff: CoeffSrc::Const(k),
                    ..
                } = op
                {
                    *k = (*k + 1) % folded.consts.len() as u32;
                    rotated = true;
                    break;
                }
            }
            assert!(rotated, "acoustic kernel fuses a const coefficient");
            cases.push((
                "fusion-wrong-coefficient",
                "bytecode",
                bytecode_check::check_fusion_invariance(0, &folded, &fused, true),
            ));
        }
        {
            let (folded, mut fused) = folded_and_fused();
            fused.num_temps += 1;
            cases.push((
                "fusion-metadata-drift",
                "bytecode",
                bytecode_check::check_fusion_invariance(0, &folded, &fused, true),
            ));
        }

        // --- thread-safety mutants ------------------------------------
        for (name, deltas) in [
            ("written-load-outer-dim", vec![1i32, 0]),
            ("written-load-inner-dim", vec![0, 1]),
        ] {
            let (ctx, mut cc) = fused();
            let ws = cc.written.iter().position(|&w| w).unwrap() as u32;
            let off = {
                let (s, off) = first_load(&mut cc);
                *s = ws;
                *off
            };
            cc.offsets[off as usize] = (ws, deltas);
            cases.push((
                name,
                "thread-safety",
                thread_safety::check_written_offsets(&ctx, 0, &cc),
            ));
        }
        {
            let r = 0..16;
            let mut slabs = thread_safety::compute_slabs(&r, 4, 2, 20);
            slabs[1].0 = slabs[1].0.start - 1..slabs[1].0.end; // overlap
            slabs[1].1 = (slabs[1].0.start + 2) * 20..(slabs[1].0.end + 2) * 20;
            cases.push((
                "slab-overlap",
                "thread-safety",
                thread_safety::check_slabs(&slabs, &r, 2, 20, "mutant"),
            ));
        }
        {
            let r = 0..16;
            let mut slabs = thread_safety::compute_slabs(&r, 4, 2, 20);
            slabs[2].0 = slabs[2].0.end..slabs[2].0.end; // gap
            slabs[2].1 = (slabs[2].0.start + 2) * 20..(slabs[2].0.end + 2) * 20;
            cases.push((
                "slab-gap",
                "thread-safety",
                thread_safety::check_slabs(&slabs, &r, 2, 20, "mutant"),
            ));
        }
        {
            let r = 0..16;
            let mut slabs = thread_safety::compute_slabs(&r, 4, 2, 20);
            slabs[0].1 = slabs[0].1.start..slabs[0].1.end + 20; // stray linear slab
            cases.push((
                "slab-linear-mismatch",
                "thread-safety",
                thread_safety::check_slabs(&slabs, &r, 2, 20, "mutant"),
            ));
        }

        // --- comm-schedule mutants (corrupt collected real schedules) -
        let sctx = ScheduleCtx {
            global: vec![16, 16],
            dims: vec![2, 2],
            halo: 2,
            radius: 2,
        };
        let diag = collect_schedules(&sctx.global, &sctx.dims, 2, HaloMode::Diagonal, 2);
        let basic = collect_schedules(&sctx.global, &sctx.dims, 2, HaloMode::Basic, 2);
        assert!(match_schedule(&diag, &sctx, "clean").is_empty());
        assert!(match_schedule(&basic, &sctx, "clean").is_empty());
        let comm = |name: &'static str, base: &[RankPlan], mutate: &dyn Fn(&mut Vec<RankPlan>)| {
            let mut plans = base.to_vec();
            mutate(&mut plans);
            (name, "comm-schedule", match_schedule(&plans, &sctx, name))
        };
        cases.push(comm("drop-message", &diag, &|p| {
            p[0].steps[0].pop();
        }));
        cases.push(comm("corrupt-recv-tag", &diag, &|p| {
            p[1].steps[0][0].recv_tag += 1000;
        }));
        cases.push(comm("corrupt-send-tag", &diag, &|p| {
            p[2].steps[0][0].send_tag += 1000;
        }));
        cases.push(comm("wrong-peer", &diag, &|p| {
            let r = &mut p[0].steps[0][0];
            r.peer = (r.peer + 1) % 4;
        }));
        cases.push(comm("shrink-recv-box", &diag, &|p| {
            let b = &mut p[0].steps[0][0].recv_box[1];
            *b = b.start..b.end - 1;
        }));
        cases.push(comm("shrink-send-box", &diag, &|p| {
            let b = &mut p[3].steps[0][0].send_box[0];
            *b = b.start..b.end - 1;
        }));
        cases.push(comm("recv-into-owned", &diag, &|p| {
            p[0].steps[0][0].recv_box = vec![4..6, 4..6];
        }));
        cases.push(comm("duplicate-message", &diag, &|p| {
            let row = p[0].steps[0][0].clone();
            p[0].steps[0].push(row);
        }));
        cases.push(comm("drop-basic-step", &basic, &|p| {
            p[0].steps.pop();
        }));
        cases.push(comm("basic-corner-skew", &basic, &|p| {
            // Narrow the second-step send so the corner columns it is
            // supposed to forward (received in step one) are dropped.
            let b = &mut p[0].steps[1][0].send_box[0];
            *b = b.start + 2..b.end;
        }));
        {
            // Two buffers of one field, 8 time offsets apart: the tag
            // formula folds them onto the same window.
            let mut ctx = Context::new();
            let g = Grid::new(&[16, 16], &[1.0, 1.0]);
            let u = ctx.add_time_function("u", &g, 4, 2);
            let keys = vec![(u.id(), 0i32, 2usize), (u.id(), 8, 2)];
            cases.push((
                "tag-window-collision",
                "comm-schedule",
                check_tag_windows(&ctx, &keys, 2),
            ));
        }

        // --- the oracle: every mutant caught, by the right pass -------
        assert!(cases.len() >= 30, "corpus has {} mutants", cases.len());
        for (name, pass, diags) in &cases {
            assert!(
                !diags.is_empty(),
                "mutant {name:?} escaped every verification pass"
            );
            assert!(
                diags.iter().any(|d| d.pass == *pass),
                "mutant {name:?} was not caught by the {pass} pass: {diags:?}"
            );
        }
        // Spot-check severities: correctness mutants are Errors, waste
        // mutants are Warnings.
        let sev = |n: &str| {
            cases
                .iter()
                .find(|(name, _, _)| *name == n)
                .unwrap()
                .2
                .iter()
                .map(|d| d.severity)
                .max()
                .unwrap()
        };
        assert_eq!(sev("delete-cluster-exchanges"), Severity::Error);
        assert_eq!(sev("drop-message"), Severity::Error);
        assert_eq!(sev("widen-radius"), Severity::Warning);
        assert_eq!(sev("written-load-inner-dim"), Severity::Warning);
    }

    /// Lint mutants: each seeded defect must be caught by exactly its
    /// owning `MPX0xx` code — no escapes, no cross-talk between lints.
    #[test]
    fn lint_catches_seeded_mutants() {
        use mpix::analysis::lint::absint;
        use mpix::ir::iexpr::IExpr;
        use std::collections::BTreeSet;

        let build = || {
            let mut ctx = Context::new();
            let g = Grid::new(&[32, 32], &[1.0, 1.0]);
            let u = ctx.add_time_function("u", &g, 4, 2);
            let m = ctx.add_function("m", &g, 4);
            let pde = m.center() * u.dt2() - u.laplace();
            let st = mpix::symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
            let cl = clusterize(&lower_equations(&[st], &ctx).unwrap());
            (ctx, cl, u.id(), m.id())
        };
        let codes = |fs: &[mpix::analysis::lint::LintFinding]| -> BTreeSet<&'static str> {
            fs.iter().map(|f| f.code).collect()
        };

        // Unmutated artifacts are lint-clean under the default contract.
        let (ctx, cl, u_id, _) = build();
        assert!(absint::lint_clusters(&ctx, &cl, None).is_empty());
        assert!(absint::lint_bytecode(&cl).is_empty());

        // Mutant: the declared initialization set drops `m` — every read
        // of the velocity model becomes a read of a buffer nothing wrote.
        let init_without_m: BTreeSet<_> = [u_id].into_iter().collect();
        let found = absint::lint_clusters(&ctx, &cl, Some(&init_without_m));
        assert_eq!(
            codes(&found),
            BTreeSet::from(["MPX001"]),
            "dropped-field-init must be caught by MPX001 alone: {found:?}"
        );

        // Mutant: multiply the update by 1/0 — a statically-zero divisor.
        let (ctx, mut cl, _, _) = build();
        let si = cl[0]
            .stmts
            .iter()
            .position(|s| matches!(s, mpix::ir::cluster::Stmt::Store { .. }))
            .unwrap();
        let old = cl[0].stmts[si].value().clone();
        *cl[0].stmts[si].value_mut() =
            IExpr::Mul(vec![old, IExpr::Pow(Box::new(IExpr::Const(0.0)), -1)]);
        let found = absint::lint_clusters(&ctx, &cl, None);
        assert_eq!(
            codes(&found),
            BTreeSet::from(["MPX002"]),
            "zero-divisor must be caught by MPX002 alone: {found:?}"
        );

        // Mutant: duplicate the store — the first write of u[t+1] is
        // overwritten with no intervening read, a dead store.
        let (ctx, mut cl, _, _) = build();
        let dup = cl[0].stmts[si].clone();
        cl[0].stmts.push(dup);
        let found = absint::lint_clusters(&ctx, &cl, None);
        assert_eq!(
            codes(&found),
            BTreeSet::from(["MPX004"]),
            "duplicate-store must be caught by MPX004 alone: {found:?}"
        );
    }

    /// Floating-point lint mutants: seeded numerical defects in a real
    /// compiled operator must be caught by exactly their owning code
    /// (MPX015 cancellation, MPX016 accumulation amplification) — same
    /// no-escape/no-cross-talk contract as `lint_catches_seeded_mutants`.
    #[test]
    fn fp_lints_catch_seeded_mutants() {
        use mpix::analysis::fp::lint_clusters_fp;
        use mpix::ir::iexpr::IExpr;
        use std::collections::BTreeSet;

        let build = || {
            let mut ctx = Context::new();
            let g = Grid::new(&[32, 32], &[1.0, 1.0]);
            let u = ctx.add_time_function("u", &g, 4, 2);
            let m = ctx.add_function("m", &g, 4);
            let pde = m.center() * u.dt2() - u.laplace();
            let st = mpix::symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
            let cl = clusterize(&lower_equations(&[st], &ctx).unwrap());
            (ctx, cl)
        };
        let codes = |fs: &[mpix::analysis::lint::LintFinding]| -> BTreeSet<&'static str> {
            fs.iter().map(|f| f.code).collect()
        };

        // The unmutated operator is clean under the structural fp pass.
        let (ctx, cl) = build();
        assert!(lint_clusters_fp(&ctx, &cl).is_empty());
        let si = cl[0]
            .stmts
            .iter()
            .position(|s| matches!(s, mpix::ir::cluster::Stmt::Store { .. }))
            .unwrap();

        // Mutant: scale the update by (1 − 0.99999) written as an Add —
        // a constant pair that provably cancels by ~1e5 ≫ the 2^10
        // condition-number threshold at every grid point.
        let (ctx, mut cl) = build();
        let old = cl[0].stmts[si].value().clone();
        *cl[0].stmts[si].value_mut() = IExpr::Mul(vec![
            IExpr::Add(vec![IExpr::Const(1.0), IExpr::Const(-0.99999)]),
            old,
        ]);
        let found = lint_clusters_fp(&ctx, &cl);
        assert_eq!(
            codes(&found),
            BTreeSet::from(["MPX015"]),
            "seeded cancellation must be caught by MPX015 alone: {found:?}"
        );

        // Mutant: replace the update with a 300-tap flat accumulation of
        // coeff·u[t] loads — it fuses into one LoadMulAdd run whose
        // rounding-event count is far past the affine envelope for a
        // radius-1 2-D cluster (8·2·3 + 16 = 64 events).
        let (ctx, mut cl) = build();
        let mpix::ir::cluster::Stmt::Store { target, .. } = &cl[0].stmts[si] else {
            unreachable!()
        };
        let uf = target.field;
        let terms: Vec<IExpr> = (0..100)
            .flat_map(|i| {
                [-1i32, 0, 1].map(|d| {
                    IExpr::Mul(vec![
                        IExpr::Const(1.0 + (i % 3) as f64 * 1e-3),
                        IExpr::Load(mpix::ir::iexpr::IdxAccess {
                            field: uf,
                            time_offset: 0,
                            deltas: vec![d, 0],
                        }),
                    ])
                })
            })
            .collect();
        *cl[0].stmts[si].value_mut() = IExpr::Add(terms);
        let found = lint_clusters_fp(&ctx, &cl);
        assert!(
            codes(&found).contains("MPX016"),
            "seeded accumulation chain must be caught by MPX016: {found:?}"
        );
    }

    #[test]
    fn unmutated_artifacts_verify_clean() {
        let (ctx, cl, plan) = artifacts();
        assert!(check_halo_coverage(&ctx, &cl, &plan).is_empty());
        let cc = fuse_cluster(compile_cluster(&cl[0]));
        assert!(bytecode_check::check_compiled(&ctx, 0, &cc, 8).is_empty());
        assert!(bytecode_check::check_bounds(&ctx, 0, &cc, &[12, 12], 2, &[8, 16, 32]).is_empty());
        assert!(thread_safety::check_written_offsets(&ctx, 0, &cc).is_empty());
    }

    #[test]
    fn shipped_operators_verify_clean() {
        // The analyzer must not cry wolf: every shipped solver at two
        // representative space orders is clean under the default sweep.
        for kind in KernelKind::all() {
            for so in [4u32, 8] {
                let shape: &[usize] = match kind {
                    KernelKind::Acoustic => &[24, 24],
                    _ => &[12, 12, 12],
                };
                let prop = Propagator::build(kind, ModelSpec::new(shape).with_nbl(2), so);
                let report = prop.op.verify(&AnalysisConfig::default());
                assert!(
                    report.is_clean(),
                    "{} so={so} is not clean:\n{report}",
                    kind.name()
                );
            }
        }
    }
}
