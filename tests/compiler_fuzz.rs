//! Differential fuzzing of the full compiler pipeline: random stencil
//! operators are compiled (lowering → clustering → CSE → halo detection →
//! IET → bytecode) and executed serially and distributed, then checked
//! against a naive direct evaluator that never touches the compiler.
//!
//! Any disagreement is a compiler bug: wrong index arithmetic, wrong CSE,
//! wrong halo width, wrong unpacking — this test catches them all.

// Pre-dates the unified Operator::run API; deliberately left on the
// deprecated apply_*/executable/c_code shims so they stay covered.
#![allow(deprecated)]
// Linear indices are decoded into multi-dim points in place, so the
// index-based loops are the natural shape here.
#![allow(clippy::needless_range_loop)]
use mpix::prelude::*;
use proptest::prelude::*;

/// A randomly generated stencil term: `coeff * field[t][+off]`.
#[derive(Clone, Debug)]
struct Term {
    field: usize,
    offsets: Vec<i32>,
    coeff: f64,
}

/// A randomly generated operator: per written field, a list of terms
/// (all reads at time t).
#[derive(Clone, Debug)]
struct StencilSpec {
    shape: Vec<usize>,
    nfields: usize,
    space_order: u32,
    eqs: Vec<Vec<Term>>,
}

fn term_strategy(nfields: usize, nd: usize, radius: i32) -> impl Strategy<Value = Term> {
    (
        0..nfields,
        proptest::collection::vec(-radius..=radius, nd),
        -2.0f64..2.0,
    )
        .prop_map(|(field, offsets, coeff)| Term {
            field,
            offsets,
            // Quantize coefficients so f32 arithmetic orders can't create
            // borderline comparisons.
            coeff: (coeff * 4.0).round() / 4.0,
        })
}

fn spec_strategy() -> impl Strategy<Value = StencilSpec> {
    (2usize..=3, 1usize..=3, prop_oneof![Just(2u32), Just(4u32)]).prop_flat_map(
        |(nd, nfields, so)| {
            let radius = (so / 2) as i32;
            let shape = proptest::collection::vec(5usize..9, nd);
            let eq = proptest::collection::vec(term_strategy(nfields, nd, radius), 1..5);
            let eqs = proptest::collection::vec(eq, nfields);
            (shape, eqs).prop_map(move |(shape, eqs)| StencilSpec {
                shape,
                nfields,
                space_order: so,
                eqs,
            })
        },
    )
}

/// Build the operator from a spec.
fn build_operator(spec: &StencilSpec) -> Operator {
    let mut ctx = Context::new();
    let extent: Vec<f64> = spec.shape.iter().map(|&s| (s - 1) as f64).collect();
    let grid = Grid::new(&spec.shape, &extent);
    let fields: Vec<_> = (0..spec.nfields)
        .map(|i| ctx.add_time_function(&format!("f{i}"), &grid, spec.space_order, 1))
        .collect();
    let mut eqs = Vec::new();
    for (wi, terms) in spec.eqs.iter().enumerate() {
        let mut rhs = Expr::Const(0.0);
        for t in terms {
            rhs = rhs + Expr::Const(t.coeff) * fields[t.field].at(0, &t.offsets);
        }
        eqs.push(Eq::new(fields[wi].forward(), rhs));
    }
    Operator::build(ctx, grid, eqs).expect("random operator builds")
}

/// The naive reference: dense global arrays, direct evaluation, zero
/// out-of-bounds semantics (matching the executor's zero-initialized,
/// never-written physical boundary halo).
fn naive_run(spec: &StencilSpec, init: &[Vec<f32>], nt: usize) -> Vec<Vec<f32>> {
    let shape = &spec.shape;
    let total: usize = shape.iter().product();
    let nd = shape.len();
    let mut cur = init.to_vec();
    let idx_of = |idx: &[i64]| -> Option<usize> {
        let mut lin = 0usize;
        for d in 0..nd {
            if idx[d] < 0 || idx[d] >= shape[d] as i64 {
                return None;
            }
            lin = lin * shape[d] + idx[d] as usize;
        }
        Some(lin)
    };
    for _ in 0..nt {
        let mut next = vec![vec![0.0f32; total]; spec.nfields];
        // Enumerate all points.
        let mut point = vec![0i64; nd];
        for lin in 0..total {
            // Decode lin -> point.
            let mut rem = lin;
            for d in (0..nd).rev() {
                point[d] = (rem % shape[d]) as i64;
                rem /= shape[d];
            }
            for (wi, terms) in spec.eqs.iter().enumerate() {
                let mut acc = 0.0f32;
                for t in terms {
                    let sh: Vec<i64> = (0..nd).map(|d| point[d] + t.offsets[d] as i64).collect();
                    let v = idx_of(&sh).map(|k| cur[t.field][k]).unwrap_or(0.0);
                    acc += t.coeff as f32 * v;
                }
                next[wi][lin] = acc;
            }
        }
        cur = next;
    }
    cur
}

fn check_spec(spec: &StencilSpec, nt: usize, nranks: usize) -> Result<(), TestCaseError> {
    let op = build_operator(spec);
    let total: usize = spec.shape.iter().product();
    // Deterministic pseudo-random initial data.
    let init: Vec<Vec<f32>> = (0..spec.nfields)
        .map(|f| {
            (0..total)
                .map(|k| (((k * 2654435761 + f * 97) % 17) as f32 - 8.0) / 8.0)
                .collect()
        })
        .collect();
    let expected = naive_run(spec, &init, nt);

    let shape = spec.shape.clone();
    let nfields = spec.nfields;
    let init2 = init.clone();
    let opts = ApplyOptions::default().with_nt(nt as i64).with_dt(1.0);
    let seed = move |ws: &mut Workspace| {
        let nd = shape.len();
        for f in 0..nfields {
            let mut point = vec![0usize; nd];
            for lin in 0..init2[f].len() {
                let mut rem = lin;
                for d in (0..nd).rev() {
                    point[d] = rem % shape[d];
                    rem /= shape[d];
                }
                ws.field_data_mut(&format!("f{f}"), 0)
                    .set_global(&point, init2[f][lin]);
            }
        }
    };
    let got = op.apply_distributed(nranks, None, &opts, &seed, |ws| {
        (0..nfields)
            .map(|f| ws.gather(&format!("f{f}")))
            .collect::<Vec<_>>()
    });
    for f in 0..nfields {
        for (k, (a, b)) in got[0][f].iter().zip(&expected[f]).enumerate() {
            let tol = 1e-4f32 * b.abs().max(1.0);
            prop_assert!(
                (a - b).abs() <= tol,
                "field {f} idx {k}: compiled {a} vs naive {b} (nranks={nranks}, spec {spec:?})"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn compiled_operator_matches_naive_serial(spec in spec_strategy()) {
        check_spec(&spec, 2, 1)?;
    }

    #[test]
    fn compiled_operator_matches_naive_4_ranks(spec in spec_strategy()) {
        check_spec(&spec, 2, 4)?;
    }
}

#[test]
fn regression_wide_offsets_cross_ranks() {
    // Hand-picked case: maximal offsets in every direction, three fields
    // reading each other, three time steps, six ranks.
    let spec = StencilSpec {
        shape: vec![7, 8, 6],
        nfields: 3,
        space_order: 4,
        eqs: vec![
            vec![
                Term {
                    field: 1,
                    offsets: vec![2, -2, 1],
                    coeff: 0.5,
                },
                Term {
                    field: 2,
                    offsets: vec![-2, 2, -2],
                    coeff: -0.75,
                },
            ],
            vec![
                Term {
                    field: 0,
                    offsets: vec![0, 0, 2],
                    coeff: 1.25,
                },
                Term {
                    field: 1,
                    offsets: vec![-1, 0, 0],
                    coeff: -0.25,
                },
            ],
            vec![
                Term {
                    field: 2,
                    offsets: vec![1, 1, 1],
                    coeff: 0.5,
                },
                Term {
                    field: 0,
                    offsets: vec![-2, -2, -2],
                    coeff: 0.25,
                },
            ],
        ],
    };
    check_spec(&spec, 3, 6).unwrap();
}

#[test]
fn elementary_functions_execute_end_to_end() {
    // u[t+1] = exp(-(u[t])²) + 0.5·sin(u[t,x+1]) — nonlinear pointwise
    // functions through the full pipeline, serial vs 4 ranks vs direct
    // evaluation.
    let mut ctx = Context::new();
    let grid = Grid::new(&[10, 9], &[1.0, 1.0]);
    let u = ctx.add_time_function("u", &grid, 2, 1);
    let rhs = (Expr::Const(-1.0) * u.center() * u.center()).exp() + 0.5 * u.at(0, &[1, 0]).sin();
    let eq = Eq::new(u.forward(), rhs);
    let op = Operator::build(ctx, grid, vec![eq]).unwrap();

    // The generated C uses the libm float functions.
    let c = op.c_code(HaloMode::Basic);
    assert!(c.contains("expf("), "{c}");
    assert!(c.contains("sinf("), "{c}");

    let init = |ws: &mut Workspace| {
        for i in 0..10 {
            for j in 0..9 {
                ws.field_data_mut("u", 0)
                    .set_global(&[i, j], ((i * 9 + j) % 5) as f32 * 0.3 - 0.6);
            }
        }
    };
    let opts = ApplyOptions::default().with_nt(3).with_dt(1.0);
    let serial = op.apply_local(&opts, init, |ws| ws.gather("u"));
    let dist = op.apply_distributed(4, None, &opts, init, |ws| ws.gather("u"));
    for (a, b) in dist[0].iter().zip(&serial) {
        assert_eq!(a, b, "distributed != serial with elementary functions");
    }

    // Direct check of one interior point after one step.
    let one = op.apply_local(
        &ApplyOptions::default().with_nt(1).with_dt(1.0),
        init,
        |ws| ws.gather("u"),
    );
    let u0 = |i: usize, j: usize| ((i * 9 + j) % 5) as f32 * 0.3 - 0.6;
    let want = (-(u0(4, 4) * u0(4, 4))).exp() + 0.5 * u0(5, 4).sin();
    let got = one[4 * 9 + 4];
    assert!((got - want).abs() < 1e-6, "{got} vs {want}");
}
