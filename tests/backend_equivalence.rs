//! The multi-backend correctness claim: every selectable execution
//! backend — the native JIT above all — is **bitwise identical** to the
//! scalar bytecode interpreter, alone and composed with loop blocking
//! and slab threading, across the interpreter's strip widths, space
//! orders 4/8/12/16, and all four shipped solver kernels.
//!
//! Bitwise — not approximately — because the JIT emits the same f32
//! operations in the same per-point order as the interpreter (shared
//! mul-then-add rounding, no FMA contraction), and clusters it cannot
//! prove it supports fall back to the interpreter per cluster. Selecting
//! a backend may change speed, never results.

use mpix::prelude::*;
use mpix::solvers::{KernelKind, ModelSpec, Propagator};
use proptest::prelude::*;

fn have_jit() -> bool {
    mpix::available_backends().contains(&Backend::Jit)
}

/// Diffusion-style operator `u.dt = laplace(u)` over an arbitrary grid.
fn laplace_op(shape: &[usize], so: u32) -> Operator {
    let mut ctx = Context::new();
    let spacing: Vec<f64> = shape.iter().map(|_| 0.1).collect();
    let grid = Grid::new(shape, &spacing);
    let u = ctx.add_time_function("u", &grid, so, 1);
    let eq = Eq::new(u.dt(), u.laplace());
    let st = eq.solve_for(&u.forward(), &ctx).unwrap();
    Operator::build(ctx, grid, vec![st]).unwrap()
}

/// Run 3 steps with the given backend/execution knobs and gather the
/// full global field, bit-exact. Same deterministic seed as
/// `tests/vector_equivalence.rs` so every stencil tap matters.
fn run_config(
    op: &Operator,
    shape: &[usize],
    backend: Backend,
    vw: usize,
    block: usize,
    threads: usize,
) -> Vec<f32> {
    let opts = ApplyOptions::default()
        .with_dt(0.001)
        .with_nt(3)
        .with_backend(backend)
        .with_vector_width(vw)
        .with_block(block)
        .with_threads(threads);
    let shape = shape.to_vec();
    let applied = op.run(
        &opts,
        move |ws: &mut Workspace| {
            let u = ws.field_data_mut("u", 0);
            let mut i = 0usize;
            let mut idx = vec![0usize; shape.len()];
            loop {
                u.set_global(&idx, ((i * 7 + 3) % 23) as f32 * 0.25);
                i += 1;
                let mut d = shape.len();
                loop {
                    if d == 0 {
                        return;
                    }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < shape[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        },
        |ws| ws.gather("u"),
    );
    applied.results.into_iter().next().unwrap()
}

fn assert_backends_bitwise_equal(shape: &[usize], so: u32) {
    let op = laplace_op(shape, so);
    let oracle = run_config(&op, shape, Backend::Bytecode, 0, 0, 1);
    // The interpreter's own strip widths stay the cross-check baseline…
    for vw in [8usize, 16, 32] {
        let v = run_config(&op, shape, Backend::Bytecode, vw, 0, 1);
        for (k, (a, b)) in oracle.iter().zip(&v).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "shape={shape:?} so={so} bytecode vw={vw} idx={k}: {a} vs {b}"
            );
        }
    }
    if !have_jit() {
        return;
    }
    // …and the JIT must match them on every execution shape, including
    // composition with blocking and threading (tile-sized boxes, slab
    // writes).
    for (block, threads) in [(0usize, 1usize), (4, 1), (0, 3), (4, 2)] {
        let jit = run_config(&op, shape, Backend::Jit, 0, block, threads);
        for (k, (a, b)) in oracle.iter().zip(&jit).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "shape={shape:?} so={so} jit block={block} threads={threads} idx={k}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn jit_matches_bytecode_1d() {
    // 13 and 40: remainder-only and strip+remainder inner extents.
    assert_backends_bitwise_equal(&[13], 4);
    assert_backends_bitwise_equal(&[40], 8);
}

#[test]
fn jit_matches_bytecode_2d() {
    assert_backends_bitwise_equal(&[9, 21], 4);
    assert_backends_bitwise_equal(&[7, 33], 8);
}

#[test]
fn jit_matches_bytecode_3d() {
    assert_backends_bitwise_equal(&[6, 7, 19], 4);
    assert_backends_bitwise_equal(&[5, 6, 37], 8);
}

/// All four shipped solvers × SDO 4/8/12/16: the JIT run (its internal
/// per-cluster fallback included) reproduces the interpreter bit for
/// bit, through the full pipeline — sources, boundary damping, staggered
/// multi-cluster updates, halo exchange on one rank.
#[test]
fn all_kernels_all_orders_bitwise_equal() {
    for kind in KernelKind::all() {
        for sdo in [4u32, 8, 12, 16] {
            let spec = ModelSpec::new(&[8, 8, 8]).with_nbl(2);
            let prop = Propagator::build(kind, spec, sdo);
            let nt = 3i64;
            let pref = &prop;
            let init = move |ws: &mut Workspace| {
                pref.init(ws);
                pref.add_ricker_source(ws, 18.0, nt as usize);
            };
            let gather = |ws: &mut Workspace| ws.gather(pref.main_field());
            let run = |backend: Backend, vw: usize| {
                let opts = prop
                    .apply_options(nt)
                    .with_backend(backend)
                    .with_vector_width(vw);
                prop.op.run(&opts, init, gather).results.remove(0)
            };
            let oracle = run(Backend::Bytecode, 0);
            let vector = run(Backend::Bytecode, 16);
            for (k, (a, b)) in oracle.iter().zip(&vector).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{kind:?} sdo={sdo} bytecode vw=16 idx={k}: {a} vs {b}"
                );
            }
            if have_jit() {
                let jit = run(Backend::Jit, 0);
                for (k, (a, b)) in oracle.iter().zip(&jit).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{kind:?} sdo={sdo} jit idx={k}: {a} vs {b}"
                    );
                }
            }
        }
    }
}

/// The C backend is an emission peer that executes through the
/// interpreter — selecting it must be a behavioral no-op.
#[test]
fn c_backend_matches_bytecode() {
    let shape = [9, 17];
    let op = laplace_op(&shape, 4);
    let oracle = run_config(&op, &shape, Backend::Bytecode, 0, 0, 1);
    let c = run_config(&op, &shape, Backend::C, 0, 0, 1);
    for (k, (a, b)) in oracle.iter().zip(&c).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "c backend idx={k}: {a} vs {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random 1D/2D/3D shapes with awkward inner extents: the JIT's
    /// strip loop + scalar tail agree bit-for-bit with the scalar
    /// interpreter, and with its vectorized strips.
    #[test]
    fn random_shapes_bitwise_equal(
        nd in 1usize..=3,
        inner in 5usize..40,
        outer in 5usize..9,
        so in prop_oneof![Just(4u32), Just(8u32)],
    ) {
        let mut shape = vec![outer; nd - 1];
        shape.push(inner);
        let op = laplace_op(&shape, so);
        let oracle = run_config(&op, &shape, Backend::Bytecode, 0, 0, 1);
        let v = run_config(&op, &shape, Backend::Bytecode, 16, 0, 1);
        for (a, b) in oracle.iter().zip(&v) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        if have_jit() {
            let jit = run_config(&op, &shape, Backend::Jit, 0, 0, 1);
            for (a, b) in oracle.iter().zip(&jit) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
