//! The vector-engine correctness claim: lane-vectorized strip execution
//! (every supported width, including boxes whose inner extent is not a
//! multiple of the width) is **bitwise identical** to the scalar
//! interpreter, alone and composed with loop blocking and slab
//! threading, across 1D/2D/3D grids and space orders 4/8.
//!
//! Bitwise — not approximately — because the strip interpreter performs
//! the same f32 operations in the same per-point order as the scalar
//! path, and the superinstruction fusion pass keeps mul-then-add
//! rounding (no FMA contraction).

use mpix::prelude::*;
use proptest::prelude::*;

/// Diffusion-style operator `u.dt = laplace(u)` over an arbitrary grid.
fn laplace_op(shape: &[usize], so: u32) -> Operator {
    let mut ctx = Context::new();
    let spacing: Vec<f64> = shape.iter().map(|_| 0.1).collect();
    let grid = Grid::new(shape, &spacing);
    let u = ctx.add_time_function("u", &grid, so, 1);
    let eq = Eq::new(u.dt(), u.laplace());
    let st = eq.solve_for(&u.forward(), &ctx).unwrap();
    Operator::build(ctx, grid, vec![st]).unwrap()
}

/// Run `nt` steps with the given execution knobs and gather the full
/// global field, bit-exact.
fn run_config(op: &Operator, shape: &[usize], vw: usize, block: usize, threads: usize) -> Vec<f32> {
    let opts = ApplyOptions::default()
        .with_dt(0.001)
        .with_nt(3)
        .with_vector_width(vw)
        .with_block(block)
        .with_threads(threads);
    let shape = shape.to_vec();
    let applied = op.run(
        &opts,
        move |ws: &mut Workspace| {
            let u = ws.field_data_mut("u", 0);
            // Deterministic non-uniform seed so every tap matters.
            let mut i = 0usize;
            let mut idx = vec![0usize; shape.len()];
            loop {
                u.set_global(&idx, ((i * 7 + 3) % 23) as f32 * 0.25);
                i += 1;
                let mut d = shape.len();
                loop {
                    if d == 0 {
                        return;
                    }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < shape[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        },
        |ws| ws.gather("u"),
    );
    applied.results.into_iter().next().unwrap()
}

fn assert_all_widths_bitwise_equal(shape: &[usize], so: u32) {
    let op = laplace_op(shape, so);
    let scalar = run_config(&op, shape, 0, 0, 1);
    for vw in [8usize, 16, 32] {
        let vec_out = run_config(&op, shape, vw, 0, 1);
        for (k, (a, b)) in scalar.iter().zip(&vec_out).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "shape={shape:?} so={so} vw={vw} idx={k}: {a} vs {b}"
            );
        }
    }
    // Composed with blocking and threading at one representative width.
    for (vw, block, threads) in [(16usize, 4usize, 1usize), (8, 0, 3), (16, 4, 2)] {
        let out = run_config(&op, shape, vw, block, threads);
        for (k, (a, b)) in scalar.iter().zip(&out).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "shape={shape:?} so={so} vw={vw} block={block} threads={threads} idx={k}"
            );
        }
    }
}

#[test]
fn vectorized_matches_scalar_1d() {
    // 13 and 40: remainder-only and strip+remainder inner extents.
    assert_all_widths_bitwise_equal(&[13], 4);
    assert_all_widths_bitwise_equal(&[40], 8);
}

#[test]
fn vectorized_matches_scalar_2d() {
    assert_all_widths_bitwise_equal(&[9, 21], 4);
    assert_all_widths_bitwise_equal(&[7, 33], 8);
}

#[test]
fn vectorized_matches_scalar_3d() {
    assert_all_widths_bitwise_equal(&[6, 7, 19], 4);
    assert_all_widths_bitwise_equal(&[5, 6, 37], 8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random 2D/3D shapes with awkward inner extents: scalar and every
    /// vector width agree bit-for-bit.
    #[test]
    fn random_shapes_bitwise_equal(
        nd in 1usize..=3,
        inner in 5usize..40,
        outer in 5usize..9,
        so in prop_oneof![Just(4u32), Just(8u32)],
    ) {
        let mut shape = vec![outer; nd - 1];
        shape.push(inner);
        let op = laplace_op(&shape, so);
        let scalar = run_config(&op, &shape, 0, 0, 1);
        for vw in [8usize, 16, 32] {
            let v = run_config(&op, &shape, vw, 0, 1);
            for (a, b) in scalar.iter().zip(&v) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
