//! Integration tests for the `mpix-analysis::lint` family:
//!
//! * the parametric-in-P schedule prover must agree with the concrete
//!   rank-by-rank matcher at sampled rank counts — the prover's verdict
//!   is "clean for every P", so at any sampled P the concrete schedules
//!   must also be clean AND structurally equal (steps, message counts)
//!   to the symbolic schedule of each rank's position class;
//! * `verify_operator` output is deterministic: stably sorted, deduped,
//!   identical across runs;
//! * `MPIX_LINT`-style per-code levels gate what verification reports.

use mpix::analysis::comm_schedule::{collect_schedules, match_schedule, ScheduleCtx};
use mpix::analysis::lint::parametric::{build_all_schedules, class_of, prove_parametric};
use mpix::analysis::lint::LintConfig;
use mpix::analysis::AnalysisConfig;
use mpix::comm::dims_create;
use mpix::prelude::*;
use mpix::trace::Severity;

const SAMPLED_P: [usize; 7] = [2, 3, 5, 8, 32, 128, 512];

#[test]
fn prover_agrees_with_concrete_matcher_at_sampled_p() {
    // 64×64 global, radius-2 exchange: even the 32×16 grid dims_create
    // picks for P=512 keeps 2 points per rank per dim (= radius), the
    // cone the prover assumes and `verify_operator` pre-checks.
    let global = vec![64usize, 64];
    let (halo, radius) = (2usize, 2usize);
    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        // The symbolic side: every 2-D position class proves clean.
        assert!(
            prove_parametric(mode, 2, "test / ").is_empty(),
            "{mode:?} must prove clean parametrically"
        );
        let schedules = build_all_schedules(mode, 2);
        for p in SAMPLED_P {
            let dims = dims_create(p, 2);
            let plans = collect_schedules(&global, &dims, halo, mode, radius);
            let sctx = ScheduleCtx {
                global: global.clone(),
                dims: dims.clone(),
                halo,
                radius,
            };
            let diags = match_schedule(&plans, &sctx, &format!("{mode:?} P={p}"));
            assert!(
                diags.is_empty(),
                "concrete matcher disagrees with prover at {mode:?} P={p}: {diags:?}"
            );
            // Counter-assertion: each rank's concrete schedule has the
            // same shape as the symbolic schedule of its position class.
            for plan in &plans {
                let class = class_of(&dims, plan.rank);
                let sym = schedules
                    .get(&class)
                    .unwrap_or_else(|| panic!("class {class:?} not modeled ({mode:?} P={p})"));
                assert_eq!(
                    plan.steps.len(),
                    sym.steps.len(),
                    "step count: rank {} class {class:?} {mode:?} P={p}",
                    plan.rank
                );
                for (s, (con, sym_step)) in plan.steps.iter().zip(&sym.steps).enumerate() {
                    assert_eq!(
                        con.len(),
                        sym_step.len(),
                        "message count: rank {} class {class:?} step {s} {mode:?} P={p}",
                        plan.rank
                    );
                }
            }
        }
    }
}

/// An acoustic-style operator plus one registered-but-unused field, so
/// the lint pass has a deterministic finding (`MPX005`) to report.
fn operator_with_unused_field() -> Operator {
    let mut ctx = Context::new();
    let grid = Grid::new(&[24, 24], &[1.0, 1.0]);
    let u = ctx.add_time_function("u", &grid, 4, 2);
    let m = ctx.add_function("m", &grid, 4);
    let _phi = ctx.add_function("phi", &grid, 4);
    let pde = m.center() * u.dt2() - u.laplace();
    let st = mpix::symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
    Operator::build(ctx, grid, vec![st]).unwrap()
}

/// A small sweep so the determinism tests stay fast in debug builds.
fn quick_cfg() -> AnalysisConfig {
    AnalysisConfig {
        modes: vec![HaloMode::Basic, HaloMode::Diagonal],
        ranks: vec![1, 2],
        threads: vec![],
        vector_widths: vec![8],
        backends: vec![],
        check_fused_semantics: true,
        lint: Some(LintConfig::new()),
    }
}

#[test]
fn verify_output_is_sorted_deduped_and_stable() {
    let op = operator_with_unused_field();
    let cfg = quick_cfg();
    let r1 = op.verify(&cfg);
    let r2 = op.verify(&cfg);
    assert_eq!(r1.diagnostics, r2.diagnostics, "verify output not stable");
    assert!(
        r1.diagnostics
            .iter()
            .any(|d| d.code.as_deref() == Some("MPX005")),
        "expected the unused-field finding: {:?}",
        r1.diagnostics
    );
    // Sorted by the stable key, with no adjacent duplicates.
    let key = |d: &mpix::trace::Diagnostic| {
        (
            d.code.clone(),
            d.pass.clone(),
            d.location.clone(),
            d.severity,
            d.explanation.clone(),
        )
    };
    for w in r1.diagnostics.windows(2) {
        assert!(key(&w[0]) <= key(&w[1]), "not sorted: {w:?}");
        assert!(w[0] != w[1], "duplicate diagnostic survived: {:?}", w[0]);
    }
}

#[test]
fn lint_levels_gate_verification_reports() {
    let op = operator_with_unused_field();

    // Default: MPX005 is a warning; the report is clean of errors.
    let report = op.verify(&quick_cfg());
    let mpx005: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code.as_deref() == Some("MPX005"))
        .collect();
    assert_eq!(mpx005.len(), 1);
    assert_eq!(mpx005[0].severity, Severity::Warning);

    // `unused-field=allow` (MPIX_LINT syntax) suppresses it entirely.
    let mut cfg = quick_cfg();
    cfg.lint = Some(LintConfig::parse("unused-field=allow"));
    let report = op.verify(&cfg);
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.code.as_deref() == Some("MPX005")),
        "allow level must drop the finding"
    );

    // `MPX005=deny` escalates it to an error.
    let mut cfg = quick_cfg();
    cfg.lint = Some(LintConfig::parse("MPX005=deny"));
    let report = op.verify(&cfg);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code.as_deref() == Some("MPX005") && d.severity == Severity::Error));

    // `lint: None` skips the lint pass altogether.
    let mut cfg = quick_cfg();
    cfg.lint = None;
    let report = op.verify(&cfg);
    assert!(
        !report.diagnostics.iter().any(|d| d.pass == "lint"),
        "lint pass must be skippable"
    );
}
