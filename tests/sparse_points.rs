//! Integration: sparse (off-grid) operations under DMP — ownership
//! replication (Fig. 3), injection conservation, receiver gathers across
//! topologies.

use std::sync::Arc;

use mpix::prelude::*;
use mpix::solvers::{acoustic, ModelSpec};
use proptest::prelude::*;

#[test]
fn receiver_gather_is_topology_invariant() {
    let spec = ModelSpec::new(&[12, 12, 12]).with_nbl(2);
    let op = acoustic::operator(&spec, 4);
    let nt = 6i64;
    let dt = spec.stable_dt(0.4);
    let opts = ApplyOptions::default().with_nt(nt).with_dt(dt);
    let spacing = vec![spec.spacing; 3];
    let rec: Vec<Vec<f64>> = vec![
        vec![0.05, 0.05, 0.08],
        vec![0.0799, 0.0799, 0.0799], // near a rank corner
    ];

    let mut gathers: Vec<Vec<Vec<f32>>> = Vec::new();
    for topo in [vec![2, 2, 2], vec![4, 2, 1], vec![8, 1, 1]] {
        let s2 = spec.clone();
        let rc = rec.clone();
        let sp = spacing.clone();
        let out = op
            .run(
                &opts.clone().with_ranks(8).with_topology(&topo),
                move |ws| {
                    acoustic::init_workspace(&s2, ws);
                    let c = s2.padded_shape()[0] / 2;
                    ws.field_data_mut("u", 0).set_global(&[c, c, c], 1.0);
                    ws.field_data_mut("u", -1).set_global(&[c, c, c], 1.0);
                    ws.add_receivers("u", SparsePoints::new(rc.clone(), sp.clone()));
                },
                |ws| ws.take_samples(0),
            )
            .results;
        // Merge: exactly one non-NaN per (t, p).
        let mut merged = vec![vec![f32::NAN; rec.len()]; nt as usize];
        for samples in &out {
            for (t, row) in samples.iter().enumerate() {
                for (p, &v) in row.iter().enumerate() {
                    if !v.is_nan() {
                        assert!(merged[t][p].is_nan(), "point recorded twice");
                        merged[t][p] = v;
                    }
                }
            }
        }
        for row in &merged {
            for &v in row {
                assert!(!v.is_nan(), "point never recorded");
            }
        }
        gathers.push(merged);
    }
    for other in &gathers[1..] {
        for (a, b) in gathers[0].iter().flatten().zip(other.iter().flatten()) {
            assert!(
                (a - b).abs() <= 1e-5 * b.abs().max(1e-3),
                "gather depends on topology: {a} vs {b}"
            );
        }
    }
}

#[test]
fn source_injection_is_topology_invariant() {
    let spec = ModelSpec::new(&[12, 12, 12]).with_nbl(2);
    let op = acoustic::operator(&spec, 4);
    let nt = 6i64;
    let opts = ApplyOptions::default()
        .with_nt(nt)
        .with_dt(spec.stable_dt(0.4));
    let spacing = vec![spec.spacing; 3];
    // Off-grid source near the center (straddling ranks in some topologies).
    let src = vec![0.0755, 0.0755, 0.0755];
    let mut fields = Vec::new();
    for ranks_topo in [
        (1usize, None),
        (4, Some(vec![2, 2, 1])),
        (8, Some(vec![2, 2, 2])),
    ] {
        let s2 = spec.clone();
        let sc = src.clone();
        let sp = spacing.clone();
        let mut o = opts.clone().with_ranks(ranks_topo.0);
        o.topology = ranks_topo.1;
        let out = op
            .run(
                &o,
                move |ws| {
                    acoustic::init_workspace(&s2, ws);
                    ws.add_injection(
                        "u",
                        SparsePoints::new(vec![sc.clone()], sp.clone()),
                        vec![1.0; nt as usize],
                        vec![1.0],
                    );
                },
                |ws| ws.gather("u"),
            )
            .results;
        fields.push(out.into_iter().next().unwrap());
    }
    for other in &fields[1..] {
        for (a, b) in fields[0].iter().zip(other) {
            assert!(
                (a - b).abs() <= 1e-5 * a.abs().max(1.0),
                "injection depends on decomposition: {a} vs {b}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn prop_ownership_covers_weights(x in 0.0f64..7.0, y in 0.0f64..7.0) {
        // Every nonzero-weight grid node of a random point must belong to
        // at least one rank of the replication set, and the weights sum
        // to 1.
        let dc = Arc::new(Decomposition::new(&[8, 8], &[2, 2]));
        let sp = SparsePoints::new(vec![vec![x, y]], vec![1.0, 1.0]);
        let weights = sp.corner_weights(0, &[8, 8]);
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let owners = sp.owner_coords(0, &dc);
        prop_assert!(!owners.is_empty());
        for (node, w) in &weights {
            prop_assert!(*w >= 0.0);
            let covered = owners.iter().any(|coords| {
                (0..2).all(|d| dc.owned_range(d, coords[d]).contains(&node[d]))
            });
            prop_assert!(covered, "node {:?} uncovered", node);
        }
    }
}
