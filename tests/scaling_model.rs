//! Regression harness for the paper-shape claims (EXPERIMENTS.md): the
//! performance model must keep reproducing the evaluation's qualitative
//! results as the code evolves.

use mpix::perf::machine::{archer2_node, tursa_a100};
use mpix::perf::scaling::{efficiency, strong_scaling, weak_scaling, Mode};
use mpix::solvers::KernelKind;
use mpix_bench::paper;
use mpix_bench::profiles::{cpu_domain, gpu_domain, profile_for, timesteps};
use mpix_bench::tables::{accuracy_report, model_cpu_rows, model_gpu_row, trend_report};

#[test]
fn best_mode_agreement_stays_high() {
    let (agree, total) = trend_report();
    let rate = agree as f64 / total as f64;
    assert!(
        rate >= 0.85,
        "best-mode agreement regressed: {agree}/{total}"
    );
}

#[test]
fn model_accuracy_stays_bounded() {
    let (mean_log2, n) = accuracy_report();
    assert!(n > 300);
    assert!(
        mean_log2 < 0.40,
        "mean |log2(model/paper)| regressed: {mean_log2}"
    );
}

#[test]
fn kernel_ranking_matches_paper_at_every_scale() {
    // At any node count: acoustic > tti > elastic > viscoelastic in
    // GPts/s (Figs 8-11 ordering).
    for ui in 0..8 {
        let a = model_cpu_rows(KernelKind::Acoustic, 8)[0][ui];
        let t = model_cpu_rows(KernelKind::Tti, 8)[0][ui];
        let e = model_cpu_rows(KernelKind::Elastic, 8)[0][ui];
        let v = model_cpu_rows(KernelKind::Viscoelastic, 8)[0][ui];
        assert!(a > t && t > e && e > v, "unit idx {ui}: {a} {t} {e} {v}");
    }
}

#[test]
fn tti_is_most_arithmetically_intense_and_scales_well() {
    // Paper §IV-B/D: TTI is the arithmetically most intense kernel
    // (Fig. 6b) and keeps near-perfect scaling. In our build the CIRE
    // factoring trades some of TTI's flops for two scratch-field
    // exchanges, so its *communication fraction* ends up comparable to
    // the staggered kernels rather than clearly below them (see
    // EXPERIMENTS.md); the OI ordering and the high scaling efficiency
    // are the robust reproductions.
    // Computation-to-communication ratio: flops per point divided by
    // halo volume per point (buffers x radius).
    let comp_comm = |kind: KernelKind| {
        let p = profile_for(kind, 8);
        p.flops_per_pt / (p.exchanged_buffers * p.radius) as f64
    };
    // Our CIRE factoring moves part of TTI's arithmetic into scratch
    // fields (exchanged like any buffer), so viscoelastic — whose 15
    // stencils keep all their arithmetic inline — edges past TTI on this
    // proxy in our build (documented in EXPERIMENTS.md). TTI still
    // dominates the other two kernels.
    let tti = comp_comm(KernelKind::Tti);
    for other in [KernelKind::Acoustic, KernelKind::Elastic] {
        assert!(
            tti > comp_comm(other),
            "TTI comp/comm {tti} !> {other:?} {}",
            comp_comm(other)
        );
    }
    // The paper's §IV-B text: TTI is the most arithmetically intensive
    // kernel, and with nested-CSE temp sharing it also has peak OI in
    // our build (§IV-B-4's viscoelastic-peak-OI claim held only while
    // viscoelastic's 15 stencils recomputed their repeated terms — see
    // EXPERIMENTS.md Fig. 7 notes).
    let oi = |kind: KernelKind| profile_for(kind, 8).oi();
    let tti_oi = oi(KernelKind::Tti);
    for other in [
        KernelKind::Acoustic,
        KernelKind::Elastic,
        KernelKind::Viscoelastic,
    ] {
        assert!(
            tti_oi > oi(other),
            "TTI OI {tti_oi} !> {other:?} {}",
            oi(other)
        );
    }
    // All four kernels stay in one DRAM-bound band (within ~2x).
    assert!(oi(KernelKind::Viscoelastic) > 0.5 * oi(KernelKind::Acoustic));
    let prof = profile_for(KernelKind::Tti, 8);
    let pts: Vec<_> = [1usize, 128]
        .iter()
        .map(|&u| {
            strong_scaling(
                &prof,
                &archer2_node(),
                Mode::Diagonal,
                u,
                &cpu_domain(KernelKind::Tti),
            )
        })
        .collect();
    assert!(efficiency(&pts)[1] > 0.6, "TTI must keep scaling well");
}

#[test]
fn full_mode_never_wins_for_tti() {
    // Paper: "there are better candidates than full mode for TTI".
    for sdo in [4u32, 8, 12, 16] {
        let rows = model_cpu_rows(KernelKind::Tti, sdo);
        for (ui, &full) in rows[2].iter().enumerate() {
            let best_other = rows[0][ui].max(rows[1][ui]);
            assert!(
                full <= best_other * 1.02,
                "full wins TTI so-{sdo} at unit idx {ui}"
            );
        }
    }
}

#[test]
fn full_mode_degrades_with_scale() {
    // §IV-F: the core-to-remainder ratio shrinks as ranks grow, so
    // full's relative standing vs diagonal decays from 8 to 128 nodes.
    let rows = model_cpu_rows(KernelKind::Acoustic, 16);
    let rel_8 = rows[2][3] / rows[1][3];
    let rel_128 = rows[2][7] / rows[1][7];
    assert!(
        rel_128 < rel_8 * 1.05,
        "full/diag ratio should not improve with scale: {rel_8} -> {rel_128}"
    );
}

#[test]
fn gpu_faster_but_less_efficient_than_cpu() {
    for kind in KernelKind::all() {
        let prof = profile_for(kind, 8);
        let gpu1 = strong_scaling(&prof, &tursa_a100(), Mode::Basic, 1, &gpu_domain(kind));
        let cpu1 = strong_scaling(&prof, &archer2_node(), Mode::Basic, 1, &cpu_domain(kind));
        assert!(
            gpu1.gpts > cpu1.gpts,
            "{kind:?}: single GPU must beat a node"
        );
        let eff = |m: &mpix::perf::MachineSpec, dom: &[usize]| {
            let pts: Vec<_> = [1usize, 128]
                .iter()
                .map(|&u| strong_scaling(&prof, m, Mode::Basic, u, dom))
                .collect();
            efficiency(&pts)[1]
        };
        let ge = eff(&tursa_a100(), &gpu_domain(kind));
        let ce = eff(&archer2_node(), &cpu_domain(kind));
        assert!(
            ge < ce,
            "{kind:?}: GPU efficiency {ge} should trail CPU {ce} (paper §IV-D)"
        );
    }
}

#[test]
fn gpu_efficiency_drops_beyond_one_node() {
    // Paper: "a decrease in efficiency after 4 GPUs, owing to ... the
    // Infiniband network".
    let prof = profile_for(KernelKind::Acoustic, 8);
    let m = tursa_a100();
    let dom = gpu_domain(KernelKind::Acoustic);
    let pts: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .map(|&u| strong_scaling(&prof, &m, Mode::Basic, u, &dom))
        .collect();
    let eff = efficiency(&pts);
    assert!(eff[2] > 0.85, "within NVLink group: {:?}", eff);
    assert!(eff[3] < eff[2], "IB hop must cost efficiency: {:?}", eff);
}

#[test]
fn weak_scaling_is_nearly_flat_and_gpu_wins() {
    for kind in KernelKind::all() {
        let prof = profile_for(kind, 8);
        let nt = timesteps(kind);
        let (_, c1) = weak_scaling(&prof, &archer2_node(), Mode::Basic, 1, &[256, 256, 256], nt);
        let (_, c128) = weak_scaling(
            &prof,
            &archer2_node(),
            Mode::Basic,
            128,
            &[256, 256, 256],
            nt,
        );
        let ratio = c128 / c1;
        assert!(
            (0.8..1.8).contains(&ratio),
            "{kind:?}: weak scaling not flat: {ratio}"
        );
        let (_, g128) = weak_scaling(&prof, &tursa_a100(), Mode::Basic, 128, &[256, 256, 256], nt);
        assert!(
            c128 / g128 > 1.5,
            "{kind:?}: GPUs must be markedly faster in weak scaling ({})",
            c128 / g128
        );
    }
}

#[test]
fn gpu_model_tracks_paper_within_2x() {
    for kind in KernelKind::all() {
        for sdo in [4u32, 8, 12, 16] {
            let ours = model_gpu_row(kind, sdo);
            let Some(rt) = paper::gpu_table(kind, sdo) else {
                continue;
            };
            for (ui, &v) in ours.iter().enumerate() {
                if let Some(p) = rt.row[ui] {
                    let ratio = v / p;
                    assert!(
                        (0.33..3.0).contains(&ratio),
                        "{kind:?} so-{sdo} gpu unit idx {ui}: model {v} vs paper {p}"
                    );
                }
            }
        }
    }
}
