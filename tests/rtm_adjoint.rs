//! Integration: a compact reverse-time-migration experiment — forward
//! modeling, residual computation, adjoint back-propagation with
//! per-receiver traces, zero-lag imaging — must localize a reflector.
//! (The full-size version lives in `examples/rtm_imaging.rs`.)

use mpix::prelude::*;
use mpix::solvers::ricker_wavelet;

const N: usize = 49;
const H: f64 = 0.01;
const V_TOP: f64 = 1.5;
const V_BOT: f64 = 2.2;
const REFL: usize = 28;

fn operator() -> Operator {
    let mut ctx = Context::new();
    let grid = Grid::new(&[N, N], &[(N - 1) as f64 * H, (N - 1) as f64 * H]);
    let u = ctx.add_time_function("u", &grid, 4, 2);
    let m = ctx.add_function("m", &grid, 4);
    let damp = ctx.add_function("damp", &grid, 4);
    let pde = m.center() * u.dt2() - u.laplace() + damp.center() * u.dt();
    let st = mpix_symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
    Operator::build(ctx, grid, vec![st]).unwrap()
}

fn setup(ws: &mut Workspace, layered: bool) {
    let nbl = 8usize;
    let coeff = 3.0 * V_BOT * (1000.0f64).ln() / (2.0 * nbl as f64 * H);
    for i in 0..N {
        for j in 0..N {
            let v = if layered && i >= REFL { V_BOT } else { V_TOP };
            ws.field_data_mut("m", 0)
                .set_global(&[i, j], (1.0 / (v * v)) as f32);
            let d_edge = (N - 1 - i).min(j).min(N - 1 - j);
            let dval = if d_edge < nbl {
                let r = (nbl - d_edge) as f64 / nbl as f64;
                coeff * r * r
            } else {
                0.0
            };
            ws.field_data_mut("damp", 0)
                .set_global(&[i, j], dval as f32);
        }
    }
}

fn receivers() -> Vec<Vec<f64>> {
    (0..8)
        .map(|r| vec![2.0 * H, (8 + r * 4) as f64 * H])
        .collect()
}

fn forward(
    op: &Operator,
    nt: usize,
    dt: f64,
    layered: bool,
    save: bool,
) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let wavelet = ricker_wavelet(16.0, dt, nt);
    let out = op.run(
        &ApplyOptions::default().with_nt(0).with_dt(dt).with_ranks(4),
        |_| {},
        move |ws| {
            setup(ws, layered);
            let spacing = vec![H, H];
            let src = SparsePoints::new(vec![vec![2.0 * H, (N / 2) as f64 * H]], spacing.clone());
            ws.add_injection(
                "u",
                src,
                wavelet.clone(),
                vec![(dt * dt * V_TOP * V_TOP) as f32],
            );
            ws.add_receivers("u", SparsePoints::new(receivers(), spacing));
            let exec = op.executable_for(&ApplyOptions::default().with_mode(HaloMode::Basic));
            let mut snaps = Vec::new();
            for k in 0..nt {
                let opts = ApplyOptions::default()
                    .with_nt(1)
                    .with_t0(k as i64)
                    .with_dt(dt);
                op.apply(ws, &exec, &opts);
                if save {
                    snaps.push(
                        ws.field_data("u", (k + 1) as i64)
                            .gather_global(ws.cart.comm()),
                    );
                }
            }
            (ws.take_samples(1), snaps)
        },
    );
    let out = out.results;
    let nrec = receivers().len();
    let mut gather = vec![vec![0.0f32; nrec]; nt];
    for (g, _) in &out {
        for (t, row) in g.iter().enumerate() {
            for (r, &v) in row.iter().enumerate() {
                if !v.is_nan() {
                    gather[t][r] = v;
                }
            }
        }
    }
    (gather, out.into_iter().next().unwrap().1)
}

#[test]
fn rtm_localizes_reflector() {
    let op = operator();
    let dt = 0.4 * H / (V_BOT * 2.0f64.sqrt());
    let nt = 420usize;

    let (obs, _) = forward(&op, nt, dt, true, false);
    let (bg, snaps) = forward(&op, nt, dt, false, true);
    let residual: Vec<Vec<f32>> = obs
        .iter()
        .zip(&bg)
        .map(|(o, b)| o.iter().zip(b).map(|(x, y)| x - y).collect())
        .collect();
    let res_energy: f64 = residual.iter().flatten().map(|&v| (v as f64).powi(2)).sum();
    assert!(res_energy > 0.0, "no reflection in residual");

    // Adjoint with per-receiver traces + imaging.
    let op_ref = &op;
    let image = op
        .run(
            &ApplyOptions::default().with_nt(0).with_dt(dt).with_ranks(4),
            |_| {},
            move |ws| {
                setup(ws, false);
                let coords = receivers();
                let nrec = coords.len();
                let traces: Vec<Vec<f32>> = (0..nrec)
                    .map(|r| (0..nt).map(|t| residual[nt - 1 - t][r]).collect())
                    .collect();
                ws.add_injection_traces(
                    "u",
                    SparsePoints::new(coords, vec![H, H]),
                    traces,
                    vec![(dt * dt * V_TOP * V_TOP) as f32; nrec],
                );
                let exec =
                    op_ref.executable_for(&ApplyOptions::default().with_mode(HaloMode::Basic));
                let mut image = vec![0.0f64; N * N];
                for s in 0..nt {
                    let opts = ApplyOptions::default()
                        .with_nt(1)
                        .with_t0(s as i64)
                        .with_dt(dt);
                    op_ref.apply(ws, &exec, &opts);
                    let v = ws
                        .field_data("u", (s + 1) as i64)
                        .gather_global(ws.cart.comm());
                    let fwd = &snaps[nt - 1 - s];
                    for (px, (&a, &b)) in image.iter_mut().zip(fwd.iter().zip(&v)) {
                        *px += (a as f64) * (b as f64);
                    }
                }
                image
            },
        )
        .results
        .into_iter()
        .next()
        .unwrap();

    // Laplacian-filtered depth profile must peak near the reflector.
    let mut filt = vec![0.0f64; N * N];
    for i in 1..N - 1 {
        for j in 1..N - 1 {
            filt[i * N + j] = 4.0 * image[i * N + j]
                - image[(i - 1) * N + j]
                - image[(i + 1) * N + j]
                - image[i * N + j - 1]
                - image[i * N + j + 1];
        }
    }
    let mut profile = vec![0.0f64; N];
    for i in 0..N {
        for j in 10..N - 10 {
            profile[i] += filt[i * N + j] * filt[i * N + j];
        }
    }
    let peak = (14..N - 8)
        .max_by(|&a, &b| profile[a].partial_cmp(&profile[b]).unwrap())
        .unwrap();
    assert!(
        (peak as i64 - REFL as i64).abs() <= 5,
        "image peak {peak} not near reflector {REFL}"
    );
}
