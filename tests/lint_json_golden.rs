//! Golden test for the `mpix-lint --json` finding layout.
//!
//! The JSON report is parsed by downstream tooling (baselines, CI
//! annotators), so the per-finding object is a compatibility surface:
//! field order is fixed (`severity`, `pass`, `location`, `explanation`,
//! `code`, `level`) and the registry `level` — post-`MPIX_LINT`
//! overrides — rides along on every coded finding. The binary emits
//! findings through `mpix_bench::lint_finding_json`, which is what this
//! file pins; a layout change must update the goldens here knowingly.

use mpix_analysis::lint::{LintConfig, LintLevel, LINTS};
use mpix_bench::lint_finding_json;
use mpix_trace::{Diagnostic, Severity, Value};

#[test]
fn finding_json_matches_golden() {
    let d = Diagnostic::new(
        Severity::Warning,
        "lint",
        "cluster 0, stmt 2",
        "operands cancel to ~0 while inputs are O(1)",
    )
    .with_code("MPX015");
    let golden = "\
{
  \"severity\": \"warning\",
  \"pass\": \"lint\",
  \"location\": \"cluster 0, stmt 2\",
  \"explanation\": \"operands cancel to ~0 while inputs are O(1)\",
  \"code\": \"MPX015\",
  \"level\": \"warn\"
}";
    let j = lint_finding_json(&d, &LintConfig::new());
    assert_eq!(
        j.pretty(),
        golden,
        "mpix-lint --json finding layout drifted"
    );
}

#[test]
fn level_reflects_mpix_lint_overrides() {
    let d = Diagnostic::new(
        Severity::Error,
        "lint",
        "cluster 1",
        "divisor is provably zero",
    )
    .with_code("MPX002");
    let cfg = LintConfig::parse("MPX002=allow");
    let golden = "\
{
  \"severity\": \"error\",
  \"pass\": \"lint\",
  \"location\": \"cluster 1\",
  \"explanation\": \"divisor is provably zero\",
  \"code\": \"MPX002\",
  \"level\": \"allow\"
}";
    assert_eq!(lint_finding_json(&d, &cfg).pretty(), golden);
}

#[test]
fn uncoded_diagnostics_carry_no_level() {
    // Non-lint diagnostics (sanitizer, verify) pass through unchanged:
    // the object is exactly Diagnostic::to_json, no trailing level.
    let d = Diagnostic::new(Severity::Warning, "mpix-san", "field u", "leak");
    let j = lint_finding_json(&d, &LintConfig::new());
    assert_eq!(j.pretty(), d.to_json().pretty());
    assert!(j.get("level").is_none());
}

#[test]
fn field_order_is_stable_for_every_registry_code() {
    // Parsers index by position at their peril, but the documented
    // order must at least be identical across codes and levels.
    for l in LINTS {
        for (lv, name) in [
            (LintLevel::Allow, "allow"),
            (LintLevel::Warn, "warn"),
            (LintLevel::Deny, "deny"),
        ] {
            let mut cfg = LintConfig::new();
            cfg.set(l.code, lv);
            let d = Diagnostic::new(Severity::Warning, "lint", "loc", "x").with_code(l.code);
            let j = lint_finding_json(&d, &cfg);
            let Value::Obj(kv) = &j else {
                panic!("finding is an object")
            };
            let keys: Vec<&str> = kv.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                keys,
                [
                    "severity",
                    "pass",
                    "location",
                    "explanation",
                    "code",
                    "level"
                ],
                "{}",
                l.code
            );
            assert_eq!(j.get("level").and_then(Value::as_str), Some(name));
        }
    }
}
