//! Golden test for the generated C (paper Listing 11) and the printable
//! compiler IRs (Listings 4–6).

use mpix::prelude::*;

fn listing1_operator() -> Operator {
    let mut ctx = Context::new();
    let grid = Grid::new(&[4, 4], &[2.0, 2.0]);
    let u = ctx.add_time_function("u", &grid, 2, 1);
    let eq = Eq::new(u.dt(), u.laplace());
    let stencil = eq.solve_for(&u.forward(), &ctx).unwrap();
    Operator::build(ctx, grid, vec![stencil]).unwrap()
}

#[test]
fn generated_c_matches_golden() {
    let op = listing1_operator();
    let c = op.c_code_for(&ApplyOptions::default().with_mode(HaloMode::Basic));
    let golden = "\
void Kernel(const int time_m, const int time_M)
{
  float r0 = -1.0F*dt;
  float r1 = -1.0F/(dt);
  float r2 = -1.0F/(h_x*h_x);
  float r3 = -1.0F/(h_y*h_y);
  
  for (int time = time_m, t0 = (time + 0)%(2), t1 = (time + 1)%(2); time <= time_M; time += 1, t0 = (time + 0)%(2), t1 = (time + 1)%(2))
  {
    haloupdate_u(cart_comm, t0, /*radius*/ 1);
    #pragma omp parallel for schedule(static)
    for (int x = x_m; x <= x_M; x += 1)
    {
      #pragma omp simd aligned(u:32)
      for (int y = y_m; y <= y_M; y += 1)
      {
        float r4 = -2.0F*u[t0][x + 2][y + 2];
        u[t1][x + 2][y + 2] = r0*(r1*u[t0][x + 2][y + 2] + r2*(u[t0][x + 1][y + 2] + u[t0][x + 3][y + 2] + r4) + r3*(u[t0][x + 2][y + 1] + u[t0][x + 2][y + 3] + r4));
      }
    }
  }
}
";
    assert_eq!(c, golden, "generated C drifted from golden:\n{c}");
}

#[test]
fn full_mode_c_has_overlap_structure() {
    let op = listing1_operator();
    let c = op.c_code_for(&ApplyOptions::default().with_mode(HaloMode::Full));
    let begin = c.find("haloupdate_begin_u").expect("async update");
    let core = c.find("/* CORE region */").expect("core loop");
    let wait = c.find("halowait_u").expect("wait call");
    let rem = c.find("/* REMAINDER regions */").expect("remainder loops");
    assert!(begin < core && core < wait && wait < rem, "{c}");
    // CORE bounds are inset by the radius.
    assert!(c.contains("x_m + r_x"), "{c}");
}

#[test]
fn schedule_tree_matches_listing4_shape() {
    let op = listing1_operator();
    let s = op.schedule_tree();
    let golden = "\
<List>
  <Time [sequential]>
    <Halo(u[t+0])>
    <Exprs cluster0 over 2 space dims>
";
    assert_eq!(s, golden, "schedule tree drifted:\n{s}");
}

#[test]
fn iet_printer_shows_halospot_metadata() {
    let op = listing1_operator();
    let s = op.iet_string();
    assert!(s.contains("<Callable Kernel>"), "{s}");
    assert!(s.contains("<HaloSpot(u[t+0]) >"), "{s}");
    assert!(s.contains("[affine,sequential] Iteration time"), "{s}");
    assert!(s.contains("vector-dim"), "{s}");
    // The expression is shown with parameters substituted.
    assert!(s.contains("u[t+1] ="), "{s}");
}

#[test]
fn elastic_c_contains_staggered_structure() {
    // The elastic kernel's C must show two loop nests separated by the
    // fresh-velocity exchange.
    let spec = mpix::solvers::ModelSpec::new(&[8, 8, 8]).with_nbl(0);
    let op = mpix::solvers::elastic::operator(&spec, 4);
    let c = op.c_code_for(&ApplyOptions::default().with_mode(HaloMode::Basic));
    let vx_up = c.find("vx[t1]").expect("velocity update");
    let txx_up = c.find("txx[t1][").expect("stress update");
    assert!(vx_up < txx_up, "velocity cluster must precede stress");
    // Between them, the fresh velocities are exchanged at t1.
    let between = &c[vx_up..txx_up];
    assert!(
        between.contains("haloupdate_vx(cart_comm, t1"),
        "missing fresh-velocity exchange:\n{between}"
    );
    // so-4 staggered derivative reaches offsets 0..3 around halo 4.
    assert!(c.contains("[z + 4]") || c.contains("[z + 2]"), "{c}");
}
