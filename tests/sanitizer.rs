//! `mpix-san` end-to-end: property tests for the happens-before core,
//! one regression per detector, and the injected-bug mutant corpus.
//!
//! The mutant corpus is the sanitizer's own verification story: each
//! test injects one runtime bug (via the hidden `ApplyOptions::fault`
//! executor faults, or by driving `mpix-comm` into an illegal pattern
//! directly) and asserts the *owning* detector reports it. The
//! complementary false-positive gate — every shipped solver × SDO ×
//! mode × rank-count configuration stays clean — is swept exhaustively
//! by `mpix-verify --san`; a spot check rides along here.

use std::sync::Arc;

use mpix_codegen::executor::Fault;
use mpix_comm::Universe;
use mpix_core::Workspace;
use mpix_dmp::HaloMode;
use mpix_san::{
    San, VectorClock, PASS_LEAK, PASS_MSG_RACE, PASS_REUSE, PASS_SLAB, PASS_STALE_HALO,
};
use mpix_solvers::{KernelKind, ModelSpec, Propagator};
use mpix_trace::Diagnostic;
use proptest::prelude::*;

// ---------------------------------------------------------------- helpers

fn has_pass(diags: &[Diagnostic], pass: &str) -> bool {
    diags.iter().any(|d| d.pass == pass)
}

fn count_pass(diags: &[Diagnostic], pass: &str) -> usize {
    diags.iter().filter(|d| d.pass == pass).count()
}

/// Run one shipped solver under the sanitizer, optionally with an
/// injected executor fault, and return every diagnostic on the summary.
fn run_solver(
    kind: KernelKind,
    so: u32,
    mode: HaloMode,
    ranks: usize,
    threads: usize,
    fault: Option<Fault>,
) -> Vec<Diagnostic> {
    let shape: &[usize] = match kind {
        KernelKind::Acoustic => &[40, 40],
        _ => &[16, 16, 16],
    };
    let spec = ModelSpec::new(shape).with_nbl(4);
    let prop = Propagator::build(kind, spec, so);
    // nt = 4 is the shortest horizon on which both stale-halo flavors
    // are detectable with triple-buffered fields: the dropped exchange
    // shows up when the step-0 buffer rotates back in at step 3.
    let nt = 4i64;
    let pref = &prop;
    let init = move |ws: &mut Workspace| {
        pref.init(ws);
        pref.add_ricker_source(ws, 18.0, nt as usize);
    };
    let mut opts = prop
        .apply_options(nt)
        .with_mode(mode)
        .with_ranks(ranks)
        .with_threads(threads)
        .with_verify(false)
        .with_sanitize(true);
    opts.fault = fault;
    prop.op.run(&opts, init, |_| ()).summary.diagnostics
}

/// Run a raw communicator scenario under an explicit sanitizer and
/// return its reports (finalize-time checks included).
fn run_comm<F>(nranks: usize, f: F) -> Vec<Diagnostic>
where
    F: Fn(mpix_comm::Comm) + Send + Sync,
{
    let san = Arc::new(San::new(nranks));
    Universe::run_with_san(nranks, Some(san.clone()), f);
    san.take_reports()
}

fn clock_from(v: &[u64]) -> VectorClock {
    let mut c = VectorClock::new(v.len());
    for (i, &k) in v.iter().enumerate() {
        for _ in 0..k {
            c.tick(i);
        }
    }
    c
}

// ------------------------------------------------------- property tests

proptest! {
    /// `leq` is a partial order on clocks and `merge` computes its least
    /// upper bound: transitivity over every triple drawn from the
    /// generated clocks and their pairwise merges, plus the lub laws.
    #[test]
    fn prop_vector_clock_partial_order_and_lub(
        a in proptest::collection::vec(0u64..4, 3..4),
        b in proptest::collection::vec(0u64..4, 3..4),
        c in proptest::collection::vec(0u64..4, 3..4),
    ) {
        let (ca, cb, cc) = (clock_from(&a), clock_from(&b), clock_from(&c));
        let mut ab = ca.clone();
        ab.merge(&cb);
        let mut bc = cb.clone();
        bc.merge(&cc);
        let mut ac = ca.clone();
        ac.merge(&cc);
        // Upper bound: each operand precedes the merge.
        prop_assert!(ca.leq(&ab) && cb.leq(&ab));
        // Least: any common upper bound of a and b dominates a⊔b.
        if ca.leq(&cc) && cb.leq(&cc) {
            prop_assert!(ab.leq(&cc));
        }
        // Transitivity across all ordered triples.
        let set = [&ca, &cb, &cc, &ab, &bc, &ac];
        for x in set {
            prop_assert!(x.leq(x)); // reflexivity
            for y in set {
                for z in set {
                    if x.leq(y) && y.leq(z) {
                        prop_assert!(x.leq(z), "transitivity violated");
                    }
                }
            }
        }
    }

    /// A barrier is an all-pairs happens-before edge: after departing,
    /// every rank's clock dominates every rank's pre-barrier clock.
    #[test]
    fn prop_barrier_establishes_all_pairs_hb(
        ticks in proptest::collection::vec(0usize..5, 2..5),
    ) {
        let n = ticks.len();
        let san = San::new(n);
        // Local history per rank: k sends to the right neighbor.
        for (r, &k) in ticks.iter().enumerate() {
            for _ in 0..k {
                san.on_send(r, (r + 1) % n, 9000, mpix_san::SendKind::Adhoc);
            }
        }
        let pre: Vec<VectorClock> = (0..n).map(|r| san.clock_snapshot(r)).collect();
        for r in 0..n {
            san.barrier_arrive(r);
        }
        for r in 0..n {
            san.barrier_depart(r);
        }
        for r in 0..n {
            let post = san.clock_snapshot(r);
            for p in &pre {
                prop_assert!(p.leq(&post), "barrier must dominate all arrivals");
            }
        }
    }
}

// ---------------------------------------- mutants: reuse-before-wait (1)

#[test]
fn mutant_reuse_triple_persistent_start() {
    let reports = run_comm(2, |comm| {
        if comm.rank() == 0 {
            let ps = comm.send_init(1, 100);
            for _ in 0..3 {
                ps.start(&[1.0, 2.0]);
            }
        }
        comm.barrier();
        if comm.rank() == 1 {
            let pr = comm.recv_init(0, 100);
            for _ in 0..3 {
                pr.wait_with(|_| ());
            }
        }
        comm.barrier();
    });
    assert!(has_pass(&reports, PASS_REUSE), "reports: {reports:#?}");
    // Fully drained: the reuse is the only finding.
    assert!(!has_pass(&reports, PASS_LEAK), "reports: {reports:#?}");
    assert!(!has_pass(&reports, PASS_MSG_RACE), "reports: {reports:#?}");
}

#[test]
fn mutant_reuse_triple_start_with_packed_path() {
    // Same bug through the zero-copy `start_with` entry point.
    let reports = run_comm(2, |comm| {
        if comm.rank() == 0 {
            let ps = comm.send_init(1, 101);
            for i in 0..3 {
                ps.start_with(4, |buf| buf.extend_from_slice(&[i as f32; 4]));
            }
        }
        comm.barrier();
        if comm.rank() == 1 {
            let pr = comm.recv_init(0, 101);
            for _ in 0..3 {
                pr.wait_with(|_| ());
            }
        }
        comm.barrier();
    });
    assert!(has_pass(&reports, PASS_REUSE), "reports: {reports:#?}");
    assert!(!has_pass(&reports, PASS_LEAK), "reports: {reports:#?}");
}

#[test]
fn mutant_reuse_every_rank_of_a_ring() {
    // 4 ranks, every rank triple-starts to its right neighbor: the
    // detector must localize each offender independently.
    let reports = run_comm(4, |comm| {
        let right = (comm.rank() + 1) % comm.size();
        let left = (comm.rank() + comm.size() - 1) % comm.size();
        let ps = comm.send_init(right, 102);
        for _ in 0..3 {
            ps.start(&[0.5; 8]);
        }
        comm.barrier();
        let pr = comm.recv_init(left, 102);
        for _ in 0..3 {
            pr.wait_with(|_| ());
        }
        comm.barrier();
    });
    // One report per rank (each channel hits backlog 2 exactly once).
    assert_eq!(count_pass(&reports, PASS_REUSE), 4, "reports: {reports:#?}");
    assert!(!has_pass(&reports, PASS_LEAK), "reports: {reports:#?}");
}

// --------------------------------------------- mutants: stale halo (2)

#[test]
fn mutant_drop_exchange_basic_mode() {
    let d = run_solver(
        KernelKind::Acoustic,
        4,
        HaloMode::Basic,
        2,
        1,
        Some(Fault::DropExchange),
    );
    assert!(has_pass(&d, PASS_STALE_HALO), "diagnostics: {d:#?}");
}

#[test]
fn mutant_drop_exchange_diagonal_mode_4ranks() {
    let d = run_solver(
        KernelKind::Acoustic,
        8,
        HaloMode::Diagonal,
        4,
        1,
        Some(Fault::DropExchange),
    );
    assert!(has_pass(&d, PASS_STALE_HALO), "diagnostics: {d:#?}");
}

#[test]
fn mutant_skip_halo_wait_full_mode() {
    let d = run_solver(
        KernelKind::Acoustic,
        4,
        HaloMode::Full,
        2,
        1,
        Some(Fault::SkipHaloWait),
    );
    // The skipped drain leaves epoch-stamped boxes behind the exchange
    // counter — the stale-halo detector owns this; the undrained
    // receives also (correctly) surface as leaked requests.
    assert!(has_pass(&d, PASS_STALE_HALO), "diagnostics: {d:#?}");
    assert!(has_pass(&d, PASS_LEAK), "diagnostics: {d:#?}");
}

// ----------------------------------------------- mutants: msg-race (3)

#[test]
fn mutant_msg_race_mixed_sender_disciplines() {
    // An ad-hoc send and a persistent-plan start share (src, dst, tag):
    // FIFO matching makes completion pairing ambiguous. Flagged at the
    // second send; the unreceived traffic also reports as leaked.
    let reports = run_comm(2, |comm| {
        if comm.rank() == 0 {
            comm.send_f32(1, 70, &[1.0; 4]);
            let ps = comm.send_init(1, 70);
            ps.start(&[2.0; 4]);
        }
        comm.barrier();
    });
    assert!(has_pass(&reports, PASS_MSG_RACE), "reports: {reports:#?}");
}

#[test]
fn mutant_msg_race_adhoc_matched_by_persistent_recv() {
    // Receiver side: a persistent-slot receive completes against an
    // ad-hoc send — the disciplines disagree about who owns the slot.
    let reports = run_comm(2, |comm| {
        if comm.rank() == 0 {
            comm.send_f32(1, 71, &[3.0; 4]);
        }
        if comm.rank() == 1 {
            let pr = comm.recv_init(0, 71);
            pr.wait_with(|_| ());
        }
        comm.barrier();
    });
    assert!(has_pass(&reports, PASS_MSG_RACE), "reports: {reports:#?}");
    // Drained on match: no leaks.
    assert!(!has_pass(&reports, PASS_LEAK), "reports: {reports:#?}");
}

// -------------------------------------------- mutants: slab conflict (4)

#[test]
fn mutant_overlapping_write_slabs() {
    let d = run_solver(
        KernelKind::Acoustic,
        4,
        HaloMode::Basic,
        1,
        2,
        Some(Fault::OverlapSlabs),
    );
    assert!(has_pass(&d, PASS_SLAB), "diagnostics: {d:#?}");
    // Single rank, no exchanges: the slab fault must not bleed into the
    // communication detectors.
    assert!(!has_pass(&d, PASS_STALE_HALO), "diagnostics: {d:#?}");
    assert!(!has_pass(&d, PASS_MSG_RACE), "diagnostics: {d:#?}");
    assert!(!has_pass(&d, PASS_LEAK), "diagnostics: {d:#?}");
}

#[test]
fn mutant_gapped_write_slabs() {
    let d = run_solver(
        KernelKind::Acoustic,
        4,
        HaloMode::Basic,
        1,
        3,
        Some(Fault::GapSlabs),
    );
    assert!(has_pass(&d, PASS_SLAB), "diagnostics: {d:#?}");
    assert!(!has_pass(&d, PASS_STALE_HALO), "diagnostics: {d:#?}");
}

// ------------------------------------------------ mutants: leaks (5)

#[test]
fn mutant_leak_adhoc_send_never_received() {
    let reports = run_comm(2, |comm| {
        if comm.rank() == 0 {
            comm.isend(1, 50, &[0u8; 16]).wait();
        }
        comm.barrier();
    });
    assert!(has_pass(&reports, PASS_LEAK), "reports: {reports:#?}");
    assert!(!has_pass(&reports, PASS_REUSE), "reports: {reports:#?}");
}

#[test]
fn mutant_leak_persistent_start_never_drained() {
    let reports = run_comm(2, |comm| {
        if comm.rank() == 0 {
            let ps = comm.send_init(1, 60);
            ps.start(&[9.0; 4]);
        }
        comm.barrier();
    });
    assert!(has_pass(&reports, PASS_LEAK), "reports: {reports:#?}");
    // One in-flight start is legal pipelining — never a reuse report.
    assert!(!has_pass(&reports, PASS_REUSE), "reports: {reports:#?}");
}

// ------------------------------------------------------- negatives

#[test]
fn shipped_configs_are_clean_under_sanitizer() {
    // Spot checks of the false-positive gate (`mpix-verify --san` sweeps
    // the full matrix): threaded, multi-rank, every mode.
    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        let d = run_solver(KernelKind::Acoustic, 4, mode, 2, 2, None);
        let findings: Vec<&Diagnostic> = d
            .iter()
            .filter(|d| d.pass.starts_with("mpix-san/"))
            .collect();
        assert!(
            findings.is_empty(),
            "false positives in {mode:?}: {findings:#?}"
        );
    }
}

#[test]
fn legal_single_restart_pipelining_not_flagged() {
    // One outstanding restart per channel is exactly how the full-mode
    // overlap pipeline behaves — must stay silent.
    let reports = run_comm(2, |comm| {
        if comm.rank() == 0 {
            let ps = comm.send_init(1, 103);
            ps.start(&[1.0; 4]);
            ps.start(&[2.0; 4]); // backlog 1: legal pipelining
        }
        comm.barrier();
        if comm.rank() == 1 {
            let pr = comm.recv_init(0, 103);
            pr.wait_with(|_| ());
            pr.wait_with(|_| ());
        }
        comm.barrier();
    });
    assert!(reports.is_empty(), "reports: {reports:#?}");
}

// ------------------------------------------------------ poison protocol

#[test]
fn poisoned_run_flushes_pending_reports_and_skips_leak_check() {
    let san = Arc::new(San::new(2));
    let san_c = san.clone();
    let result = std::panic::catch_unwind(move || {
        Universe::run_with_san(2, Some(san_c), |comm| {
            if comm.rank() == 0 {
                let ps = comm.send_init(1, 104);
                for _ in 0..3 {
                    ps.start(&[1.0; 4]); // pending reuse report
                }
                panic!("sanitizer poison test");
            }
            // Rank 1 blocks on traffic that never comes; the poison
            // protocol unwinds it when rank 0 dies.
            comm.recv(0, 999);
        });
    });
    let err = result.expect_err("rank panic must propagate");
    let msg = err
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("sanitizer poison test"), "payload: {msg:?}");
    // The reuse report survived the unwind; the abandoned in-flight
    // traffic is NOT misreported as a leak on a poisoned run.
    let reports = san.snapshot_reports();
    assert!(has_pass(&reports, PASS_REUSE), "reports: {reports:#?}");
    assert!(!has_pass(&reports, PASS_LEAK), "reports: {reports:#?}");
    assert!(san.is_poisoned());
}
