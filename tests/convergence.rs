//! Numerical validation of the generated stencils against analytic
//! solutions: the machinery must not only be parallel-consistent but
//! *correct*.

use std::f64::consts::PI;

use mpix::prelude::*;

/// Heat equation u_t = ∇²u on (0,1)² with homogeneous Dirichlet
/// boundaries: the fundamental mode sin(πx)sin(πy) decays as
/// exp(-2π²t). The grid holds the n *interior* points x_i = (i+1)h with
/// h = 1/(n+1), so the operator's zero ghost values coincide exactly
/// with the boundary condition (sin(0) = sin(π) = 0).
fn heat_error(n: usize, so: u32, nt: usize, ranks: usize) -> f64 {
    let mut ctx = Context::new();
    let h = 1.0 / (n + 1) as f64;
    let grid = Grid::new(&[n, n], &[(n - 1) as f64 * h, (n - 1) as f64 * h]);
    let u = ctx.add_time_function("u", &grid, so, 1);
    let eq = Eq::new(u.dt(), u.laplace());
    let stencil = eq.solve_for(&u.forward(), &ctx).unwrap();
    let op = Operator::build(ctx, grid, vec![stencil]).unwrap();
    assert!((grid_spacing_check(&op) - h).abs() < 1e-12);
    let dt = 0.2 * h * h; // diffusion stability: dt < h²/4
    let opts = ApplyOptions::default().with_nt(nt as i64).with_dt(dt);
    let got = op.run(
        &opts.with_ranks(ranks),
        move |ws| {
            for i in 0..n {
                for j in 0..n {
                    let v = (PI * (i + 1) as f64 * h).sin() * (PI * (j + 1) as f64 * h).sin();
                    ws.field_data_mut("u", 0).set_global(&[i, j], v as f32);
                }
            }
        },
        |ws| ws.gather("u"),
    );
    let g = &got.results[0];
    let t_final = nt as f64 * dt;
    let decay = (-2.0 * PI * PI * t_final).exp();
    let mut max_err = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let exact = decay * (PI * (i + 1) as f64 * h).sin() * (PI * (j + 1) as f64 * h).sin();
            let e = (g[i * n + j] as f64 - exact).abs();
            max_err = max_err.max(e);
        }
    }
    max_err
}

fn grid_spacing_check(op: &Operator) -> f64 {
    op.grid().spacing(0)
}

#[test]
fn heat_equation_matches_analytic_decay() {
    let err = heat_error(31, 2, 60, 1);
    assert!(err < 5e-3, "heat error too large: {err}");
}

#[test]
fn heat_equation_distributed_matches_analytic() {
    let err = heat_error(31, 2, 60, 4);
    assert!(err < 5e-3, "distributed heat error too large: {err}");
}

#[test]
fn spatial_refinement_reduces_error() {
    // Halving h with dt ∝ h² must shrink the error (2nd-order scheme:
    // roughly 4x; we require at least 2x to stay robust to f32 noise).
    let coarse = heat_error(15, 2, 40, 1);
    let fine = heat_error(31, 2, 160, 1);
    assert!(
        fine < coarse / 2.0,
        "no convergence under refinement: coarse {coarse}, fine {fine}"
    );
}

/// The acoustic wave equation preserves discrete energy on an undamped,
/// periodic-free domain over short times (before boundary contact).
#[test]
fn acoustic_energy_is_stable_before_boundary_contact() {
    use mpix::solvers::{acoustic, ModelSpec};
    let spec = ModelSpec::new(&[24, 24, 24]).with_nbl(0);
    let op = acoustic::operator(&spec, 8);
    let dt = spec.stable_dt(0.3);
    let c = 12usize;
    let s2 = spec.clone();
    let energies: Vec<f64> = (1..=3)
        .map(|k| {
            let opts = ApplyOptions::default().with_nt(4 * k).with_dt(dt);
            let g = op.run(
                &opts,
                |ws| {
                    acoustic::init_workspace(&s2, ws);
                    // Smooth compact bump.
                    for di in -2i64..=2 {
                        for dj in -2i64..=2 {
                            for dk in -2i64..=2 {
                                let r2 = (di * di + dj * dj + dk * dk) as f64;
                                let v = (-r2 / 2.0).exp();
                                let idx = [
                                    (c as i64 + di) as usize,
                                    (c as i64 + dj) as usize,
                                    (c as i64 + dk) as usize,
                                ];
                                ws.field_data_mut("u", 0).set_global(&idx, v as f32);
                                ws.field_data_mut("u", -1).set_global(&idx, v as f32);
                            }
                        }
                    }
                },
                |ws| ws.gather("u"),
            );
            g.results[0].iter().map(|&v| (v as f64) * (v as f64)).sum()
        })
        .collect();
    // No blow-up: energies stay within an order of magnitude.
    for e in &energies {
        assert!(e.is_finite() && *e > 0.0);
        assert!(*e < energies[0] * 10.0, "{energies:?}");
    }
}

/// Staggered first derivatives must be exact for linear fields at any
/// order — checked through a full elastic operator application.
#[test]
fn staggered_derivatives_exact_on_linear_fields() {
    use mpix::solvers::{elastic, ModelSpec};
    let spec = ModelSpec::new(&[10, 10, 10]).with_nbl(0);
    let op = elastic::operator(&spec, 4);
    let dt = 1e-3;
    let opts = ApplyOptions::default().with_nt(1).with_dt(dt);
    let n = 10usize;
    // txx = x (linear): d(txx)/dx = 1 everywhere away from the border, so
    // vx after one step = dt * b * 1 (b = 1, damp = 0 interior).
    let s2 = spec.clone();
    let got = op.run(
        &opts,
        move |ws| {
            elastic::init_workspace(&s2, ws);
            s2.fill_constant(ws, "damp", 0.0);
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        ws.field_data_mut("txx", 0).set_global(&[i, j, k], i as f32);
                    }
                }
            }
        },
        |ws| ws.gather("vx"),
    );
    let g = &got.results[0];
    let h = spec.spacing as f32;
    let expected = dt as f32 * 1.0 / h; // d/dx in physical units: 1/h per index
                                        // Check deep-interior values (staggered so-4 stencil radius 2).
    for i in 3..n - 3 {
        for j in 3..n - 3 {
            for k in 3..n - 3 {
                let v = g[(i * n + j) * n + k];
                assert!(
                    (v - expected).abs() <= 1e-3 * expected.abs(),
                    "vx[{i},{j},{k}] = {v}, want {expected}"
                );
            }
        }
    }
}
