//! The central correctness claim: automatically generated DMP code
//! produces bit-comparable results to serial execution for every kernel,
//! every exchange mode, and arbitrary rank counts/topologies.

use mpix::prelude::*;
use mpix::solvers::{KernelKind, ModelSpec, Propagator};

fn run_equivalence(kind: KernelKind, nranks: usize, topology: Option<Vec<usize>>, mode: HaloMode) {
    let spec = ModelSpec::new(&[8, 8, 8]).with_nbl(2);
    let prop = Propagator::build(kind, spec, 4);
    let nt = 4i64;
    let opts = prop.apply_options(nt).with_mode(mode);
    let pref = &prop;
    let init = move |ws: &mut Workspace| {
        pref.init(ws);
        pref.add_ricker_source(ws, 18.0, nt as usize);
    };
    let serial = prop
        .op
        .run(&opts, init, |ws| ws.gather(pref.main_field()))
        .results
        .remove(0);
    let mut dist_opts = opts.clone().with_ranks(nranks);
    dist_opts.topology = topology.clone();
    let out = prop
        .op
        .run(&dist_opts, init, |ws| ws.gather(pref.main_field()))
        .results;
    for (r, g) in out.iter().enumerate() {
        for (k, (a, b)) in g.iter().zip(&serial).enumerate() {
            assert!(
                (a - b).abs() <= 2e-5 * b.abs().max(1.0),
                "{kind:?} {mode:?} ranks={nranks} topo={topology:?} rank{r} idx{k}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn acoustic_all_modes_2_and_4_ranks() {
    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        run_equivalence(KernelKind::Acoustic, 2, None, mode);
        run_equivalence(KernelKind::Acoustic, 4, None, mode);
    }
}

#[test]
fn tti_all_modes_4_ranks() {
    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        run_equivalence(KernelKind::Tti, 4, None, mode);
    }
}

#[test]
fn elastic_all_modes_4_ranks() {
    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        run_equivalence(KernelKind::Elastic, 4, None, mode);
    }
}

#[test]
fn viscoelastic_all_modes_4_ranks() {
    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        run_equivalence(KernelKind::Viscoelastic, 4, None, mode);
    }
}

#[test]
fn custom_topologies_match_fig2_shapes() {
    // The Fig. 2 topologies (scaled to 8 ranks in each arrangement).
    for topo in [vec![8, 1, 1], vec![1, 8, 1], vec![2, 2, 2], vec![4, 2, 1]] {
        run_equivalence(KernelKind::Acoustic, 8, Some(topo), HaloMode::Diagonal);
    }
}

#[test]
fn elastic_full_overlap_under_asymmetric_topology() {
    run_equivalence(KernelKind::Elastic, 6, Some(vec![3, 2, 1]), HaloMode::Full);
}

#[test]
fn results_do_not_depend_on_mode() {
    // Run the same problem under each mode on 4 ranks and compare the
    // modes *against each other* (stronger than serial comparison alone:
    // catches mode-specific systematic deviations).
    let spec = ModelSpec::new(&[8, 8, 8]).with_nbl(2);
    let prop = Propagator::build(KernelKind::Elastic, spec, 4);
    let nt = 4i64;
    let pref = &prop;
    let init = move |ws: &mut Workspace| {
        pref.init(ws);
        pref.add_ricker_source(ws, 18.0, nt as usize);
    };
    let mut fields = Vec::new();
    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        let opts = prop.apply_options(nt).with_mode(mode);
        let out = prop
            .op
            .run(&opts.with_ranks(4), init, |ws| ws.gather("txx"))
            .results;
        fields.push(out.into_iter().next().unwrap());
    }
    for (a, b) in fields[0].iter().zip(&fields[1]) {
        assert_eq!(a, b, "basic vs diagonal differ");
    }
    for (a, b) in fields[0].iter().zip(&fields[2]) {
        assert_eq!(a, b, "basic vs full differ");
    }
}
