//! Invariants of the per-rank observability layer, checked against real
//! multi-rank runs: per-step halo message counts must match Table I's
//! `messages_per_exchange`, the section timers must reflect each mode's
//! structure (basic blocks in `halo.wait`, full splits off a
//! `remainder` region), and the JSON exports must round-trip.

use mpix::prelude::*;
use mpix::trace::{Section, TraceReport};

/// 3-D heat diffusion on a 9³ grid — 3³ points per rank on a [3,3,3]
/// topology, so exactly one rank (the interior one) has all 26
/// neighbours of Table I.
fn heat_op() -> Operator {
    let mut ctx = Context::new();
    let grid = Grid::new(&[9, 9, 9], &[1.0, 1.0, 1.0]);
    let u = ctx.add_time_function("u", &grid, 2, 1);
    let eq = Eq::new(u.dt(), u.laplace());
    let st = eq.solve_for(&u.forward(), &ctx).unwrap();
    Operator::build(ctx, grid, vec![st]).unwrap()
}

fn traced_reports(op: &Operator, mode: HaloMode, nt: i64) -> (Vec<TraceReport>, PerfSummary) {
    let opts = ApplyOptions::default()
        .with_nt(nt)
        .with_dt(0.05)
        .with_mode(mode)
        .with_ranks(27)
        .with_topology(&[3, 3, 3])
        .with_trace(TraceLevel::Full)
        .with_label("heat-9cubed");
    let applied = op.run(
        &opts,
        |ws| {
            ws.field_data_mut("u", 0)
                .fill_global_slice(&[2..7, 2..7, 2..7], 1.0);
        },
        |ws| ws.last_stats.clone().unwrap().trace.unwrap(),
    );
    (applied.results, applied.summary)
}

#[test]
fn interior_rank_message_counts_match_table1() {
    let op = heat_op();
    let nt = 3i64;
    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        let (reports, summary) = traced_reports(&op, mode, nt);
        assert_eq!(reports.len(), 27);
        // One exchange per timestep (a single halo'd field), so the
        // interior rank sends exactly messages_per_exchange per step.
        let per_rank_sends: Vec<usize> = reports
            .iter()
            .map(|r| r.sends_matching(|_| true).len())
            .collect();
        let expect = mode.messages_per_exchange(3) * nt as usize;
        let max = *per_rank_sends.iter().max().unwrap();
        assert_eq!(max, expect, "{mode:?}: interior rank sends");
        assert_eq!(
            per_rank_sends.iter().filter(|&&c| c == max).count(),
            1,
            "{mode:?}: exactly one interior rank on a [3,3,3] topology"
        );
        // A corner rank has 3 (basic) / 7 (diag, full) neighbours.
        let corner = match mode {
            HaloMode::Basic => 3,
            _ => 7,
        };
        assert_eq!(
            *per_rank_sends.iter().min().unwrap(),
            corner * nt as usize,
            "{mode:?}: corner rank sends"
        );
        // The summary's histogram counts every sent message cluster-wide.
        assert_eq!(
            summary.histogram.total(),
            per_rank_sends.iter().sum::<usize>() as u64,
            "{mode:?}: histogram total"
        );
    }
}

#[test]
fn section_timers_reflect_mode_structure() {
    let op = heat_op();
    let nt = 3i64;

    // Basic: synchronous exchange — every rank pays a nonzero halo.wait,
    // and there is no CORE/REMAINDER split.
    let (basic, _) = traced_reports(&op, HaloMode::Basic, nt);
    for r in &basic {
        assert!(
            r.section_secs(Section::HaloWait) > 0.0,
            "rank {}: basic mode must block in halo.wait",
            r.rank
        );
        assert_eq!(
            r.section_count(Section::Remainder),
            0,
            "rank {}: basic mode has no remainder region",
            r.rank
        );
        assert!(r.section_secs(Section::Compute) > 0.0);
        // Per-step breakdowns recorded at TraceLevel::Full.
        assert_eq!(r.steps.len(), nt as usize, "rank {}", r.rank);
    }

    // Full: communication overlaps the CORE loop, so every rank runs a
    // REMAINDER region and the wait span shrinks to what the overlap
    // could not hide (still bounded by the rank's total halo time).
    let (full, _) = traced_reports(&op, HaloMode::Full, nt);
    for r in &full {
        assert!(
            r.section_count(Section::Remainder) > 0,
            "rank {}: full mode must execute a remainder region",
            r.rank
        );
        assert!(r.halo_secs() >= r.section_secs(Section::HaloWait));
    }
}

#[test]
fn trace_json_round_trips_through_real_runs() {
    let op = heat_op();
    let (reports, summary) = traced_reports(&op, HaloMode::Diagonal, 2);
    for r in &reports {
        let back = TraceReport::from_json(&r.to_json()).unwrap();
        assert_eq!(&back, r);
    }
    let back = PerfSummary::from_json(&summary.to_json()).unwrap();
    assert_eq!(back, summary);
    // And the parsed JSON text round-trips too (what `tables perf` emits).
    let text = summary.to_json().to_string();
    let reparsed = mpix::trace::Value::parse(&text).unwrap();
    assert_eq!(PerfSummary::from_json(&reparsed).unwrap(), summary);
}

#[test]
fn disabled_trace_reports_nothing() {
    let op = heat_op();
    let opts = ApplyOptions::default()
        .with_nt(1)
        .with_dt(0.05)
        .with_ranks(8);
    let applied = op.run(&opts, |_| {}, |ws| ws.last_stats.clone().unwrap().trace);
    assert!(applied.results.iter().all(Option::is_none));
    // Wall-clock totals are still real even with tracing off.
    assert!(applied.summary.total_secs > 0.0);
    assert_eq!(applied.summary.per_rank.len(), 8);
    assert_eq!(applied.summary.halo_wait_fraction, 0.0);
}
