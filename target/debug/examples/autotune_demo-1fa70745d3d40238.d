/root/repo/target/debug/examples/autotune_demo-1fa70745d3d40238.d: examples/autotune_demo.rs

/root/repo/target/debug/examples/autotune_demo-1fa70745d3d40238: examples/autotune_demo.rs

examples/autotune_demo.rs:
