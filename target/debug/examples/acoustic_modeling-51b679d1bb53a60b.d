/root/repo/target/debug/examples/acoustic_modeling-51b679d1bb53a60b.d: examples/acoustic_modeling.rs

/root/repo/target/debug/examples/acoustic_modeling-51b679d1bb53a60b: examples/acoustic_modeling.rs

examples/acoustic_modeling.rs:
