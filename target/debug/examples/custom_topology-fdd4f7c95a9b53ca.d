/root/repo/target/debug/examples/custom_topology-fdd4f7c95a9b53ca.d: examples/custom_topology.rs

/root/repo/target/debug/examples/custom_topology-fdd4f7c95a9b53ca: examples/custom_topology.rs

examples/custom_topology.rs:
