/root/repo/target/debug/examples/quickstart-cfa93753e50d1098.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cfa93753e50d1098: examples/quickstart.rs

examples/quickstart.rs:
