/root/repo/target/debug/examples/rtm_imaging-98a689230df13361.d: examples/rtm_imaging.rs

/root/repo/target/debug/examples/rtm_imaging-98a689230df13361: examples/rtm_imaging.rs

examples/rtm_imaging.rs:
