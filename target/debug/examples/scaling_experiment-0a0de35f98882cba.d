/root/repo/target/debug/examples/scaling_experiment-0a0de35f98882cba.d: examples/scaling_experiment.rs

/root/repo/target/debug/examples/scaling_experiment-0a0de35f98882cba: examples/scaling_experiment.rs

examples/scaling_experiment.rs:
