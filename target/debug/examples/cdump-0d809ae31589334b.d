/root/repo/target/debug/examples/cdump-0d809ae31589334b.d: examples/cdump.rs

/root/repo/target/debug/examples/cdump-0d809ae31589334b: examples/cdump.rs

examples/cdump.rs:
