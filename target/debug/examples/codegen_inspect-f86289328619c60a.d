/root/repo/target/debug/examples/codegen_inspect-f86289328619c60a.d: examples/codegen_inspect.rs

/root/repo/target/debug/examples/codegen_inspect-f86289328619c60a: examples/codegen_inspect.rs

examples/codegen_inspect.rs:
