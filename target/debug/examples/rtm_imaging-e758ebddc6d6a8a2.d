/root/repo/target/debug/examples/rtm_imaging-e758ebddc6d6a8a2.d: examples/rtm_imaging.rs

/root/repo/target/debug/examples/rtm_imaging-e758ebddc6d6a8a2: examples/rtm_imaging.rs

examples/rtm_imaging.rs:
