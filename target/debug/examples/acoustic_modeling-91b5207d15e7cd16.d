/root/repo/target/debug/examples/acoustic_modeling-91b5207d15e7cd16.d: examples/acoustic_modeling.rs

/root/repo/target/debug/examples/acoustic_modeling-91b5207d15e7cd16: examples/acoustic_modeling.rs

examples/acoustic_modeling.rs:
