/root/repo/target/debug/examples/quickstart-9a0945a6949420d3.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9a0945a6949420d3: examples/quickstart.rs

examples/quickstart.rs:
