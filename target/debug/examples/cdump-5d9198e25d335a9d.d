/root/repo/target/debug/examples/cdump-5d9198e25d335a9d.d: examples/cdump.rs

/root/repo/target/debug/examples/cdump-5d9198e25d335a9d: examples/cdump.rs

examples/cdump.rs:
