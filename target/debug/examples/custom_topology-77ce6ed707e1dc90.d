/root/repo/target/debug/examples/custom_topology-77ce6ed707e1dc90.d: examples/custom_topology.rs

/root/repo/target/debug/examples/custom_topology-77ce6ed707e1dc90: examples/custom_topology.rs

examples/custom_topology.rs:
