/root/repo/target/debug/examples/scaling_experiment-e0958c3810512491.d: examples/scaling_experiment.rs

/root/repo/target/debug/examples/scaling_experiment-e0958c3810512491: examples/scaling_experiment.rs

examples/scaling_experiment.rs:
