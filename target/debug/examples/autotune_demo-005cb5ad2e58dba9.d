/root/repo/target/debug/examples/autotune_demo-005cb5ad2e58dba9.d: examples/autotune_demo.rs

/root/repo/target/debug/examples/autotune_demo-005cb5ad2e58dba9: examples/autotune_demo.rs

examples/autotune_demo.rs:
