/root/repo/target/debug/examples/codegen_inspect-5631db096674dbc3.d: examples/codegen_inspect.rs

/root/repo/target/debug/examples/codegen_inspect-5631db096674dbc3: examples/codegen_inspect.rs

examples/codegen_inspect.rs:
