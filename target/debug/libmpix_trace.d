/root/repo/target/debug/libmpix_trace.rlib: /root/repo/crates/json/src/lib.rs /root/repo/crates/trace/src/lib.rs /root/repo/crates/trace/src/msg.rs /root/repo/crates/trace/src/summary.rs
