/root/repo/target/debug/deps/mpix_json-602c19457971f62b.d: crates/json/src/lib.rs

/root/repo/target/debug/deps/libmpix_json-602c19457971f62b.rmeta: crates/json/src/lib.rs

crates/json/src/lib.rs:
