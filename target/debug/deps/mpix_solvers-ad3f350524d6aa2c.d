/root/repo/target/debug/deps/mpix_solvers-ad3f350524d6aa2c.d: crates/solvers/src/lib.rs crates/solvers/src/acoustic.rs crates/solvers/src/elastic.rs crates/solvers/src/model.rs crates/solvers/src/propagator.rs crates/solvers/src/ricker.rs crates/solvers/src/tti.rs crates/solvers/src/verification.rs crates/solvers/src/viscoelastic.rs

/root/repo/target/debug/deps/libmpix_solvers-ad3f350524d6aa2c.rlib: crates/solvers/src/lib.rs crates/solvers/src/acoustic.rs crates/solvers/src/elastic.rs crates/solvers/src/model.rs crates/solvers/src/propagator.rs crates/solvers/src/ricker.rs crates/solvers/src/tti.rs crates/solvers/src/verification.rs crates/solvers/src/viscoelastic.rs

/root/repo/target/debug/deps/libmpix_solvers-ad3f350524d6aa2c.rmeta: crates/solvers/src/lib.rs crates/solvers/src/acoustic.rs crates/solvers/src/elastic.rs crates/solvers/src/model.rs crates/solvers/src/propagator.rs crates/solvers/src/ricker.rs crates/solvers/src/tti.rs crates/solvers/src/verification.rs crates/solvers/src/viscoelastic.rs

crates/solvers/src/lib.rs:
crates/solvers/src/acoustic.rs:
crates/solvers/src/elastic.rs:
crates/solvers/src/model.rs:
crates/solvers/src/propagator.rs:
crates/solvers/src/ricker.rs:
crates/solvers/src/tti.rs:
crates/solvers/src/verification.rs:
crates/solvers/src/viscoelastic.rs:
