/root/repo/target/debug/deps/compiler_fuzz-d77fdcd3548516f4.d: tests/compiler_fuzz.rs

/root/repo/target/debug/deps/compiler_fuzz-d77fdcd3548516f4: tests/compiler_fuzz.rs

tests/compiler_fuzz.rs:
