/root/repo/target/debug/deps/codegen_golden-926b2255df3fa13b.d: tests/codegen_golden.rs

/root/repo/target/debug/deps/codegen_golden-926b2255df3fa13b: tests/codegen_golden.rs

tests/codegen_golden.rs:
