/root/repo/target/debug/deps/convergence-354134cc34e9fcc8.d: tests/convergence.rs

/root/repo/target/debug/deps/convergence-354134cc34e9fcc8: tests/convergence.rs

tests/convergence.rs:
