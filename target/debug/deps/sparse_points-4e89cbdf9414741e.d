/root/repo/target/debug/deps/sparse_points-4e89cbdf9414741e.d: tests/sparse_points.rs

/root/repo/target/debug/deps/sparse_points-4e89cbdf9414741e: tests/sparse_points.rs

tests/sparse_points.rs:
