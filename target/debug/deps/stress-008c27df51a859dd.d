/root/repo/target/debug/deps/stress-008c27df51a859dd.d: crates/comm/tests/stress.rs

/root/repo/target/debug/deps/stress-008c27df51a859dd: crates/comm/tests/stress.rs

crates/comm/tests/stress.rs:
