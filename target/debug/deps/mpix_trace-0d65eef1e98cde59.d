/root/repo/target/debug/deps/mpix_trace-0d65eef1e98cde59.d: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs

/root/repo/target/debug/deps/libmpix_trace-0d65eef1e98cde59.rlib: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs

/root/repo/target/debug/deps/libmpix_trace-0d65eef1e98cde59.rmeta: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs

crates/trace/src/lib.rs:
crates/trace/src/msg.rs:
crates/trace/src/summary.rs:
