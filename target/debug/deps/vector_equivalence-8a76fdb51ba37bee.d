/root/repo/target/debug/deps/vector_equivalence-8a76fdb51ba37bee.d: tests/vector_equivalence.rs

/root/repo/target/debug/deps/vector_equivalence-8a76fdb51ba37bee: tests/vector_equivalence.rs

tests/vector_equivalence.rs:
