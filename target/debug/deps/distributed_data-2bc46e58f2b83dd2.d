/root/repo/target/debug/deps/distributed_data-2bc46e58f2b83dd2.d: tests/distributed_data.rs

/root/repo/target/debug/deps/distributed_data-2bc46e58f2b83dd2: tests/distributed_data.rs

tests/distributed_data.rs:
