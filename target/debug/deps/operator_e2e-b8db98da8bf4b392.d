/root/repo/target/debug/deps/operator_e2e-b8db98da8bf4b392.d: crates/core/tests/operator_e2e.rs

/root/repo/target/debug/deps/operator_e2e-b8db98da8bf4b392: crates/core/tests/operator_e2e.rs

crates/core/tests/operator_e2e.rs:
