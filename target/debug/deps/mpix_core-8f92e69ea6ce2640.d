/root/repo/target/debug/deps/mpix_core-8f92e69ea6ce2640.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

/root/repo/target/debug/deps/mpix_core-8f92e69ea6ce2640: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/operator.rs:
crates/core/src/workspace.rs:
