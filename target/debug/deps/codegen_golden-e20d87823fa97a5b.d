/root/repo/target/debug/deps/codegen_golden-e20d87823fa97a5b.d: tests/codegen_golden.rs

/root/repo/target/debug/deps/codegen_golden-e20d87823fa97a5b: tests/codegen_golden.rs

tests/codegen_golden.rs:
