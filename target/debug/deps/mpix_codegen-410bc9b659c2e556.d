/root/repo/target/debug/deps/mpix_codegen-410bc9b659c2e556.d: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

/root/repo/target/debug/deps/libmpix_codegen-410bc9b659c2e556.rlib: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

/root/repo/target/debug/deps/libmpix_codegen-410bc9b659c2e556.rmeta: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

crates/codegen/src/lib.rs:
crates/codegen/src/bytecode.rs:
crates/codegen/src/cgen.rs:
crates/codegen/src/executor.rs:
