/root/repo/target/debug/deps/mpix_perf-f90b2622c95f1773.d: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

/root/repo/target/debug/deps/libmpix_perf-f90b2622c95f1773.rlib: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

/root/repo/target/debug/deps/libmpix_perf-f90b2622c95f1773.rmeta: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

crates/perf/src/lib.rs:
crates/perf/src/machine.rs:
crates/perf/src/network.rs:
crates/perf/src/profile.rs:
crates/perf/src/roofline.rs:
crates/perf/src/scaling.rs:
