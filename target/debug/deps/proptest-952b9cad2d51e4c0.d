/root/repo/target/debug/deps/proptest-952b9cad2d51e4c0.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-952b9cad2d51e4c0.rlib: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-952b9cad2d51e4c0.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
