/root/repo/target/debug/deps/mpix_dmp-37c6690febff4839.d: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

/root/repo/target/debug/deps/mpix_dmp-37c6690febff4839: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

crates/dmp/src/lib.rs:
crates/dmp/src/array.rs:
crates/dmp/src/decomp.rs:
crates/dmp/src/halo.rs:
crates/dmp/src/regions.rs:
crates/dmp/src/sparse.rs:
