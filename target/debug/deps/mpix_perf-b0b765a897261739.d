/root/repo/target/debug/deps/mpix_perf-b0b765a897261739.d: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

/root/repo/target/debug/deps/mpix_perf-b0b765a897261739: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

crates/perf/src/lib.rs:
crates/perf/src/machine.rs:
crates/perf/src/network.rs:
crates/perf/src/profile.rs:
crates/perf/src/roofline.rs:
crates/perf/src/scaling.rs:
