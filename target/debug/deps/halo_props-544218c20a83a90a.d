/root/repo/target/debug/deps/halo_props-544218c20a83a90a.d: crates/dmp/tests/halo_props.rs

/root/repo/target/debug/deps/halo_props-544218c20a83a90a: crates/dmp/tests/halo_props.rs

crates/dmp/tests/halo_props.rs:
