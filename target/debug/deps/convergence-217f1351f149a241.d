/root/repo/target/debug/deps/convergence-217f1351f149a241.d: tests/convergence.rs

/root/repo/target/debug/deps/convergence-217f1351f149a241: tests/convergence.rs

tests/convergence.rs:
