/root/repo/target/debug/deps/mpix_dmp-d5f9fc097c478c8d.d: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

/root/repo/target/debug/deps/libmpix_dmp-d5f9fc097c478c8d.rmeta: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

crates/dmp/src/lib.rs:
crates/dmp/src/array.rs:
crates/dmp/src/decomp.rs:
crates/dmp/src/halo.rs:
crates/dmp/src/regions.rs:
crates/dmp/src/sparse.rs:
