/root/repo/target/debug/deps/mpix_comm-976bc030fb005ec4.d: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs

/root/repo/target/debug/deps/mpix_comm-976bc030fb005ec4: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs

crates/comm/src/lib.rs:
crates/comm/src/cart.rs:
crates/comm/src/comm.rs:
crates/comm/src/stats.rs:
crates/comm/src/universe.rs:
