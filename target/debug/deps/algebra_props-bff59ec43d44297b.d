/root/repo/target/debug/deps/algebra_props-bff59ec43d44297b.d: crates/symbolic/tests/algebra_props.rs

/root/repo/target/debug/deps/algebra_props-bff59ec43d44297b: crates/symbolic/tests/algebra_props.rs

crates/symbolic/tests/algebra_props.rs:
