/root/repo/target/debug/deps/tables-dd95b529bcec53be.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-dd95b529bcec53be: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
