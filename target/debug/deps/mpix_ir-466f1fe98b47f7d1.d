/root/repo/target/debug/deps/mpix_ir-466f1fe98b47f7d1.d: crates/ir/src/lib.rs crates/ir/src/cluster.rs crates/ir/src/halo.rs crates/ir/src/iet.rs crates/ir/src/iexpr.rs crates/ir/src/lowering.rs crates/ir/src/opcount.rs crates/ir/src/passes.rs crates/ir/src/schedule.rs

/root/repo/target/debug/deps/libmpix_ir-466f1fe98b47f7d1.rlib: crates/ir/src/lib.rs crates/ir/src/cluster.rs crates/ir/src/halo.rs crates/ir/src/iet.rs crates/ir/src/iexpr.rs crates/ir/src/lowering.rs crates/ir/src/opcount.rs crates/ir/src/passes.rs crates/ir/src/schedule.rs

/root/repo/target/debug/deps/libmpix_ir-466f1fe98b47f7d1.rmeta: crates/ir/src/lib.rs crates/ir/src/cluster.rs crates/ir/src/halo.rs crates/ir/src/iet.rs crates/ir/src/iexpr.rs crates/ir/src/lowering.rs crates/ir/src/opcount.rs crates/ir/src/passes.rs crates/ir/src/schedule.rs

crates/ir/src/lib.rs:
crates/ir/src/cluster.rs:
crates/ir/src/halo.rs:
crates/ir/src/iet.rs:
crates/ir/src/iexpr.rs:
crates/ir/src/lowering.rs:
crates/ir/src/opcount.rs:
crates/ir/src/passes.rs:
crates/ir/src/schedule.rs:
