/root/repo/target/debug/deps/mpix_symbolic-c2b33c191467afe9.d: crates/symbolic/src/lib.rs crates/symbolic/src/context.rs crates/symbolic/src/eq.rs crates/symbolic/src/expr.rs crates/symbolic/src/fd.rs crates/symbolic/src/grid.rs crates/symbolic/src/simplify.rs crates/symbolic/src/visit.rs

/root/repo/target/debug/deps/mpix_symbolic-c2b33c191467afe9: crates/symbolic/src/lib.rs crates/symbolic/src/context.rs crates/symbolic/src/eq.rs crates/symbolic/src/expr.rs crates/symbolic/src/fd.rs crates/symbolic/src/grid.rs crates/symbolic/src/simplify.rs crates/symbolic/src/visit.rs

crates/symbolic/src/lib.rs:
crates/symbolic/src/context.rs:
crates/symbolic/src/eq.rs:
crates/symbolic/src/expr.rs:
crates/symbolic/src/fd.rs:
crates/symbolic/src/grid.rs:
crates/symbolic/src/simplify.rs:
crates/symbolic/src/visit.rs:
