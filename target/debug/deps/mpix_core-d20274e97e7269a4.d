/root/repo/target/debug/deps/mpix_core-d20274e97e7269a4.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

/root/repo/target/debug/deps/libmpix_core-d20274e97e7269a4.rlib: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

/root/repo/target/debug/deps/libmpix_core-d20274e97e7269a4.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/operator.rs:
crates/core/src/workspace.rs:
