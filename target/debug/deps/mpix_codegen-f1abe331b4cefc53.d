/root/repo/target/debug/deps/mpix_codegen-f1abe331b4cefc53.d: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

/root/repo/target/debug/deps/libmpix_codegen-f1abe331b4cefc53.rmeta: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

crates/codegen/src/lib.rs:
crates/codegen/src/bytecode.rs:
crates/codegen/src/cgen.rs:
crates/codegen/src/executor.rs:
