/root/repo/target/debug/deps/mpix_perf-f2b20a1388b66fb3.d: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

/root/repo/target/debug/deps/libmpix_perf-f2b20a1388b66fb3.rlib: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

/root/repo/target/debug/deps/libmpix_perf-f2b20a1388b66fb3.rmeta: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

crates/perf/src/lib.rs:
crates/perf/src/machine.rs:
crates/perf/src/network.rs:
crates/perf/src/profile.rs:
crates/perf/src/roofline.rs:
crates/perf/src/scaling.rs:
