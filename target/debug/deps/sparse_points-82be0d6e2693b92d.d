/root/repo/target/debug/deps/sparse_points-82be0d6e2693b92d.d: tests/sparse_points.rs

/root/repo/target/debug/deps/sparse_points-82be0d6e2693b92d: tests/sparse_points.rs

tests/sparse_points.rs:
