/root/repo/target/debug/deps/mpix_json-eb0518175b67720b.d: crates/json/src/lib.rs

/root/repo/target/debug/deps/mpix_json-eb0518175b67720b: crates/json/src/lib.rs

crates/json/src/lib.rs:
