/root/repo/target/debug/deps/scaling_model-87000540a54934e2.d: tests/scaling_model.rs

/root/repo/target/debug/deps/scaling_model-87000540a54934e2: tests/scaling_model.rs

tests/scaling_model.rs:
