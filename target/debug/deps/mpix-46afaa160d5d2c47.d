/root/repo/target/debug/deps/mpix-46afaa160d5d2c47.d: src/lib.rs

/root/repo/target/debug/deps/mpix-46afaa160d5d2c47: src/lib.rs

src/lib.rs:
