/root/repo/target/debug/deps/mpix_trace-5ae90e71b8570307.d: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs

/root/repo/target/debug/deps/libmpix_trace-5ae90e71b8570307.rmeta: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs

crates/trace/src/lib.rs:
crates/trace/src/msg.rs:
crates/trace/src/summary.rs:
