/root/repo/target/debug/deps/mpix-f6e001f4be9df9a1.d: src/lib.rs

/root/repo/target/debug/deps/libmpix-f6e001f4be9df9a1.rlib: src/lib.rs

/root/repo/target/debug/deps/libmpix-f6e001f4be9df9a1.rmeta: src/lib.rs

src/lib.rs:
