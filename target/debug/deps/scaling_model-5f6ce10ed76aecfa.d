/root/repo/target/debug/deps/scaling_model-5f6ce10ed76aecfa.d: tests/scaling_model.rs

/root/repo/target/debug/deps/scaling_model-5f6ce10ed76aecfa: tests/scaling_model.rs

tests/scaling_model.rs:
