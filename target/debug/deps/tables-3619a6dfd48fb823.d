/root/repo/target/debug/deps/tables-3619a6dfd48fb823.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-3619a6dfd48fb823: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
