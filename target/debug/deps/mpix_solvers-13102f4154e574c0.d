/root/repo/target/debug/deps/mpix_solvers-13102f4154e574c0.d: crates/solvers/src/lib.rs crates/solvers/src/acoustic.rs crates/solvers/src/elastic.rs crates/solvers/src/model.rs crates/solvers/src/propagator.rs crates/solvers/src/ricker.rs crates/solvers/src/tti.rs crates/solvers/src/verification.rs crates/solvers/src/viscoelastic.rs

/root/repo/target/debug/deps/libmpix_solvers-13102f4154e574c0.rlib: crates/solvers/src/lib.rs crates/solvers/src/acoustic.rs crates/solvers/src/elastic.rs crates/solvers/src/model.rs crates/solvers/src/propagator.rs crates/solvers/src/ricker.rs crates/solvers/src/tti.rs crates/solvers/src/verification.rs crates/solvers/src/viscoelastic.rs

/root/repo/target/debug/deps/libmpix_solvers-13102f4154e574c0.rmeta: crates/solvers/src/lib.rs crates/solvers/src/acoustic.rs crates/solvers/src/elastic.rs crates/solvers/src/model.rs crates/solvers/src/propagator.rs crates/solvers/src/ricker.rs crates/solvers/src/tti.rs crates/solvers/src/verification.rs crates/solvers/src/viscoelastic.rs

crates/solvers/src/lib.rs:
crates/solvers/src/acoustic.rs:
crates/solvers/src/elastic.rs:
crates/solvers/src/model.rs:
crates/solvers/src/propagator.rs:
crates/solvers/src/ricker.rs:
crates/solvers/src/tti.rs:
crates/solvers/src/verification.rs:
crates/solvers/src/viscoelastic.rs:
