/root/repo/target/debug/deps/criterion-a65bb77ccb711599.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-a65bb77ccb711599.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-a65bb77ccb711599.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
