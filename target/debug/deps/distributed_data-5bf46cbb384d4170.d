/root/repo/target/debug/deps/distributed_data-5bf46cbb384d4170.d: tests/distributed_data.rs

/root/repo/target/debug/deps/distributed_data-5bf46cbb384d4170: tests/distributed_data.rs

tests/distributed_data.rs:
