/root/repo/target/debug/deps/rtm_adjoint-8bf9095c0336ed1e.d: tests/rtm_adjoint.rs

/root/repo/target/debug/deps/rtm_adjoint-8bf9095c0336ed1e: tests/rtm_adjoint.rs

tests/rtm_adjoint.rs:
