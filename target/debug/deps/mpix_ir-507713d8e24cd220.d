/root/repo/target/debug/deps/mpix_ir-507713d8e24cd220.d: crates/ir/src/lib.rs crates/ir/src/cluster.rs crates/ir/src/halo.rs crates/ir/src/iet.rs crates/ir/src/iexpr.rs crates/ir/src/lowering.rs crates/ir/src/opcount.rs crates/ir/src/passes.rs crates/ir/src/schedule.rs

/root/repo/target/debug/deps/mpix_ir-507713d8e24cd220: crates/ir/src/lib.rs crates/ir/src/cluster.rs crates/ir/src/halo.rs crates/ir/src/iet.rs crates/ir/src/iexpr.rs crates/ir/src/lowering.rs crates/ir/src/opcount.rs crates/ir/src/passes.rs crates/ir/src/schedule.rs

crates/ir/src/lib.rs:
crates/ir/src/cluster.rs:
crates/ir/src/halo.rs:
crates/ir/src/iet.rs:
crates/ir/src/iexpr.rs:
crates/ir/src/lowering.rs:
crates/ir/src/opcount.rs:
crates/ir/src/passes.rs:
crates/ir/src/schedule.rs:
