/root/repo/target/debug/deps/mpix-818f46400f1d5255.d: src/lib.rs

/root/repo/target/debug/deps/mpix-818f46400f1d5255: src/lib.rs

src/lib.rs:
