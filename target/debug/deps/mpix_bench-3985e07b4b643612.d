/root/repo/target/debug/deps/mpix_bench-3985e07b4b643612.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libmpix_bench-3985e07b4b643612.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libmpix_bench-3985e07b4b643612.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/profiles.rs:
crates/bench/src/tables.rs:
