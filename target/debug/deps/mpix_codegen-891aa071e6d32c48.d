/root/repo/target/debug/deps/mpix_codegen-891aa071e6d32c48.d: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

/root/repo/target/debug/deps/libmpix_codegen-891aa071e6d32c48.rlib: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

/root/repo/target/debug/deps/libmpix_codegen-891aa071e6d32c48.rmeta: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

crates/codegen/src/lib.rs:
crates/codegen/src/bytecode.rs:
crates/codegen/src/cgen.rs:
crates/codegen/src/executor.rs:
