/root/repo/target/debug/deps/mpix_core-7681bc6f18e3444c.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

/root/repo/target/debug/deps/libmpix_core-7681bc6f18e3444c.rlib: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

/root/repo/target/debug/deps/libmpix_core-7681bc6f18e3444c.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/operator.rs:
crates/core/src/workspace.rs:
