/root/repo/target/debug/deps/mpix_codegen-ab159ce5ba049c73.d: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

/root/repo/target/debug/deps/mpix_codegen-ab159ce5ba049c73: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

crates/codegen/src/lib.rs:
crates/codegen/src/bytecode.rs:
crates/codegen/src/cgen.rs:
crates/codegen/src/executor.rs:
