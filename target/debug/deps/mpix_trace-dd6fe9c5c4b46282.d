/root/repo/target/debug/deps/mpix_trace-dd6fe9c5c4b46282.d: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs

/root/repo/target/debug/deps/mpix_trace-dd6fe9c5c4b46282: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs

crates/trace/src/lib.rs:
crates/trace/src/msg.rs:
crates/trace/src/summary.rs:
