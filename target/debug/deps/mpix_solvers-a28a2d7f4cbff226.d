/root/repo/target/debug/deps/mpix_solvers-a28a2d7f4cbff226.d: crates/solvers/src/lib.rs crates/solvers/src/acoustic.rs crates/solvers/src/elastic.rs crates/solvers/src/model.rs crates/solvers/src/propagator.rs crates/solvers/src/ricker.rs crates/solvers/src/tti.rs crates/solvers/src/verification.rs crates/solvers/src/viscoelastic.rs

/root/repo/target/debug/deps/mpix_solvers-a28a2d7f4cbff226: crates/solvers/src/lib.rs crates/solvers/src/acoustic.rs crates/solvers/src/elastic.rs crates/solvers/src/model.rs crates/solvers/src/propagator.rs crates/solvers/src/ricker.rs crates/solvers/src/tti.rs crates/solvers/src/verification.rs crates/solvers/src/viscoelastic.rs

crates/solvers/src/lib.rs:
crates/solvers/src/acoustic.rs:
crates/solvers/src/elastic.rs:
crates/solvers/src/model.rs:
crates/solvers/src/propagator.rs:
crates/solvers/src/ricker.rs:
crates/solvers/src/tti.rs:
crates/solvers/src/verification.rs:
crates/solvers/src/viscoelastic.rs:
