/root/repo/target/debug/deps/equivalence_all_kernels-8537274ed9dfac99.d: tests/equivalence_all_kernels.rs

/root/repo/target/debug/deps/equivalence_all_kernels-8537274ed9dfac99: tests/equivalence_all_kernels.rs

tests/equivalence_all_kernels.rs:
