/root/repo/target/debug/deps/trace_invariants-e100cfc33ee385dd.d: tests/trace_invariants.rs

/root/repo/target/debug/deps/trace_invariants-e100cfc33ee385dd: tests/trace_invariants.rs

tests/trace_invariants.rs:
