/root/repo/target/debug/deps/proptest-46cca2d00adf62c8.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-46cca2d00adf62c8: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
