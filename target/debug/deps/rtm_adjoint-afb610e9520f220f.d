/root/repo/target/debug/deps/rtm_adjoint-afb610e9520f220f.d: tests/rtm_adjoint.rs

/root/repo/target/debug/deps/rtm_adjoint-afb610e9520f220f: tests/rtm_adjoint.rs

tests/rtm_adjoint.rs:
