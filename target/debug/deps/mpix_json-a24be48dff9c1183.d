/root/repo/target/debug/deps/mpix_json-a24be48dff9c1183.d: crates/json/src/lib.rs

/root/repo/target/debug/deps/libmpix_json-a24be48dff9c1183.rlib: crates/json/src/lib.rs

/root/repo/target/debug/deps/libmpix_json-a24be48dff9c1183.rmeta: crates/json/src/lib.rs

crates/json/src/lib.rs:
