/root/repo/target/debug/deps/rand-b3c0eb996f8067db.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b3c0eb996f8067db.rlib: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b3c0eb996f8067db.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
