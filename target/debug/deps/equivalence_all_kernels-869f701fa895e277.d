/root/repo/target/debug/deps/equivalence_all_kernels-869f701fa895e277.d: tests/equivalence_all_kernels.rs

/root/repo/target/debug/deps/equivalence_all_kernels-869f701fa895e277: tests/equivalence_all_kernels.rs

tests/equivalence_all_kernels.rs:
