/root/repo/target/debug/deps/mpix-be5f266454e6ef2d.d: src/lib.rs

/root/repo/target/debug/deps/libmpix-be5f266454e6ef2d.rlib: src/lib.rs

/root/repo/target/debug/deps/libmpix-be5f266454e6ef2d.rmeta: src/lib.rs

src/lib.rs:
