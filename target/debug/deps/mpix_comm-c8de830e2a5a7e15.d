/root/repo/target/debug/deps/mpix_comm-c8de830e2a5a7e15.d: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs

/root/repo/target/debug/deps/libmpix_comm-c8de830e2a5a7e15.rlib: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs

/root/repo/target/debug/deps/libmpix_comm-c8de830e2a5a7e15.rmeta: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs

crates/comm/src/lib.rs:
crates/comm/src/cart.rs:
crates/comm/src/comm.rs:
crates/comm/src/stats.rs:
crates/comm/src/universe.rs:
