/root/repo/target/debug/deps/rand-577d7b2ba19acf62.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/rand-577d7b2ba19acf62: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
