/root/repo/target/debug/deps/mpix_bench-659736bdebb72124.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/mpix_bench-659736bdebb72124: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/profiles.rs:
crates/bench/src/tables.rs:
