/root/repo/target/debug/deps/mpix_bench-77010dbc7d3f8e6a.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libmpix_bench-77010dbc7d3f8e6a.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libmpix_bench-77010dbc7d3f8e6a.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/profiles.rs:
crates/bench/src/tables.rs:
