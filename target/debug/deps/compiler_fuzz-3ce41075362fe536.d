/root/repo/target/debug/deps/compiler_fuzz-3ce41075362fe536.d: tests/compiler_fuzz.rs

/root/repo/target/debug/deps/compiler_fuzz-3ce41075362fe536: tests/compiler_fuzz.rs

tests/compiler_fuzz.rs:
