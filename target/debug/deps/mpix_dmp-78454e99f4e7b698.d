/root/repo/target/debug/deps/mpix_dmp-78454e99f4e7b698.d: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

/root/repo/target/debug/deps/libmpix_dmp-78454e99f4e7b698.rlib: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

/root/repo/target/debug/deps/libmpix_dmp-78454e99f4e7b698.rmeta: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

crates/dmp/src/lib.rs:
crates/dmp/src/array.rs:
crates/dmp/src/decomp.rs:
crates/dmp/src/halo.rs:
crates/dmp/src/regions.rs:
crates/dmp/src/sparse.rs:
