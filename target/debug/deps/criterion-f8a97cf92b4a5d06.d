/root/repo/target/debug/deps/criterion-f8a97cf92b4a5d06.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-f8a97cf92b4a5d06: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
