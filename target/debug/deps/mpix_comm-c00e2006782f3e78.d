/root/repo/target/debug/deps/mpix_comm-c00e2006782f3e78.d: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs

/root/repo/target/debug/deps/libmpix_comm-c00e2006782f3e78.rmeta: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs

crates/comm/src/lib.rs:
crates/comm/src/cart.rs:
crates/comm/src/comm.rs:
crates/comm/src/stats.rs:
crates/comm/src/universe.rs:
