/root/repo/target/debug/libmpix_json.rlib: /root/repo/crates/json/src/lib.rs
