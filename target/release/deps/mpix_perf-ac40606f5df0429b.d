/root/repo/target/release/deps/mpix_perf-ac40606f5df0429b.d: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

/root/repo/target/release/deps/libmpix_perf-ac40606f5df0429b.rlib: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

/root/repo/target/release/deps/libmpix_perf-ac40606f5df0429b.rmeta: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

crates/perf/src/lib.rs:
crates/perf/src/machine.rs:
crates/perf/src/network.rs:
crates/perf/src/profile.rs:
crates/perf/src/roofline.rs:
crates/perf/src/scaling.rs:
