/root/repo/target/release/deps/mpix_bench-db033c8cd5eca573.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libmpix_bench-db033c8cd5eca573.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libmpix_bench-db033c8cd5eca573.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/profiles.rs:
crates/bench/src/tables.rs:
