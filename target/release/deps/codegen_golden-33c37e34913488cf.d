/root/repo/target/release/deps/codegen_golden-33c37e34913488cf.d: tests/codegen_golden.rs

/root/repo/target/release/deps/codegen_golden-33c37e34913488cf: tests/codegen_golden.rs

tests/codegen_golden.rs:
