/root/repo/target/release/deps/mpix_codegen-ea58912970f6196c.d: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs Cargo.toml

/root/repo/target/release/deps/libmpix_codegen-ea58912970f6196c.rmeta: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs Cargo.toml

crates/codegen/src/lib.rs:
crates/codegen/src/bytecode.rs:
crates/codegen/src/cgen.rs:
crates/codegen/src/executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
