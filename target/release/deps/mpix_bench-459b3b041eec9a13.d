/root/repo/target/release/deps/mpix_bench-459b3b041eec9a13.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/mpix_bench-459b3b041eec9a13: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/profiles.rs:
crates/bench/src/tables.rs:
