/root/repo/target/release/deps/mpix_core-00ae549f84648dc6.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

/root/repo/target/release/deps/mpix_core-00ae549f84648dc6: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/operator.rs:
crates/core/src/workspace.rs:
