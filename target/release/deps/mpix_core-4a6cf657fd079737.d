/root/repo/target/release/deps/mpix_core-4a6cf657fd079737.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

/root/repo/target/release/deps/mpix_core-4a6cf657fd079737: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/operator.rs:
crates/core/src/workspace.rs:
