/root/repo/target/release/deps/mpix_dmp-13f33e6badbea75d.d: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

/root/repo/target/release/deps/libmpix_dmp-13f33e6badbea75d.rlib: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

/root/repo/target/release/deps/libmpix_dmp-13f33e6badbea75d.rmeta: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

crates/dmp/src/lib.rs:
crates/dmp/src/array.rs:
crates/dmp/src/decomp.rs:
crates/dmp/src/halo.rs:
crates/dmp/src/regions.rs:
crates/dmp/src/sparse.rs:
