/root/repo/target/release/deps/mpix_ir-60b275c06b894cf4.d: crates/ir/src/lib.rs crates/ir/src/cluster.rs crates/ir/src/halo.rs crates/ir/src/iet.rs crates/ir/src/iexpr.rs crates/ir/src/lowering.rs crates/ir/src/opcount.rs crates/ir/src/passes.rs crates/ir/src/schedule.rs

/root/repo/target/release/deps/mpix_ir-60b275c06b894cf4: crates/ir/src/lib.rs crates/ir/src/cluster.rs crates/ir/src/halo.rs crates/ir/src/iet.rs crates/ir/src/iexpr.rs crates/ir/src/lowering.rs crates/ir/src/opcount.rs crates/ir/src/passes.rs crates/ir/src/schedule.rs

crates/ir/src/lib.rs:
crates/ir/src/cluster.rs:
crates/ir/src/halo.rs:
crates/ir/src/iet.rs:
crates/ir/src/iexpr.rs:
crates/ir/src/lowering.rs:
crates/ir/src/opcount.rs:
crates/ir/src/passes.rs:
crates/ir/src/schedule.rs:
