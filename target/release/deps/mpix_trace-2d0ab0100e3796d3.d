/root/repo/target/release/deps/mpix_trace-2d0ab0100e3796d3.d: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs

/root/repo/target/release/deps/libmpix_trace-2d0ab0100e3796d3.rlib: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs

/root/repo/target/release/deps/libmpix_trace-2d0ab0100e3796d3.rmeta: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs

crates/trace/src/lib.rs:
crates/trace/src/msg.rs:
crates/trace/src/summary.rs:
