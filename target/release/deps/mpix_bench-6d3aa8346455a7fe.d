/root/repo/target/release/deps/mpix_bench-6d3aa8346455a7fe.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/release/deps/libmpix_bench-6d3aa8346455a7fe.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/profiles.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
