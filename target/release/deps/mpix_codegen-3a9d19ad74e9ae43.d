/root/repo/target/release/deps/mpix_codegen-3a9d19ad74e9ae43.d: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

/root/repo/target/release/deps/mpix_codegen-3a9d19ad74e9ae43: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

crates/codegen/src/lib.rs:
crates/codegen/src/bytecode.rs:
crates/codegen/src/cgen.rs:
crates/codegen/src/executor.rs:
