/root/repo/target/release/deps/mpix_perf-3efd1c1f85001bd4.d: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

/root/repo/target/release/deps/libmpix_perf-3efd1c1f85001bd4.rlib: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

/root/repo/target/release/deps/libmpix_perf-3efd1c1f85001bd4.rmeta: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

crates/perf/src/lib.rs:
crates/perf/src/machine.rs:
crates/perf/src/network.rs:
crates/perf/src/profile.rs:
crates/perf/src/roofline.rs:
crates/perf/src/scaling.rs:
