/root/repo/target/release/deps/compiler-505c096ec2656d0f.d: crates/bench/benches/compiler.rs Cargo.toml

/root/repo/target/release/deps/libcompiler-505c096ec2656d0f.rmeta: crates/bench/benches/compiler.rs Cargo.toml

crates/bench/benches/compiler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
