/root/repo/target/release/deps/rtm_adjoint-e5efc92468eace8d.d: tests/rtm_adjoint.rs Cargo.toml

/root/repo/target/release/deps/librtm_adjoint-e5efc92468eace8d.rmeta: tests/rtm_adjoint.rs Cargo.toml

tests/rtm_adjoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
