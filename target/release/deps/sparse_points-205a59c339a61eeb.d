/root/repo/target/release/deps/sparse_points-205a59c339a61eeb.d: tests/sparse_points.rs Cargo.toml

/root/repo/target/release/deps/libsparse_points-205a59c339a61eeb.rmeta: tests/sparse_points.rs Cargo.toml

tests/sparse_points.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
