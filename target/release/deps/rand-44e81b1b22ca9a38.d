/root/repo/target/release/deps/rand-44e81b1b22ca9a38.d: crates/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-44e81b1b22ca9a38.rmeta: crates/rand/src/lib.rs Cargo.toml

crates/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
