/root/repo/target/release/deps/mpix_trace-133a1a5e7e3f1625.d: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs

/root/repo/target/release/deps/mpix_trace-133a1a5e7e3f1625: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs

crates/trace/src/lib.rs:
crates/trace/src/msg.rs:
crates/trace/src/summary.rs:
