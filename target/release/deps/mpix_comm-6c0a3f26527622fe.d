/root/repo/target/release/deps/mpix_comm-6c0a3f26527622fe.d: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs

/root/repo/target/release/deps/libmpix_comm-6c0a3f26527622fe.rlib: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs

/root/repo/target/release/deps/libmpix_comm-6c0a3f26527622fe.rmeta: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs

crates/comm/src/lib.rs:
crates/comm/src/cart.rs:
crates/comm/src/comm.rs:
crates/comm/src/stats.rs:
crates/comm/src/universe.rs:
