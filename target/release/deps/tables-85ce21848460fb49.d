/root/repo/target/release/deps/tables-85ce21848460fb49.d: crates/bench/src/bin/tables.rs Cargo.toml

/root/repo/target/release/deps/libtables-85ce21848460fb49.rmeta: crates/bench/src/bin/tables.rs Cargo.toml

crates/bench/src/bin/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
