/root/repo/target/release/deps/mpix_dmp-3c3a58872bdd0a85.d: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs Cargo.toml

/root/repo/target/release/deps/libmpix_dmp-3c3a58872bdd0a85.rmeta: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs Cargo.toml

crates/dmp/src/lib.rs:
crates/dmp/src/array.rs:
crates/dmp/src/decomp.rs:
crates/dmp/src/halo.rs:
crates/dmp/src/regions.rs:
crates/dmp/src/sparse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
