/root/repo/target/release/deps/equivalence_all_kernels-8961ffbcb5f7ef83.d: tests/equivalence_all_kernels.rs

/root/repo/target/release/deps/equivalence_all_kernels-8961ffbcb5f7ef83: tests/equivalence_all_kernels.rs

tests/equivalence_all_kernels.rs:
