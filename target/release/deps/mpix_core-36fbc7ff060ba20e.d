/root/repo/target/release/deps/mpix_core-36fbc7ff060ba20e.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

/root/repo/target/release/deps/libmpix_core-36fbc7ff060ba20e.rlib: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

/root/repo/target/release/deps/libmpix_core-36fbc7ff060ba20e.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/operator.rs:
crates/core/src/workspace.rs:
