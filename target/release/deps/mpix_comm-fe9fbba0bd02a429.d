/root/repo/target/release/deps/mpix_comm-fe9fbba0bd02a429.d: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs Cargo.toml

/root/repo/target/release/deps/libmpix_comm-fe9fbba0bd02a429.rmeta: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs Cargo.toml

crates/comm/src/lib.rs:
crates/comm/src/cart.rs:
crates/comm/src/comm.rs:
crates/comm/src/stats.rs:
crates/comm/src/universe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
