/root/repo/target/release/deps/convergence-c23f1719c0f8ed59.d: tests/convergence.rs

/root/repo/target/release/deps/convergence-c23f1719c0f8ed59: tests/convergence.rs

tests/convergence.rs:
