/root/repo/target/release/deps/trace_invariants-1f605b067e96eb96.d: tests/trace_invariants.rs

/root/repo/target/release/deps/trace_invariants-1f605b067e96eb96: tests/trace_invariants.rs

tests/trace_invariants.rs:
