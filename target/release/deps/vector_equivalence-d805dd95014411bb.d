/root/repo/target/release/deps/vector_equivalence-d805dd95014411bb.d: tests/vector_equivalence.rs Cargo.toml

/root/repo/target/release/deps/libvector_equivalence-d805dd95014411bb.rmeta: tests/vector_equivalence.rs Cargo.toml

tests/vector_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
