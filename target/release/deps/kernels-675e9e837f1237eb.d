/root/repo/target/release/deps/kernels-675e9e837f1237eb.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/release/deps/libkernels-675e9e837f1237eb.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
