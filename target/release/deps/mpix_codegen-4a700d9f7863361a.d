/root/repo/target/release/deps/mpix_codegen-4a700d9f7863361a.d: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

/root/repo/target/release/deps/mpix_codegen-4a700d9f7863361a: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

crates/codegen/src/lib.rs:
crates/codegen/src/bytecode.rs:
crates/codegen/src/cgen.rs:
crates/codegen/src/executor.rs:
