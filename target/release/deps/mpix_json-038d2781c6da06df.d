/root/repo/target/release/deps/mpix_json-038d2781c6da06df.d: crates/json/src/lib.rs

/root/repo/target/release/deps/libmpix_json-038d2781c6da06df.rlib: crates/json/src/lib.rs

/root/repo/target/release/deps/libmpix_json-038d2781c6da06df.rmeta: crates/json/src/lib.rs

crates/json/src/lib.rs:
