/root/repo/target/release/deps/rtm_adjoint-65516203191bddef.d: tests/rtm_adjoint.rs

/root/repo/target/release/deps/rtm_adjoint-65516203191bddef: tests/rtm_adjoint.rs

tests/rtm_adjoint.rs:
