/root/repo/target/release/deps/mpix_bench-847fa48cc93bb0fb.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libmpix_bench-847fa48cc93bb0fb.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libmpix_bench-847fa48cc93bb0fb.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/profiles.rs:
crates/bench/src/tables.rs:
