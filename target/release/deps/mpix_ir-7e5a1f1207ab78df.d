/root/repo/target/release/deps/mpix_ir-7e5a1f1207ab78df.d: crates/ir/src/lib.rs crates/ir/src/cluster.rs crates/ir/src/halo.rs crates/ir/src/iet.rs crates/ir/src/iexpr.rs crates/ir/src/lowering.rs crates/ir/src/opcount.rs crates/ir/src/passes.rs crates/ir/src/schedule.rs Cargo.toml

/root/repo/target/release/deps/libmpix_ir-7e5a1f1207ab78df.rmeta: crates/ir/src/lib.rs crates/ir/src/cluster.rs crates/ir/src/halo.rs crates/ir/src/iet.rs crates/ir/src/iexpr.rs crates/ir/src/lowering.rs crates/ir/src/opcount.rs crates/ir/src/passes.rs crates/ir/src/schedule.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/cluster.rs:
crates/ir/src/halo.rs:
crates/ir/src/iet.rs:
crates/ir/src/iexpr.rs:
crates/ir/src/lowering.rs:
crates/ir/src/opcount.rs:
crates/ir/src/passes.rs:
crates/ir/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
