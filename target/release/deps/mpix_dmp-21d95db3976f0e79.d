/root/repo/target/release/deps/mpix_dmp-21d95db3976f0e79.d: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

/root/repo/target/release/deps/mpix_dmp-21d95db3976f0e79: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

crates/dmp/src/lib.rs:
crates/dmp/src/array.rs:
crates/dmp/src/decomp.rs:
crates/dmp/src/halo.rs:
crates/dmp/src/regions.rs:
crates/dmp/src/sparse.rs:
