/root/repo/target/release/deps/mpix_trace-0efd12fb58b92052.d: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs Cargo.toml

/root/repo/target/release/deps/libmpix_trace-0efd12fb58b92052.rmeta: crates/trace/src/lib.rs crates/trace/src/msg.rs crates/trace/src/summary.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/msg.rs:
crates/trace/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
