/root/repo/target/release/deps/kernels-34f9d47399b9249d.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-34f9d47399b9249d: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
