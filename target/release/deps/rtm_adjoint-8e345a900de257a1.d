/root/repo/target/release/deps/rtm_adjoint-8e345a900de257a1.d: tests/rtm_adjoint.rs

/root/repo/target/release/deps/rtm_adjoint-8e345a900de257a1: tests/rtm_adjoint.rs

tests/rtm_adjoint.rs:
