/root/repo/target/release/deps/scaling_model-427ac2efc4fa2d99.d: tests/scaling_model.rs

/root/repo/target/release/deps/scaling_model-427ac2efc4fa2d99: tests/scaling_model.rs

tests/scaling_model.rs:
