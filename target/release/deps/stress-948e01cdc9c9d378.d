/root/repo/target/release/deps/stress-948e01cdc9c9d378.d: crates/comm/tests/stress.rs Cargo.toml

/root/repo/target/release/deps/libstress-948e01cdc9c9d378.rmeta: crates/comm/tests/stress.rs Cargo.toml

crates/comm/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
