/root/repo/target/release/deps/vector_equivalence-c165bc70a265baff.d: tests/vector_equivalence.rs

/root/repo/target/release/deps/vector_equivalence-c165bc70a265baff: tests/vector_equivalence.rs

tests/vector_equivalence.rs:
