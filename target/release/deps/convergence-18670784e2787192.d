/root/repo/target/release/deps/convergence-18670784e2787192.d: tests/convergence.rs

/root/repo/target/release/deps/convergence-18670784e2787192: tests/convergence.rs

tests/convergence.rs:
