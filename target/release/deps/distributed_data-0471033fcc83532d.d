/root/repo/target/release/deps/distributed_data-0471033fcc83532d.d: tests/distributed_data.rs

/root/repo/target/release/deps/distributed_data-0471033fcc83532d: tests/distributed_data.rs

tests/distributed_data.rs:
