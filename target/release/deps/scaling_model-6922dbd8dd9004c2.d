/root/repo/target/release/deps/scaling_model-6922dbd8dd9004c2.d: tests/scaling_model.rs

/root/repo/target/release/deps/scaling_model-6922dbd8dd9004c2: tests/scaling_model.rs

tests/scaling_model.rs:
