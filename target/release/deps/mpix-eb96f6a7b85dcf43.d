/root/repo/target/release/deps/mpix-eb96f6a7b85dcf43.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libmpix-eb96f6a7b85dcf43.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
