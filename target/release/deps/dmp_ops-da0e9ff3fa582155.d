/root/repo/target/release/deps/dmp_ops-da0e9ff3fa582155.d: crates/bench/benches/dmp_ops.rs Cargo.toml

/root/repo/target/release/deps/libdmp_ops-da0e9ff3fa582155.rmeta: crates/bench/benches/dmp_ops.rs Cargo.toml

crates/bench/benches/dmp_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
