/root/repo/target/release/deps/convergence-3c981d0a576c0fd4.d: tests/convergence.rs Cargo.toml

/root/repo/target/release/deps/libconvergence-3c981d0a576c0fd4.rmeta: tests/convergence.rs Cargo.toml

tests/convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
