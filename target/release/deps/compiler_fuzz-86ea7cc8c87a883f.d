/root/repo/target/release/deps/compiler_fuzz-86ea7cc8c87a883f.d: tests/compiler_fuzz.rs

/root/repo/target/release/deps/compiler_fuzz-86ea7cc8c87a883f: tests/compiler_fuzz.rs

tests/compiler_fuzz.rs:
