/root/repo/target/release/deps/mpix-9fdb935a3792ba82.d: src/lib.rs

/root/repo/target/release/deps/mpix-9fdb935a3792ba82: src/lib.rs

src/lib.rs:
