/root/repo/target/release/deps/sparse_points-375f1dec15ed1588.d: tests/sparse_points.rs

/root/repo/target/release/deps/sparse_points-375f1dec15ed1588: tests/sparse_points.rs

tests/sparse_points.rs:
