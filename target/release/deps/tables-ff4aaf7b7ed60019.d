/root/repo/target/release/deps/tables-ff4aaf7b7ed60019.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-ff4aaf7b7ed60019: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
