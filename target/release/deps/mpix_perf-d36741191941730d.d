/root/repo/target/release/deps/mpix_perf-d36741191941730d.d: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

/root/repo/target/release/deps/mpix_perf-d36741191941730d: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

crates/perf/src/lib.rs:
crates/perf/src/machine.rs:
crates/perf/src/network.rs:
crates/perf/src/profile.rs:
crates/perf/src/roofline.rs:
crates/perf/src/scaling.rs:
