/root/repo/target/release/deps/mpix_perf-ed6ab8ca5f28c4b4.d: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs Cargo.toml

/root/repo/target/release/deps/libmpix_perf-ed6ab8ca5f28c4b4.rmeta: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs Cargo.toml

crates/perf/src/lib.rs:
crates/perf/src/machine.rs:
crates/perf/src/network.rs:
crates/perf/src/profile.rs:
crates/perf/src/roofline.rs:
crates/perf/src/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
