/root/repo/target/release/deps/stress-cc07885bb911871b.d: crates/comm/tests/stress.rs

/root/repo/target/release/deps/stress-cc07885bb911871b: crates/comm/tests/stress.rs

crates/comm/tests/stress.rs:
