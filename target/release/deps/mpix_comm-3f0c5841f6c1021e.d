/root/repo/target/release/deps/mpix_comm-3f0c5841f6c1021e.d: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs

/root/repo/target/release/deps/mpix_comm-3f0c5841f6c1021e: crates/comm/src/lib.rs crates/comm/src/cart.rs crates/comm/src/comm.rs crates/comm/src/stats.rs crates/comm/src/universe.rs

crates/comm/src/lib.rs:
crates/comm/src/cart.rs:
crates/comm/src/comm.rs:
crates/comm/src/stats.rs:
crates/comm/src/universe.rs:
