/root/repo/target/release/deps/equivalence_all_kernels-6699094f1dab4bd6.d: tests/equivalence_all_kernels.rs

/root/repo/target/release/deps/equivalence_all_kernels-6699094f1dab4bd6: tests/equivalence_all_kernels.rs

tests/equivalence_all_kernels.rs:
