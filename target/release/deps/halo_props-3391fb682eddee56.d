/root/repo/target/release/deps/halo_props-3391fb682eddee56.d: crates/dmp/tests/halo_props.rs Cargo.toml

/root/repo/target/release/deps/libhalo_props-3391fb682eddee56.rmeta: crates/dmp/tests/halo_props.rs Cargo.toml

crates/dmp/tests/halo_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
