/root/repo/target/release/deps/mpix_solvers-d497e08a38b6f5b0.d: crates/solvers/src/lib.rs crates/solvers/src/acoustic.rs crates/solvers/src/elastic.rs crates/solvers/src/model.rs crates/solvers/src/propagator.rs crates/solvers/src/ricker.rs crates/solvers/src/tti.rs crates/solvers/src/verification.rs crates/solvers/src/viscoelastic.rs Cargo.toml

/root/repo/target/release/deps/libmpix_solvers-d497e08a38b6f5b0.rmeta: crates/solvers/src/lib.rs crates/solvers/src/acoustic.rs crates/solvers/src/elastic.rs crates/solvers/src/model.rs crates/solvers/src/propagator.rs crates/solvers/src/ricker.rs crates/solvers/src/tti.rs crates/solvers/src/verification.rs crates/solvers/src/viscoelastic.rs Cargo.toml

crates/solvers/src/lib.rs:
crates/solvers/src/acoustic.rs:
crates/solvers/src/elastic.rs:
crates/solvers/src/model.rs:
crates/solvers/src/propagator.rs:
crates/solvers/src/ricker.rs:
crates/solvers/src/tti.rs:
crates/solvers/src/verification.rs:
crates/solvers/src/viscoelastic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
