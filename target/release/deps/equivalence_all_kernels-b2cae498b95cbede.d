/root/repo/target/release/deps/equivalence_all_kernels-b2cae498b95cbede.d: tests/equivalence_all_kernels.rs Cargo.toml

/root/repo/target/release/deps/libequivalence_all_kernels-b2cae498b95cbede.rmeta: tests/equivalence_all_kernels.rs Cargo.toml

tests/equivalence_all_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
