/root/repo/target/release/deps/compiler-37b1c12f74d3892b.d: crates/bench/benches/compiler.rs

/root/repo/target/release/deps/compiler-37b1c12f74d3892b: crates/bench/benches/compiler.rs

crates/bench/benches/compiler.rs:
