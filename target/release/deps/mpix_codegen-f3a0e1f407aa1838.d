/root/repo/target/release/deps/mpix_codegen-f3a0e1f407aa1838.d: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

/root/repo/target/release/deps/libmpix_codegen-f3a0e1f407aa1838.rlib: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

/root/repo/target/release/deps/libmpix_codegen-f3a0e1f407aa1838.rmeta: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

crates/codegen/src/lib.rs:
crates/codegen/src/bytecode.rs:
crates/codegen/src/cgen.rs:
crates/codegen/src/executor.rs:
