/root/repo/target/release/deps/tables-6d397d2527c9f915.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-6d397d2527c9f915: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
