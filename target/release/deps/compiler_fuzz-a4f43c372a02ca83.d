/root/repo/target/release/deps/compiler_fuzz-a4f43c372a02ca83.d: tests/compiler_fuzz.rs

/root/repo/target/release/deps/compiler_fuzz-a4f43c372a02ca83: tests/compiler_fuzz.rs

tests/compiler_fuzz.rs:
