/root/repo/target/release/deps/operator_e2e-b6b4485a5539f64f.d: crates/core/tests/operator_e2e.rs Cargo.toml

/root/repo/target/release/deps/liboperator_e2e-b6b4485a5539f64f.rmeta: crates/core/tests/operator_e2e.rs Cargo.toml

crates/core/tests/operator_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
