/root/repo/target/release/deps/mpix-440f975832159261.d: src/lib.rs

/root/repo/target/release/deps/mpix-440f975832159261: src/lib.rs

src/lib.rs:
