/root/repo/target/release/deps/scaling_model-b1b7c3eb3751fa4e.d: tests/scaling_model.rs Cargo.toml

/root/repo/target/release/deps/libscaling_model-b1b7c3eb3751fa4e.rmeta: tests/scaling_model.rs Cargo.toml

tests/scaling_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
