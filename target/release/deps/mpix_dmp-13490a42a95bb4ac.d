/root/repo/target/release/deps/mpix_dmp-13490a42a95bb4ac.d: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

/root/repo/target/release/deps/libmpix_dmp-13490a42a95bb4ac.rlib: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

/root/repo/target/release/deps/libmpix_dmp-13490a42a95bb4ac.rmeta: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

crates/dmp/src/lib.rs:
crates/dmp/src/array.rs:
crates/dmp/src/decomp.rs:
crates/dmp/src/halo.rs:
crates/dmp/src/regions.rs:
crates/dmp/src/sparse.rs:
