/root/repo/target/release/deps/operator_e2e-b250c061b9f87163.d: crates/core/tests/operator_e2e.rs

/root/repo/target/release/deps/operator_e2e-b250c061b9f87163: crates/core/tests/operator_e2e.rs

crates/core/tests/operator_e2e.rs:
