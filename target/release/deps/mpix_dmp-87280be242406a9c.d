/root/repo/target/release/deps/mpix_dmp-87280be242406a9c.d: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

/root/repo/target/release/deps/mpix_dmp-87280be242406a9c: crates/dmp/src/lib.rs crates/dmp/src/array.rs crates/dmp/src/decomp.rs crates/dmp/src/halo.rs crates/dmp/src/regions.rs crates/dmp/src/sparse.rs

crates/dmp/src/lib.rs:
crates/dmp/src/array.rs:
crates/dmp/src/decomp.rs:
crates/dmp/src/halo.rs:
crates/dmp/src/regions.rs:
crates/dmp/src/sparse.rs:
