/root/repo/target/release/deps/mpix_solvers-9739277b5cee45a6.d: crates/solvers/src/lib.rs crates/solvers/src/acoustic.rs crates/solvers/src/elastic.rs crates/solvers/src/model.rs crates/solvers/src/propagator.rs crates/solvers/src/ricker.rs crates/solvers/src/tti.rs crates/solvers/src/verification.rs crates/solvers/src/viscoelastic.rs

/root/repo/target/release/deps/libmpix_solvers-9739277b5cee45a6.rlib: crates/solvers/src/lib.rs crates/solvers/src/acoustic.rs crates/solvers/src/elastic.rs crates/solvers/src/model.rs crates/solvers/src/propagator.rs crates/solvers/src/ricker.rs crates/solvers/src/tti.rs crates/solvers/src/verification.rs crates/solvers/src/viscoelastic.rs

/root/repo/target/release/deps/libmpix_solvers-9739277b5cee45a6.rmeta: crates/solvers/src/lib.rs crates/solvers/src/acoustic.rs crates/solvers/src/elastic.rs crates/solvers/src/model.rs crates/solvers/src/propagator.rs crates/solvers/src/ricker.rs crates/solvers/src/tti.rs crates/solvers/src/verification.rs crates/solvers/src/viscoelastic.rs

crates/solvers/src/lib.rs:
crates/solvers/src/acoustic.rs:
crates/solvers/src/elastic.rs:
crates/solvers/src/model.rs:
crates/solvers/src/propagator.rs:
crates/solvers/src/ricker.rs:
crates/solvers/src/tti.rs:
crates/solvers/src/verification.rs:
crates/solvers/src/viscoelastic.rs:
