/root/repo/target/release/deps/mpix-fbbc4a169e6bc287.d: src/lib.rs

/root/repo/target/release/deps/libmpix-fbbc4a169e6bc287.rlib: src/lib.rs

/root/repo/target/release/deps/libmpix-fbbc4a169e6bc287.rmeta: src/lib.rs

src/lib.rs:
