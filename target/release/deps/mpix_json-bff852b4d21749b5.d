/root/repo/target/release/deps/mpix_json-bff852b4d21749b5.d: crates/json/src/lib.rs

/root/repo/target/release/deps/mpix_json-bff852b4d21749b5: crates/json/src/lib.rs

crates/json/src/lib.rs:
