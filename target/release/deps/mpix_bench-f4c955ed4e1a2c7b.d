/root/repo/target/release/deps/mpix_bench-f4c955ed4e1a2c7b.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/mpix_bench-f4c955ed4e1a2c7b: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/profiles.rs:
crates/bench/src/tables.rs:
