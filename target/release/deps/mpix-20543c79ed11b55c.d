/root/repo/target/release/deps/mpix-20543c79ed11b55c.d: src/lib.rs

/root/repo/target/release/deps/libmpix-20543c79ed11b55c.rlib: src/lib.rs

/root/repo/target/release/deps/libmpix-20543c79ed11b55c.rmeta: src/lib.rs

src/lib.rs:
