/root/repo/target/release/deps/distributed_data-0adfc27ddf1edd84.d: tests/distributed_data.rs Cargo.toml

/root/repo/target/release/deps/libdistributed_data-0adfc27ddf1edd84.rmeta: tests/distributed_data.rs Cargo.toml

tests/distributed_data.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
