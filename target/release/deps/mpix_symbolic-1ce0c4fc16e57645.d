/root/repo/target/release/deps/mpix_symbolic-1ce0c4fc16e57645.d: crates/symbolic/src/lib.rs crates/symbolic/src/context.rs crates/symbolic/src/eq.rs crates/symbolic/src/expr.rs crates/symbolic/src/fd.rs crates/symbolic/src/grid.rs crates/symbolic/src/simplify.rs crates/symbolic/src/visit.rs

/root/repo/target/release/deps/mpix_symbolic-1ce0c4fc16e57645: crates/symbolic/src/lib.rs crates/symbolic/src/context.rs crates/symbolic/src/eq.rs crates/symbolic/src/expr.rs crates/symbolic/src/fd.rs crates/symbolic/src/grid.rs crates/symbolic/src/simplify.rs crates/symbolic/src/visit.rs

crates/symbolic/src/lib.rs:
crates/symbolic/src/context.rs:
crates/symbolic/src/eq.rs:
crates/symbolic/src/expr.rs:
crates/symbolic/src/fd.rs:
crates/symbolic/src/grid.rs:
crates/symbolic/src/simplify.rs:
crates/symbolic/src/visit.rs:
