/root/repo/target/release/deps/mpix_codegen-5cd3503ea6806b42.d: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs Cargo.toml

/root/repo/target/release/deps/libmpix_codegen-5cd3503ea6806b42.rmeta: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs Cargo.toml

crates/codegen/src/lib.rs:
crates/codegen/src/bytecode.rs:
crates/codegen/src/cgen.rs:
crates/codegen/src/executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
