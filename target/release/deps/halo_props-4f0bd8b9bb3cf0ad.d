/root/repo/target/release/deps/halo_props-4f0bd8b9bb3cf0ad.d: crates/dmp/tests/halo_props.rs

/root/repo/target/release/deps/halo_props-4f0bd8b9bb3cf0ad: crates/dmp/tests/halo_props.rs

crates/dmp/tests/halo_props.rs:
