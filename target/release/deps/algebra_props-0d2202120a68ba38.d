/root/repo/target/release/deps/algebra_props-0d2202120a68ba38.d: crates/symbolic/tests/algebra_props.rs

/root/repo/target/release/deps/algebra_props-0d2202120a68ba38: crates/symbolic/tests/algebra_props.rs

crates/symbolic/tests/algebra_props.rs:
