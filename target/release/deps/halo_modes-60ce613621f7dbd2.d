/root/repo/target/release/deps/halo_modes-60ce613621f7dbd2.d: crates/bench/benches/halo_modes.rs Cargo.toml

/root/repo/target/release/deps/libhalo_modes-60ce613621f7dbd2.rmeta: crates/bench/benches/halo_modes.rs Cargo.toml

crates/bench/benches/halo_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
