/root/repo/target/release/deps/mpix-9c926b04f0abde35.d: src/lib.rs

/root/repo/target/release/deps/libmpix-9c926b04f0abde35.rlib: src/lib.rs

/root/repo/target/release/deps/libmpix-9c926b04f0abde35.rmeta: src/lib.rs

src/lib.rs:
