/root/repo/target/release/deps/mpix_perf-67fe99d6703b531d.d: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

/root/repo/target/release/deps/mpix_perf-67fe99d6703b531d: crates/perf/src/lib.rs crates/perf/src/machine.rs crates/perf/src/network.rs crates/perf/src/profile.rs crates/perf/src/roofline.rs crates/perf/src/scaling.rs

crates/perf/src/lib.rs:
crates/perf/src/machine.rs:
crates/perf/src/network.rs:
crates/perf/src/profile.rs:
crates/perf/src/roofline.rs:
crates/perf/src/scaling.rs:
