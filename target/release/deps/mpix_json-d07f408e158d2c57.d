/root/repo/target/release/deps/mpix_json-d07f408e158d2c57.d: crates/json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libmpix_json-d07f408e158d2c57.rmeta: crates/json/src/lib.rs Cargo.toml

crates/json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
