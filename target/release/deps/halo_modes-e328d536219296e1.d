/root/repo/target/release/deps/halo_modes-e328d536219296e1.d: crates/bench/benches/halo_modes.rs

/root/repo/target/release/deps/halo_modes-e328d536219296e1: crates/bench/benches/halo_modes.rs

crates/bench/benches/halo_modes.rs:
