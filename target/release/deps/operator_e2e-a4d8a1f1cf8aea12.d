/root/repo/target/release/deps/operator_e2e-a4d8a1f1cf8aea12.d: crates/core/tests/operator_e2e.rs

/root/repo/target/release/deps/operator_e2e-a4d8a1f1cf8aea12: crates/core/tests/operator_e2e.rs

crates/core/tests/operator_e2e.rs:
