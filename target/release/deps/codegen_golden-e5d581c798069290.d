/root/repo/target/release/deps/codegen_golden-e5d581c798069290.d: tests/codegen_golden.rs

/root/repo/target/release/deps/codegen_golden-e5d581c798069290: tests/codegen_golden.rs

tests/codegen_golden.rs:
