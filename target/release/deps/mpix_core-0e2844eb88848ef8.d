/root/repo/target/release/deps/mpix_core-0e2844eb88848ef8.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs Cargo.toml

/root/repo/target/release/deps/libmpix_core-0e2844eb88848ef8.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/operator.rs:
crates/core/src/workspace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
