/root/repo/target/release/deps/sparse_points-a37a69f0d12711f3.d: tests/sparse_points.rs

/root/repo/target/release/deps/sparse_points-a37a69f0d12711f3: tests/sparse_points.rs

tests/sparse_points.rs:
