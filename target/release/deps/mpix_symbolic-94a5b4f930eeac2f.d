/root/repo/target/release/deps/mpix_symbolic-94a5b4f930eeac2f.d: crates/symbolic/src/lib.rs crates/symbolic/src/context.rs crates/symbolic/src/eq.rs crates/symbolic/src/expr.rs crates/symbolic/src/fd.rs crates/symbolic/src/grid.rs crates/symbolic/src/simplify.rs crates/symbolic/src/visit.rs Cargo.toml

/root/repo/target/release/deps/libmpix_symbolic-94a5b4f930eeac2f.rmeta: crates/symbolic/src/lib.rs crates/symbolic/src/context.rs crates/symbolic/src/eq.rs crates/symbolic/src/expr.rs crates/symbolic/src/fd.rs crates/symbolic/src/grid.rs crates/symbolic/src/simplify.rs crates/symbolic/src/visit.rs Cargo.toml

crates/symbolic/src/lib.rs:
crates/symbolic/src/context.rs:
crates/symbolic/src/eq.rs:
crates/symbolic/src/expr.rs:
crates/symbolic/src/fd.rs:
crates/symbolic/src/grid.rs:
crates/symbolic/src/simplify.rs:
crates/symbolic/src/visit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
