/root/repo/target/release/deps/tables-8069bd7f97fd2b34.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-8069bd7f97fd2b34: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
