/root/repo/target/release/deps/distributed_data-e5390ebcc3f3d696.d: tests/distributed_data.rs

/root/repo/target/release/deps/distributed_data-e5390ebcc3f3d696: tests/distributed_data.rs

tests/distributed_data.rs:
