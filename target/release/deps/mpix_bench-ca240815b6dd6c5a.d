/root/repo/target/release/deps/mpix_bench-ca240815b6dd6c5a.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/release/deps/libmpix_bench-ca240815b6dd6c5a.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/profiles.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/profiles.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
