/root/repo/target/release/deps/criterion-5fcab48214eba793.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-5fcab48214eba793.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
