/root/repo/target/release/deps/tables-1b113655d690562c.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-1b113655d690562c: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
