/root/repo/target/release/deps/codegen_golden-7b14706c42762ac5.d: tests/codegen_golden.rs Cargo.toml

/root/repo/target/release/deps/libcodegen_golden-7b14706c42762ac5.rmeta: tests/codegen_golden.rs Cargo.toml

tests/codegen_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
