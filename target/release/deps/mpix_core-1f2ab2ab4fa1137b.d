/root/repo/target/release/deps/mpix_core-1f2ab2ab4fa1137b.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

/root/repo/target/release/deps/libmpix_core-1f2ab2ab4fa1137b.rlib: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

/root/repo/target/release/deps/libmpix_core-1f2ab2ab4fa1137b.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/operator.rs:
crates/core/src/workspace.rs:
