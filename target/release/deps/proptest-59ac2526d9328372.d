/root/repo/target/release/deps/proptest-59ac2526d9328372.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-59ac2526d9328372.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
