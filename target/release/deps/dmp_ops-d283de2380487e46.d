/root/repo/target/release/deps/dmp_ops-d283de2380487e46.d: crates/bench/benches/dmp_ops.rs

/root/repo/target/release/deps/dmp_ops-d283de2380487e46: crates/bench/benches/dmp_ops.rs

crates/bench/benches/dmp_ops.rs:
