/root/repo/target/release/deps/trace_invariants-b262be2544d41a11.d: tests/trace_invariants.rs Cargo.toml

/root/repo/target/release/deps/libtrace_invariants-b262be2544d41a11.rmeta: tests/trace_invariants.rs Cargo.toml

tests/trace_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
