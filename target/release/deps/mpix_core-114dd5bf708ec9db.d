/root/repo/target/release/deps/mpix_core-114dd5bf708ec9db.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

/root/repo/target/release/deps/libmpix_core-114dd5bf708ec9db.rlib: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

/root/repo/target/release/deps/libmpix_core-114dd5bf708ec9db.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/operator.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/operator.rs:
crates/core/src/workspace.rs:
