/root/repo/target/release/deps/halo_props-523e063da28d5e38.d: crates/dmp/tests/halo_props.rs

/root/repo/target/release/deps/halo_props-523e063da28d5e38: crates/dmp/tests/halo_props.rs

crates/dmp/tests/halo_props.rs:
