/root/repo/target/release/deps/mpix-a46b7ff3a9458764.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libmpix-a46b7ff3a9458764.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
