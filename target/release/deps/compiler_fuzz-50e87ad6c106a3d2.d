/root/repo/target/release/deps/compiler_fuzz-50e87ad6c106a3d2.d: tests/compiler_fuzz.rs Cargo.toml

/root/repo/target/release/deps/libcompiler_fuzz-50e87ad6c106a3d2.rmeta: tests/compiler_fuzz.rs Cargo.toml

tests/compiler_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
