/root/repo/target/release/deps/mpix_ir-2cd1ede3ef62945b.d: crates/ir/src/lib.rs crates/ir/src/cluster.rs crates/ir/src/halo.rs crates/ir/src/iet.rs crates/ir/src/iexpr.rs crates/ir/src/lowering.rs crates/ir/src/opcount.rs crates/ir/src/passes.rs crates/ir/src/schedule.rs

/root/repo/target/release/deps/libmpix_ir-2cd1ede3ef62945b.rlib: crates/ir/src/lib.rs crates/ir/src/cluster.rs crates/ir/src/halo.rs crates/ir/src/iet.rs crates/ir/src/iexpr.rs crates/ir/src/lowering.rs crates/ir/src/opcount.rs crates/ir/src/passes.rs crates/ir/src/schedule.rs

/root/repo/target/release/deps/libmpix_ir-2cd1ede3ef62945b.rmeta: crates/ir/src/lib.rs crates/ir/src/cluster.rs crates/ir/src/halo.rs crates/ir/src/iet.rs crates/ir/src/iexpr.rs crates/ir/src/lowering.rs crates/ir/src/opcount.rs crates/ir/src/passes.rs crates/ir/src/schedule.rs

crates/ir/src/lib.rs:
crates/ir/src/cluster.rs:
crates/ir/src/halo.rs:
crates/ir/src/iet.rs:
crates/ir/src/iexpr.rs:
crates/ir/src/lowering.rs:
crates/ir/src/opcount.rs:
crates/ir/src/passes.rs:
crates/ir/src/schedule.rs:
