/root/repo/target/release/deps/mpix_codegen-4024cc67fbc44080.d: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

/root/repo/target/release/deps/libmpix_codegen-4024cc67fbc44080.rlib: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

/root/repo/target/release/deps/libmpix_codegen-4024cc67fbc44080.rmeta: crates/codegen/src/lib.rs crates/codegen/src/bytecode.rs crates/codegen/src/cgen.rs crates/codegen/src/executor.rs

crates/codegen/src/lib.rs:
crates/codegen/src/bytecode.rs:
crates/codegen/src/cgen.rs:
crates/codegen/src/executor.rs:
