/root/repo/target/release/examples/scaling_experiment-5ccd8433fcf6691a.d: examples/scaling_experiment.rs

/root/repo/target/release/examples/scaling_experiment-5ccd8433fcf6691a: examples/scaling_experiment.rs

examples/scaling_experiment.rs:
