/root/repo/target/release/examples/autotune_demo-60f74d5bafeae5bb.d: examples/autotune_demo.rs

/root/repo/target/release/examples/autotune_demo-60f74d5bafeae5bb: examples/autotune_demo.rs

examples/autotune_demo.rs:
