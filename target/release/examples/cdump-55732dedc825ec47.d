/root/repo/target/release/examples/cdump-55732dedc825ec47.d: examples/cdump.rs

/root/repo/target/release/examples/cdump-55732dedc825ec47: examples/cdump.rs

examples/cdump.rs:
