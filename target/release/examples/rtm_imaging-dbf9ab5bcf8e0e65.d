/root/repo/target/release/examples/rtm_imaging-dbf9ab5bcf8e0e65.d: examples/rtm_imaging.rs

/root/repo/target/release/examples/rtm_imaging-dbf9ab5bcf8e0e65: examples/rtm_imaging.rs

examples/rtm_imaging.rs:
