/root/repo/target/release/examples/cdump-230bde13ca59f315.d: examples/cdump.rs

/root/repo/target/release/examples/cdump-230bde13ca59f315: examples/cdump.rs

examples/cdump.rs:
