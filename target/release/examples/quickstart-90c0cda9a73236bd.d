/root/repo/target/release/examples/quickstart-90c0cda9a73236bd.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-90c0cda9a73236bd: examples/quickstart.rs

examples/quickstart.rs:
