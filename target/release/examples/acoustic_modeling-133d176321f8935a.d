/root/repo/target/release/examples/acoustic_modeling-133d176321f8935a.d: examples/acoustic_modeling.rs

/root/repo/target/release/examples/acoustic_modeling-133d176321f8935a: examples/acoustic_modeling.rs

examples/acoustic_modeling.rs:
