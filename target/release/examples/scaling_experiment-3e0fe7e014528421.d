/root/repo/target/release/examples/scaling_experiment-3e0fe7e014528421.d: examples/scaling_experiment.rs

/root/repo/target/release/examples/scaling_experiment-3e0fe7e014528421: examples/scaling_experiment.rs

examples/scaling_experiment.rs:
