/root/repo/target/release/examples/custom_topology-f5114ecd9572f1e2.d: examples/custom_topology.rs Cargo.toml

/root/repo/target/release/examples/libcustom_topology-f5114ecd9572f1e2.rmeta: examples/custom_topology.rs Cargo.toml

examples/custom_topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
