/root/repo/target/release/examples/quickstart-89aaa3e5be76afb7.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-89aaa3e5be76afb7.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
