/root/repo/target/release/examples/scaling_experiment-fa8ed9c00c1e6b3c.d: examples/scaling_experiment.rs Cargo.toml

/root/repo/target/release/examples/libscaling_experiment-fa8ed9c00c1e6b3c.rmeta: examples/scaling_experiment.rs Cargo.toml

examples/scaling_experiment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
