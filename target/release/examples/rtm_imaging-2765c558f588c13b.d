/root/repo/target/release/examples/rtm_imaging-2765c558f588c13b.d: examples/rtm_imaging.rs Cargo.toml

/root/repo/target/release/examples/librtm_imaging-2765c558f588c13b.rmeta: examples/rtm_imaging.rs Cargo.toml

examples/rtm_imaging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
