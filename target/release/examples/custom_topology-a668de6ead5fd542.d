/root/repo/target/release/examples/custom_topology-a668de6ead5fd542.d: examples/custom_topology.rs

/root/repo/target/release/examples/custom_topology-a668de6ead5fd542: examples/custom_topology.rs

examples/custom_topology.rs:
