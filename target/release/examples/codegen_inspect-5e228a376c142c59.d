/root/repo/target/release/examples/codegen_inspect-5e228a376c142c59.d: examples/codegen_inspect.rs Cargo.toml

/root/repo/target/release/examples/libcodegen_inspect-5e228a376c142c59.rmeta: examples/codegen_inspect.rs Cargo.toml

examples/codegen_inspect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
