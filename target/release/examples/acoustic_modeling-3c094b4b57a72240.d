/root/repo/target/release/examples/acoustic_modeling-3c094b4b57a72240.d: examples/acoustic_modeling.rs Cargo.toml

/root/repo/target/release/examples/libacoustic_modeling-3c094b4b57a72240.rmeta: examples/acoustic_modeling.rs Cargo.toml

examples/acoustic_modeling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
