/root/repo/target/release/examples/codegen_inspect-67d82182878d090c.d: examples/codegen_inspect.rs

/root/repo/target/release/examples/codegen_inspect-67d82182878d090c: examples/codegen_inspect.rs

examples/codegen_inspect.rs:
