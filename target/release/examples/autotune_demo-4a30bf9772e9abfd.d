/root/repo/target/release/examples/autotune_demo-4a30bf9772e9abfd.d: examples/autotune_demo.rs Cargo.toml

/root/repo/target/release/examples/libautotune_demo-4a30bf9772e9abfd.rmeta: examples/autotune_demo.rs Cargo.toml

examples/autotune_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
