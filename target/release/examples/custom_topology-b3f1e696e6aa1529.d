/root/repo/target/release/examples/custom_topology-b3f1e696e6aa1529.d: examples/custom_topology.rs

/root/repo/target/release/examples/custom_topology-b3f1e696e6aa1529: examples/custom_topology.rs

examples/custom_topology.rs:
