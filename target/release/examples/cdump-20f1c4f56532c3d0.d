/root/repo/target/release/examples/cdump-20f1c4f56532c3d0.d: examples/cdump.rs Cargo.toml

/root/repo/target/release/examples/libcdump-20f1c4f56532c3d0.rmeta: examples/cdump.rs Cargo.toml

examples/cdump.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
