/root/repo/target/release/examples/autotune_demo-d123bb8d995795f1.d: examples/autotune_demo.rs

/root/repo/target/release/examples/autotune_demo-d123bb8d995795f1: examples/autotune_demo.rs

examples/autotune_demo.rs:
