/root/repo/target/release/examples/rtm_imaging-e08723d610266aba.d: examples/rtm_imaging.rs

/root/repo/target/release/examples/rtm_imaging-e08723d610266aba: examples/rtm_imaging.rs

examples/rtm_imaging.rs:
