/root/repo/target/release/examples/quickstart-0322c175611beecd.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0322c175611beecd: examples/quickstart.rs

examples/quickstart.rs:
