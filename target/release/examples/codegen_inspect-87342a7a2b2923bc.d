/root/repo/target/release/examples/codegen_inspect-87342a7a2b2923bc.d: examples/codegen_inspect.rs

/root/repo/target/release/examples/codegen_inspect-87342a7a2b2923bc: examples/codegen_inspect.rs

examples/codegen_inspect.rs:
