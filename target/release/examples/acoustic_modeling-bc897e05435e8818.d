/root/repo/target/release/examples/acoustic_modeling-bc897e05435e8818.d: examples/acoustic_modeling.rs

/root/repo/target/release/examples/acoustic_modeling-bc897e05435e8818: examples/acoustic_modeling.rs

examples/acoustic_modeling.rs:
