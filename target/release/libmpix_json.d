/root/repo/target/release/libmpix_json.rlib: /root/repo/crates/json/src/lib.rs
